//! Shared helpers for the runnable examples.
//!
//! Each example boots a small V domain on the real-thread kernel (or the
//! virtual-time kernel for the timing example) and drives it through the
//! standard run-time routines, mirroring scenarios from the paper.

#![forbid(unsafe_code)]

use vkernel::Domain;
use vproto::{LogicalHost, Scope, ServiceId};

/// Blocks until `svc` is registered and visible from `host`.
pub fn wait_for_service(domain: &Domain, host: LogicalHost, svc: ServiceId) {
    while domain.registry().lookup(svc, Scope::Both, host).is_none() {
        std::thread::yield_now();
    }
}
