//! Quickstart: boot a one-workstation V installation, define context
//! prefixes, and use the standard run-time routines.
//!
//! ```sh
//! cargo run -p vexamples --example quickstart
//! ```

use vexamples::wait_for_service;
use vkernel::Domain;
use vproto::{ContextId, ContextPair, OpenMode, ServiceId};
use vruntime::NameClient;
use vservers::{file_server, prefix_server, FileServerConfig, PrefixConfig};

fn main() {
    // A V domain with one logical host: the user's diskless workstation
    // (the file server here stands in for the network storage server).
    let domain = Domain::new();
    let ws = domain.add_host();

    let fs = domain.spawn(ws, "fileserver", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                preload: vec![(
                    "ng/mann/naming.mss".into(),
                    b"We have been exploring distributed name interpretation...".to_vec(),
                )],
                home: Some("ng/mann".into()),
                ..FileServerConfig::default()
            },
        )
    });
    domain.spawn(ws, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    wait_for_service(&domain, ws, ServiceId::CONTEXT_PREFIX);
    wait_for_service(&domain, ws, ServiceId::FILE_SERVER);

    domain.client(ws, move |ctx| {
        // The per-user prefix table: `[home]` and `[storage]`.
        let mut client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        client
            .add_prefix("home", ContextPair::new(fs, ContextId::HOME))
            .unwrap();
        client
            .add_prefix("storage", ContextPair::new(fs, ContextId::DEFAULT))
            .unwrap();

        // Read a file through the prefix server.
        let text = client.read_file("[home]naming.mss").unwrap();
        println!("[home]naming.mss: {}", String::from_utf8_lossy(&text));

        // Create a new file and inspect its typed descriptor (paper §5.5).
        client
            .write_file("[home]todo.txt", b"1. reproduce the paper")
            .unwrap();
        let d = client.query("[home]todo.txt").unwrap();
        println!("descriptor: {d}  perms={}", d.permissions);

        // Change the current context (paper §6's analogue of chdir) and use
        // a plain relative name.
        client.change_context("[storage]ng/mann").unwrap();
        println!(
            "current context is now {}",
            client.current_context_name().unwrap()
        );
        let again = client.read_file("todo.txt").unwrap();
        assert_eq!(again, b"1. reproduce the paper");

        // List the context directory (paper §5.6).
        println!("directory of [home]:");
        for record in client.list_directory("[home]", None).unwrap() {
            println!("  {record}");
        }

        // Clean up via the uniform Delete(object_name) of the paper's intro.
        client.remove("[home]todo.txt").unwrap();
        let gone = client.open("[home]todo.txt", OpenMode::Read);
        assert!(gone.is_err());
        println!("removed [home]todo.txt");
    });
    println!("quickstart complete");
}
