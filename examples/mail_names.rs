//! Extensibility demo (paper §2.2): mailbox names like
//! `cheriton@su-score.ARPA` — a syntax "imposed by standards established
//! outside of the system" — handled by the servers that own the mailboxes,
//! with zero changes to the protocol, the run-time, or any other server.
//!
//! ```sh
//! cargo run -p vexamples --example mail_names
//! ```

use vkernel::Domain;
use vproto::{ContextId, ContextPair, OpenMode};
use vruntime::NameClient;
use vservers::{mail_server, MailConfig};

fn main() {
    let domain = Domain::new();
    let score_host = domain.add_host();
    let navajo_host = domain.add_host();

    // Two mail servers, one per "ARPA host"; each knows the other as a peer.
    let score = domain.spawn(score_host, "mail-score", |ctx| {
        mail_server(ctx, MailConfig::new("su-score.ARPA"))
    });
    let navajo = domain.spawn(navajo_host, "mail-navajo", move |ctx| {
        mail_server(
            ctx,
            MailConfig::new("su-navajo.ARPA").with_peer("su-score.ARPA", score),
        )
    });

    domain.client(navajo_host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(navajo, ContextId::DEFAULT));

        // Deliver locally on navajo.
        let mut mbox = client
            .open("mann@su-navajo.ARPA", OpenMode::Append)
            .unwrap();
        mbox.write_next(ctx, b"camera-ready figures attached")
            .unwrap();
        mbox.close(ctx).unwrap();
        println!("delivered to mann@su-navajo.ARPA (local)");

        // Deliver to the other host: navajo recognizes the foreign host
        // part and FORWARDS the request — ordinary §5.4 forwarding, even
        // though the name syntax is user@host rather than a pathname.
        let mut remote = client
            .open("cheriton@su-score.ARPA", OpenMode::Append)
            .unwrap();
        println!(
            "opened cheriton@su-score.ARPA via navajo; owning server is {} (score)",
            remote.server()
        );
        remote.write_next(ctx, b"please review section 6").unwrap();
        remote.close(ctx).unwrap();

        // The same uniform query operation works on mailboxes.
        let d = client.query("cheriton@su-score.ARPA").unwrap();
        println!("descriptor: {d} ext={:?}", d.ext);

        // And the same list-directory machinery lists each host's boxes.
        for (label, server) in [("su-navajo.ARPA", navajo), ("su-score.ARPA", score)] {
            let c = NameClient::new(ctx, ContextPair::new(server, ContextId::DEFAULT));
            println!("mailboxes on {label}:");
            for r in c.list_directory("", None).unwrap() {
                println!("  {r}");
            }
        }
    });
    println!("mail_names complete");
}
