//! The paper's §6 `Open` cost table, regenerated live on the virtual-time
//! kernel (this is EXP-4 of the experiment index, as an example program).
//!
//! ```sh
//! cargo run -p vexamples --example open_timing
//! ```

use vnet::Params1984;
use vsim::exp4::{measure_open, OpenCase};
use vsim::world::boot_world;

fn main() {
    println!("Open timing on simulated 1984 hardware (10 MHz SUNs, 3 Mbit Ethernet)\n");
    let world = boot_world(Params1984::ethernet_3mbit());
    println!("{:<36} {:>10} {:>10}", "configuration", "paper", "measured");
    for case in OpenCase::ALL {
        let measured = measure_open(&world, case, 20);
        println!(
            "{:<36} {:>7.2} ms {:>7.2} ms",
            format!("{case:?}"),
            case.paper_ms(),
            measured.as_nanos() as f64 / 1e6,
        );
    }
    println!("\nThe ~4 ms prefix overhead is the context prefix server's processing");
    println!("time, independent of whether the target server is local or remote —");
    println!("exactly the paper's observation.");
}
