//! The paper's §6 "single list directory command": one generic program that
//! lists *any* context — disk files, virtual terminals, print jobs, TCP
//! connections, programs in execution, context prefixes — relying only on
//! the typed description records of §5.5/§5.6.
//!
//! ```sh
//! cargo run -p vexamples --example list_directory
//! ```

use bytes::Bytes;
use vexamples::wait_for_service;
use vkernel::Domain;
use vnaming::build_csname_request;
use vproto::{
    ContextId, ContextPair, CsName, DescriptorExt, ObjectDescriptor, OpenMode, RequestCode,
    ServiceId,
};
use vruntime::NameClient;
use vservers::{
    file_server, internet_server, mail_server, prefix_server, printer_server, program_manager,
    terminal_server, FileServerConfig, InternetConfig, MailConfig, PrefixConfig, PrinterConfig,
    ProgramConfig, TerminalConfig,
};

/// The generic "list directory" command: works on every CSNH server because
/// they all speak the same protocol. This is the whole program — no
/// per-server code.
fn list(client: &NameClient<'_>, what: &str, name: &str) {
    println!(
        "{what} ({})",
        if name.is_empty() { "<default>" } else { name }
    );
    match client.list_directory(name, None) {
        Ok(records) if records.is_empty() => println!("  (empty)"),
        Ok(records) => {
            for r in records {
                print!("  {r}");
                // The tag tells the generic program how to render extras.
                match &r.ext {
                    DescriptorExt::Terminal { columns, rows } => print!("  {columns}x{rows}"),
                    DescriptorExt::PrintJob { queue_position } => {
                        print!("  queue position {queue_position}")
                    }
                    DescriptorExt::Program { pid } => print!("  pid {pid}"),
                    DescriptorExt::TcpConnection {
                        remote_port, state, ..
                    } => print!("  :{remote_port} state {state}"),
                    DescriptorExt::Mailbox { unread } => print!("  {unread} unread"),
                    DescriptorExt::ContextPrefix { target, .. } => print!("  -> {target}"),
                    _ => {}
                }
                println!();
            }
        }
        Err(e) => println!("  error: {e}"),
    }
}

fn main() {
    let domain = Domain::new();
    let ws = domain.add_host();

    // One of everything (paper §6's workstation runs exactly this mix).
    let fs = domain.spawn(ws, "files", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                preload: vec![
                    ("src/naming.rs".into(), b"mod v;".to_vec()),
                    ("src/kernel.rs".into(), b"mod ipc;".to_vec()),
                ],
                ..FileServerConfig::default()
            },
        )
    });
    let term = domain.spawn(ws, "terminals", |ctx| {
        terminal_server(ctx, TerminalConfig::default())
    });
    let printer = domain.spawn(ws, "printer", |ctx| {
        printer_server(ctx, PrinterConfig::default())
    });
    let net = domain.spawn(ws, "internet", |ctx| {
        internet_server(ctx, InternetConfig::default())
    });
    let programs = domain.spawn(ws, "programs", |ctx| {
        program_manager(ctx, ProgramConfig::default())
    });
    let mail = domain.spawn(ws, "mail", |ctx| {
        mail_server(ctx, MailConfig::new("su-score.ARPA"))
    });
    let prefix = domain.spawn(ws, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    wait_for_service(&domain, ws, ServiceId::CONTEXT_PREFIX);

    domain.client(ws, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        // Populate each context a little.
        client.write_file("src/extra.rs", b"// extra").unwrap();
        let t = NameClient::new(ctx, ContextPair::new(term, ContextId::DEFAULT));
        t.write_file("console", b"login: mann").unwrap();
        t.write_file("debug", b"").unwrap();
        let p = NameClient::new(ctx, ContextPair::new(printer, ContextId::DEFAULT));
        p.write_file("thesis.dvi", b"...300 pages...").unwrap();
        let n = NameClient::new(ctx, ContextPair::new(net, ContextId::DEFAULT));
        n.open("10.0.0.5:25", OpenMode::Create).unwrap();
        let m = NameClient::new(ctx, ContextPair::new(mail, ContextId::DEFAULT));
        let mut mb = m.open("cheriton@su-score.ARPA", OpenMode::Append).unwrap();
        mb.write_next(ctx, b"ICDCS deadline approaching").unwrap();
        mb.close(ctx).unwrap();
        // Register two "programs in execution".
        for prog in ["exec", "listdir"] {
            let (msg, payload) = build_csname_request(
                RequestCode::CreateObject,
                ContextId::DEFAULT,
                &CsName::from(prog),
                &ObjectDescriptor::new(vproto::DescriptorTag::Program, CsName::new())
                    .with_ext(DescriptorExt::Program { pid: ctx.my_pid() })
                    .encode(),
            );
            ctx.send(programs, msg, payload, 0).unwrap();
        }
        // Standard prefixes so the generic program can name every context.
        client
            .add_prefix("src", ContextPair::new(fs, ContextId::DEFAULT))
            .unwrap();
        client
            .add_prefix("tty", ContextPair::new(term, ContextId::DEFAULT))
            .unwrap();
        client
            .add_prefix("printer", ContextPair::new(printer, ContextId::DEFAULT))
            .unwrap();
        client
            .add_prefix("tcp", ContextPair::new(net, ContextId::DEFAULT))
            .unwrap();
        client
            .add_prefix("programs", ContextPair::new(programs, ContextId::DEFAULT))
            .unwrap();
        client
            .add_prefix("mail", ContextPair::new(mail, ContextId::DEFAULT))
            .unwrap();

        // THE single list-directory command, across every object type.
        list(&client, "disk files", "[src]src");
        list(&client, "virtual terminals", "[tty]");
        list(&client, "print queue", "[printer]");
        list(&client, "tcp connections", "[tcp]");
        list(&client, "programs in execution", "[programs]");
        list(&client, "mailboxes", "[mail]");
        // And the prefix table itself, via the prefix server's own context.
        let pclient = NameClient::new(ctx, ContextPair::new(prefix, ContextId::DEFAULT));
        list(&pclient, "context prefixes", "");
        // Send one payload the example ignores, to show Bytes in the API.
        let _ = Bytes::new();
    });
    println!("list_directory complete");
}
