//! Multi-server name interpretation: one name crosses two file servers via
//! a cross-server link — Figure 4's "curved arrow" — with the request
//! forwarded mid-interpretation (paper §5.4).
//!
//! ```sh
//! cargo run -p vexamples --example multi_server
//! ```

use vexamples::wait_for_service;
use vkernel::Domain;
use vproto::{ContextId, ContextPair, OpenMode, ServiceId};
use vruntime::NameClient;
use vservers::{file_server, prefix_server, FileServerConfig, PrefixConfig};

fn main() {
    let domain = Domain::new();
    // Two "machines": the user's workstation and a second file server host.
    let ws = domain.add_host();
    let machine_b = domain.add_host();

    let fs_a = domain.spawn(ws, "server-a", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                home: Some("ng/user".into()),
                ..FileServerConfig::default()
            },
        )
    });
    let fs_b = domain.spawn(machine_b, "server-b", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                service_scope: None, // reached only through links/prefixes
                preload: vec![(
                    "archive/1983/kernel-paper.txt".into(),
                    b"The Distributed V Kernel and its Performance...".to_vec(),
                )],
                ..FileServerConfig::default()
            },
        )
    });
    domain.spawn(ws, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    wait_for_service(&domain, ws, ServiceId::CONTEXT_PREFIX);

    domain.client(ws, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs_a, ContextId::DEFAULT));
        client
            .add_prefix("home", ContextPair::new(fs_a, ContextId::HOME))
            .unwrap();

        // The curved arrow: [home]papers points at server B's root context.
        client
            .add_link("[home]papers", ContextPair::new(fs_b, ContextId::DEFAULT))
            .unwrap();
        println!("linked [home]papers -> server B ({fs_b})");

        // One name, interpreted by three servers in turn: the prefix server
        // parses "[home]", server A parses "papers/", server B parses the
        // rest and answers the original client directly.
        let name = "[home]papers/archive/1983/kernel-paper.txt";
        let handle = client.open(name, OpenMode::Read).unwrap();
        println!(
            "opened {name}\n  request entered at server A ({fs_a}),\n  reply came from server {} — forwarding is invisible to the client",
            handle.server()
        );
        assert_eq!(handle.server(), fs_b);
        let text = client.read_file(name).unwrap();
        println!("contents: {}", String::from_utf8_lossy(&text));

        // The link shows up in A's directory listing as a context pointer.
        println!("directory of [home]:");
        for record in client.list_directory("[home]", None).unwrap() {
            println!("  {record}");
        }
    });
    println!("multi_server complete");
}
