//! A miniature V *executive* (shell) — the paper's §6 notes the naming
//! system's "functionality matches well with our multiple window and
//! executive system". Every command below is implemented purely with the
//! standard run-time routines; the executive knows nothing about which
//! server implements which name.
//!
//! ```sh
//! cargo run -p vexamples --example executive            # runs a demo script
//! cargo run -p vexamples --example executive -- 'ls [home]' 'pwd'
//! ```

use vexamples::wait_for_service;
use vkernel::Domain;
use vproto::{ContextId, ContextPair, OpenMode, ServiceId};
use vruntime::NameClient;
use vservers::{
    file_server, prefix_server, printer_server, FileServerConfig, PrefixConfig, PrinterConfig,
};

fn run_command(client: &mut NameClient<'_>, line: &str) {
    println!("v> {line}");
    let mut parts = line.splitn(3, ' ');
    let cmd = parts.next().unwrap_or("");
    let arg1 = parts.next().unwrap_or("");
    let arg2 = parts.next().unwrap_or("");
    let outcome = match cmd {
        "ls" => client.list_directory(arg1, None).map(|records| {
            for r in &records {
                println!("   {r}");
            }
        }),
        "cd" => client.change_context(arg1).map(|pair| {
            println!("   now in {pair}");
        }),
        "pwd" => client.current_context_name().map(|name| {
            println!("   {name}");
        }),
        "cat" => client.read_file(arg1).map(|data| {
            println!("   {}", String::from_utf8_lossy(&data));
        }),
        "write" => client.write_file(arg1, arg2.as_bytes()),
        "mkdir" => client.make_directory(arg1),
        "rm" => client.remove(arg1),
        "mv" => client.rename(arg1, arg2),
        "stat" => client.query(arg1).map(|d| {
            println!("   {d} perms={} owner={}", d.permissions, d.owner);
        }),
        "lpr" => {
            // Print a file: read it, then write it to a job on the print
            // queue — two servers, one uniform interface.
            client.read_file(arg1).and_then(|data| {
                let leaf = arg1.rsplit(['/', ']']).next().unwrap_or(arg1);
                client.write_file(&format!("[printer]{leaf}"), &data)
            })
        }
        "" => Ok(()),
        other => {
            println!("   unknown command: {other}");
            Ok(())
        }
    };
    if let Err(e) = outcome {
        println!("   error: {e}");
    }
}

fn main() {
    let domain = Domain::new();
    let ws = domain.add_host();
    let fs = domain.spawn(ws, "files", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                preload: vec![
                    (
                        "ng/mann/naming.mss".into(),
                        b"Uniform Access to Distributed Name Interpretation".to_vec(),
                    ),
                    ("ng/mann/drafts/icdcs.txt".into(), b"camera ready".to_vec()),
                ],
                home: Some("ng/mann".into()),
                ..FileServerConfig::default()
            },
        )
    });
    let printer = domain.spawn(ws, "printer", |ctx| {
        printer_server(ctx, PrinterConfig::default())
    });
    domain.spawn(ws, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    wait_for_service(&domain, ws, ServiceId::CONTEXT_PREFIX);

    let args: Vec<String> = std::env::args().skip(1).collect();
    domain.client(ws, move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        client
            .add_prefix("home", ContextPair::new(fs, ContextId::HOME))
            .unwrap();
        client
            .add_prefix("printer", ContextPair::new(printer, ContextId::DEFAULT))
            .unwrap();
        client.change_context("[home]").unwrap();

        let script: Vec<String> = if args.is_empty() {
            [
                "pwd",
                "ls [home]",
                "cat naming.mss",
                "mkdir notes",
                "write notes/todo.txt ship the reproduction",
                "cat notes/todo.txt",
                "mv notes/todo.txt notes/done.txt",
                "stat notes/done.txt",
                "lpr [home]naming.mss",
                "ls [printer]",
                "cd drafts",
                "pwd",
                "cat icdcs.txt",
                "rm [home]notes/done.txt",
                "rm [home]notes",
                "ls [home]",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        } else {
            args
        };
        for line in &script {
            run_command(&mut client, line);
        }
        // Leave no dangling instances behind.
        let _ = client
            .open("naming.mss", OpenMode::Read)
            .map(|h| h.close(ctx));
    });
    println!("executive complete");
}
