//! Wire round-trips for the anti-entropy payloads carried by the
//! `SyncPull` / `SyncDigest` / `SyncStatus` operations.

use proptest::prelude::*;
use vproto::{
    decode_delta, decode_digest, encode_delta, encode_digest, SyncBinding, SyncDigestEntry,
    SyncEntry, SyncStatusRec,
};

fn arb_prefix() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..24)
}

fn arb_binding() -> impl Strategy<Value = Option<SyncBinding>> {
    (any::<bool>(), any::<bool>(), any::<u32>(), any::<u32>()).prop_map(
        |(present, logical, target, context)| {
            present.then_some(SyncBinding {
                logical,
                target,
                context,
            })
        },
    )
}

fn arb_entry() -> impl Strategy<Value = SyncEntry> {
    (arb_prefix(), any::<u64>(), arb_binding()).prop_map(|(prefix, epoch, binding)| SyncEntry {
        prefix,
        epoch,
        binding,
    })
}

proptest! {
    /// Any digest — any prefixes, any epochs — survives the wire intact
    /// (the `SyncDigest` request payload).
    #[test]
    fn any_digest_round_trips(
        entries in proptest::collection::vec(
            (arb_prefix(), any::<u64>())
                .prop_map(|(prefix, epoch)| SyncDigestEntry { prefix, epoch }),
            0..32,
        )
    ) {
        let buf = encode_digest(&entries);
        prop_assert_eq!(decode_digest(&buf).unwrap(), entries);
    }

    /// Any delta — live bindings, logical bindings, tombstones — survives
    /// the wire intact (the `SyncDigest` reply payload).
    #[test]
    fn any_delta_round_trips(entries in proptest::collection::vec(arb_entry(), 0..32)) {
        let buf = encode_delta(&entries);
        prop_assert_eq!(decode_delta(&buf).unwrap(), entries);
    }

    /// The `SyncStatus` reply record survives the wire for any counter
    /// values.
    #[test]
    fn any_status_record_round_trips(
        epoch in any::<u64>(),
        table_hash in any::<u64>(),
        counters in proptest::collection::vec(any::<u32>(), 9),
    ) {
        let rec = SyncStatusRec {
            epoch,
            live_entries: counters[0],
            tombstones: counters[1],
            suspects: counters[2],
            table_hash,
            rounds: counters[3],
            adopted: counters[4],
            dropped: counters[5],
            promoted: counters[6],
            suspects_expired: counters[7],
            binding_queries: counters[8],
        };
        prop_assert_eq!(SyncStatusRec::decode(&rec.encode()).unwrap(), rec);
    }

    /// Truncating an encoded delta at any interior byte is a decode error,
    /// never a silent partial table (a `SyncPull` round is atomic).
    #[test]
    fn truncated_delta_never_decodes(
        entries in proptest::collection::vec(arb_entry(), 1..8),
        frac in 0.0f64..1.0,
    ) {
        let buf = encode_delta(&entries);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_delta(&buf[..cut]).is_err());
    }
}

#[test]
fn tombstone_and_live_entries_are_distinguishable() {
    let live = SyncEntry {
        prefix: b"remote".to_vec(),
        epoch: 3,
        binding: Some(SyncBinding {
            logical: true,
            target: 17,
            context: 1,
        }),
    };
    let dead = SyncEntry {
        prefix: b"remote".to_vec(),
        epoch: 3,
        binding: None,
    };
    assert_ne!(encode_delta(&[live]), encode_delta(&[dead]));
}
