//! Wire round-trips for the anti-entropy payloads carried by the
//! `SyncPull` / `SyncDigest` / `SyncGossip` / `SyncStatus` operations.

use proptest::prelude::*;
use vproto::{
    SyncBinding, SyncDeltaMsg, SyncDigestEntry, SyncDigestMsg, SyncEntry, SyncLeafDigest,
    SyncNodeRec, SyncProbeMsg, SyncProbeReply, SyncStatusRec,
};

fn arb_prefix() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..24)
}

fn arb_binding() -> impl Strategy<Value = Option<SyncBinding>> {
    (any::<bool>(), any::<bool>(), any::<u32>(), any::<u32>()).prop_map(
        |(present, logical, target, context)| {
            present.then_some(SyncBinding {
                logical,
                target,
                context,
            })
        },
    )
}

fn arb_entry() -> impl Strategy<Value = SyncEntry> {
    (arb_prefix(), any::<u64>(), arb_binding()).prop_map(|(prefix, epoch, binding)| SyncEntry {
        prefix,
        epoch,
        binding,
    })
}

proptest! {
    /// Any digest — any prefixes, any epochs, any tombstone flags, any
    /// watermark — survives the wire intact (the `SyncDigest` request
    /// payload).
    #[test]
    fn any_digest_round_trips(
        watermark in any::<u64>(),
        entries in proptest::collection::vec(
            (arb_prefix(), any::<u64>(), any::<bool>())
                .prop_map(|(prefix, epoch, tombstone)| SyncDigestEntry {
                    prefix,
                    epoch,
                    tombstone,
                }),
            0..32,
        )
    ) {
        let msg = SyncDigestMsg { watermark, entries };
        prop_assert_eq!(SyncDigestMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Any delta — live bindings, logical bindings, tombstones, any epoch
    /// and GC-horizon header — survives the wire intact (the `SyncDigest`
    /// reply payload).
    #[test]
    fn any_delta_round_trips(
        epoch in any::<u64>(),
        horizon in any::<u64>(),
        entries in proptest::collection::vec(arb_entry(), 0..32),
    ) {
        let msg = SyncDeltaMsg { epoch, horizon, entries };
        prop_assert_eq!(SyncDeltaMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// The `SyncStatus` reply record survives the wire for any counter
    /// values.
    #[test]
    fn any_status_record_round_trips(
        epoch in any::<u64>(),
        table_hash in any::<u64>(),
        watermark in any::<u64>(),
        gc_horizon in any::<u64>(),
        counters in proptest::collection::vec(any::<u32>(), 13),
    ) {
        let rec = SyncStatusRec {
            epoch,
            live_entries: counters[0],
            tombstones: counters[1],
            suspects: counters[2],
            table_hash,
            rounds: counters[3],
            adopted: counters[4],
            dropped: counters[5],
            promoted: counters[6],
            suspects_expired: counters[7],
            binding_queries: counters[8],
            watermark,
            gc_horizon,
            gossip_rounds: counters[9],
            gossip_adopted: counters[10],
            gc_dropped: counters[11],
            probe_rounds: counters[12],
        };
        prop_assert_eq!(SyncStatusRec::decode(&rec.encode()).unwrap(), rec);
    }

    /// Any Merkle probe — any watermark, any node-id set, any leaf digests
    /// — survives the wire intact (the `SyncProbe` request payload).
    #[test]
    fn any_probe_round_trips(
        watermark in any::<u64>(),
        nodes in proptest::collection::vec(any::<u32>(), 0..16),
        leaves in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(
                (arb_prefix(), any::<u64>(), any::<bool>())
                    .prop_map(|(prefix, epoch, tombstone)| SyncDigestEntry {
                        prefix,
                        epoch,
                        tombstone,
                    }),
                0..8,
            ))
                .prop_map(|(node, entries)| SyncLeafDigest { node, entries }),
            0..8,
        ),
    ) {
        let msg = SyncProbeMsg { watermark, nodes, leaves };
        prop_assert_eq!(SyncProbeMsg::decode(&msg.encode()).unwrap(), msg);
    }

    /// Any Merkle probe reply — any header, any child-hash records, any
    /// delta entries — survives the wire intact (the `SyncProbe` reply
    /// payload).
    #[test]
    fn any_probe_reply_round_trips(
        epoch in any::<u64>(),
        horizon in any::<u64>(),
        root in any::<u64>(),
        nodes in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..20))
                .prop_map(|(node, children)| SyncNodeRec { node, children }),
            0..8,
        ),
        entries in proptest::collection::vec(arb_entry(), 0..16),
    ) {
        let msg = SyncProbeReply { epoch, horizon, root, nodes, entries };
        prop_assert_eq!(SyncProbeReply::decode(&msg.encode()).unwrap(), msg);
    }

    /// Truncating an encoded probe reply at any interior byte is a decode
    /// error, never a silent partial subtree (a Merkle round is atomic).
    #[test]
    fn truncated_probe_reply_never_decodes(
        entries in proptest::collection::vec(arb_entry(), 1..8),
        frac in 0.0f64..1.0,
    ) {
        let msg = SyncProbeReply {
            epoch: 1,
            horizon: 0,
            root: 7,
            nodes: vec![SyncNodeRec { node: 3, children: vec![1, 0, 2] }],
            entries,
        };
        let buf = msg.encode();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(SyncProbeReply::decode(&buf[..cut]).is_err());
    }

    /// Truncating an encoded delta at any interior byte is a decode error,
    /// never a silent partial table (a `SyncPull` round is atomic).
    #[test]
    fn truncated_delta_never_decodes(
        entries in proptest::collection::vec(arb_entry(), 1..8),
        frac in 0.0f64..1.0,
    ) {
        let msg = SyncDeltaMsg { epoch: 1, horizon: 0, entries };
        let buf = msg.encode();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        prop_assert!(SyncDeltaMsg::decode(&buf[..cut]).is_err());
    }
}

#[test]
fn tombstone_and_live_entries_are_distinguishable() {
    let delta = |binding| {
        SyncDeltaMsg {
            epoch: 3,
            horizon: 0,
            entries: vec![SyncEntry {
                prefix: b"remote".to_vec(),
                epoch: 3,
                binding,
            }],
        }
        .encode()
    };
    let live = delta(Some(SyncBinding {
        logical: true,
        target: 17,
        context: 1,
    }));
    assert_ne!(live, delta(None));
}

/// The boundary the old 16-bit count silently truncated at: a table one
/// entry past `u16::MAX` must survive the wire with every entry intact.
/// (The advisory `W_SYNC_COUNT` message word saturates; the payload's
/// 32-bit count is authoritative — pinned here.)
#[test]
fn tables_past_u16_max_survive_the_wire() {
    let n = usize::from(u16::MAX) + 1;
    let digest = SyncDigestMsg {
        watermark: 1,
        entries: (0..n)
            .map(|i| SyncDigestEntry {
                prefix: (i as u32).to_le_bytes().to_vec(),
                epoch: i as u64 + 1,
                tombstone: i % 7 == 0,
            })
            .collect(),
    };
    let decoded = SyncDigestMsg::decode(&digest.encode()).unwrap();
    assert_eq!(decoded.entries.len(), n);
    assert_eq!(decoded, digest);

    let delta = SyncDeltaMsg {
        epoch: n as u64,
        horizon: 3,
        entries: (0..n)
            .map(|i| SyncEntry {
                prefix: (i as u32).to_le_bytes().to_vec(),
                epoch: i as u64 + 1,
                binding: (i % 2 == 0).then_some(SyncBinding {
                    logical: false,
                    target: i as u32,
                    context: 9,
                }),
            })
            .collect(),
    };
    let decoded = SyncDeltaMsg::decode(&delta.encode()).unwrap();
    assert_eq!(decoded.entries.len(), n);
    assert_eq!(decoded, delta);
}

/// A subtree probe whose leaf digests alone exceed 64 KiB — past the
/// message segment sizes the fixed header was designed around — must ride
/// the `LONG_LEN_ESCAPE` path and survive intact. (Payload byte strings
/// longer than `u16::MAX - 1` take a u16 escape marker + u32 length.)
#[test]
fn oversized_subtree_probe_survives_the_wire() {
    // One leaf with a single huge prefix (> 64 KiB by itself, forcing the
    // per-string escape) plus one with enough small entries that the leaf
    // digest as a whole crosses 64 KiB.
    let huge = vec![0x5A_u8; 70_000];
    let msg = SyncProbeMsg {
        watermark: 3,
        nodes: vec![0x0100_0001],
        leaves: vec![
            SyncLeafDigest {
                node: 0x0500_0001,
                entries: vec![SyncDigestEntry {
                    prefix: huge,
                    epoch: 1,
                    tombstone: false,
                }],
            },
            SyncLeafDigest {
                node: 0x0500_0002,
                entries: (0..4096_u32)
                    .map(|i| SyncDigestEntry {
                        prefix: i.to_le_bytes().repeat(5),
                        epoch: u64::from(i) + 1,
                        tombstone: i % 5 == 0,
                    })
                    .collect(),
            },
        ],
    };
    let buf = msg.encode();
    assert!(buf.len() > 64 * 1024, "payload must exceed 64 KiB");
    assert_eq!(SyncProbeMsg::decode(&buf).unwrap(), msg);

    let reply = SyncProbeReply {
        epoch: 5,
        horizon: 2,
        root: 0xABCD,
        nodes: vec![SyncNodeRec {
            node: 0,
            children: (0..16).collect(),
        }],
        entries: vec![SyncEntry {
            prefix: vec![0xA5; 70_000],
            epoch: 4,
            binding: Some(SyncBinding {
                logical: false,
                target: 1,
                context: 2,
            }),
        }],
    };
    let rbuf = reply.encode();
    assert!(rbuf.len() > 64 * 1024, "reply must exceed 64 KiB");
    assert_eq!(SyncProbeReply::decode(&rbuf).unwrap(), reply);
}

/// The child-hash count is 32-bit on the wire: a node record one child
/// past `u16::MAX` survives intact. (No honest tree fans out that wide —
/// this pins the count width so the advisory `W_SYNC_NODES` word can
/// keep saturating without corrupting the payload.)
#[test]
fn node_records_past_u16_max_children_survive_the_wire() {
    let n = usize::from(u16::MAX) + 1;
    let reply = SyncProbeReply {
        epoch: 1,
        horizon: 0,
        root: 9,
        nodes: vec![SyncNodeRec {
            node: 0x0100_0007,
            children: (0..n as u64).collect(),
        }],
        entries: Vec::new(),
    };
    let decoded = SyncProbeReply::decode(&reply.encode()).unwrap();
    assert_eq!(decoded.nodes[0].children.len(), n);
    assert_eq!(decoded, reply);
}
