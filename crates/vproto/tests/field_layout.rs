//! Static checks that per-message field layouts do not overlap — the class
//! of bug (two fields written to the same word of a reply) that typed wire
//! formats exist to prevent.

use vproto::fields::*;
use vproto::MSG_WORDS;

/// Expands to a check that the listed (label, word-range) fields of one
/// message kind are pairwise disjoint and in bounds.
fn assert_disjoint(kind: &str, fields: &[(&str, std::ops::Range<usize>)]) {
    for (name, range) in fields {
        assert!(
            range.end <= MSG_WORDS,
            "{kind}: field {name} out of bounds ({range:?})"
        );
        assert!(
            range.start >= 1,
            "{kind}: field {name} overlaps the code word"
        );
    }
    for (i, (name_a, a)) in fields.iter().enumerate() {
        for (name_b, b) in fields.iter().skip(i + 1) {
            let overlap = a.start < b.end && b.start < a.end;
            assert!(
                !overlap,
                "{kind}: fields {name_a} ({a:?}) and {name_b} ({b:?}) overlap"
            );
        }
    }
}

const CSNAME_SKELETON: [(&str, std::ops::Range<usize>); 3] = [
    ("context_id", 1..3),
    ("name_index", 3..4),
    ("name_length", 4..5),
];

#[test]
fn open_reply_layout() {
    assert_disjoint(
        "CreateInstance reply",
        &[
            ("server_pid", W_PID_LO..W_PID_LO + 2),
            ("size", W_SIZE_LO..W_SIZE_LO + 2),
            ("instance", W_INSTANCE..W_INSTANCE + 1),
            ("object_id", W_OBJECT_ID_LO..W_OBJECT_ID_LO + 2),
        ],
    );
}

#[test]
fn create_instance_request_layout() {
    let mut fields: Vec<(&str, std::ops::Range<usize>)> = CSNAME_SKELETON.to_vec();
    fields.push(("mode", W_MODE..W_MODE + 1));
    fields.push(("forward_count", W_FORWARD_COUNT..W_FORWARD_COUNT + 1));
    assert_disjoint("CreateInstance request", &fields);
}

#[test]
fn io_request_layout() {
    assert_disjoint(
        "Read/WriteInstance request",
        &[
            ("instance", W_IO_INSTANCE..W_IO_INSTANCE + 1),
            ("offset", W_IO_OFFSET_LO..W_IO_OFFSET_LO + 2),
            ("count", W_IO_COUNT..W_IO_COUNT + 1),
        ],
    );
}

#[test]
fn add_context_name_request_layout() {
    let mut fields: Vec<(&str, std::ops::Range<usize>)> = CSNAME_SKELETON.to_vec();
    fields.push(("target_pid", W_TARGET_PID_LO..W_TARGET_PID_LO + 2));
    fields.push(("target_ctx", W_TARGET_CTX_LO..W_TARGET_CTX_LO + 2));
    fields.push(("logical", W_LOGICAL..W_LOGICAL + 1));
    fields.push(("forward_count", W_FORWARD_COUNT..W_FORWARD_COUNT + 1));
    assert_disjoint("AddContextName request", &fields);
}

#[test]
fn rename_request_layout() {
    let mut fields: Vec<(&str, std::ops::Range<usize>)> = CSNAME_SKELETON.to_vec();
    fields.push(("name2_index", W_NAME2_INDEX..W_NAME2_INDEX + 1));
    fields.push(("name2_len", W_NAME2_LEN..W_NAME2_LEN + 1));
    fields.push(("forward_count", W_FORWARD_COUNT..W_FORWARD_COUNT + 1));
    assert_disjoint("RenameObject request", &fields);
}

#[test]
fn query_name_reply_layout() {
    assert_disjoint(
        "QueryName reply",
        &[
            ("context_id", 1..3),
            ("server_pid", W_PID_LO..W_PID_LO + 2),
            (
                "object_id (central model)",
                W_OBJECT_ID_LO..W_OBJECT_ID_LO + 2,
            ),
            ("staleness", W_STALENESS..W_STALENESS + 1),
        ],
    );
}

#[test]
fn sync_pull_reply_layout() {
    assert_disjoint(
        "SyncPull reply",
        &[
            ("adopted", W_SYNC_ADOPTED..W_SYNC_ADOPTED + 1),
            ("dropped", W_SYNC_DROPPED..W_SYNC_DROPPED + 1),
            ("promoted", W_SYNC_PROMOTED..W_SYNC_PROMOTED + 1),
            ("epoch", W_SYNC_EPOCH_LO..W_SYNC_EPOCH_LO + 2),
            ("gossip", W_SYNC_GOSSIP..W_SYNC_GOSSIP + 1),
        ],
    );
}

#[test]
fn sync_digest_layout() {
    assert_disjoint(
        "SyncDigest request/reply",
        &[("entry_count", W_SYNC_COUNT..W_SYNC_COUNT + 1)],
    );
}

#[test]
fn sync_probe_layout() {
    // The request carries the node/leaf-digest count; the reply reuses
    // W_SYNC_COUNT for its delta entries next to the node-record count.
    assert_disjoint(
        "SyncProbe request/reply",
        &[
            ("entry_count", W_SYNC_COUNT..W_SYNC_COUNT + 1),
            ("node_count", W_SYNC_NODES..W_SYNC_NODES + 1),
        ],
    );
}

#[test]
fn sync_gossip_request_layout() {
    // The probe reply reuses the pid words; the request carries the phase.
    assert_disjoint(
        "SyncGossip request/reply",
        &[
            ("peer_pid (reply)", W_PID_LO..W_PID_LO + 2),
            ("phase (request)", W_SYNC_PHASE..W_SYNC_PHASE + 1),
        ],
    );
}

#[test]
fn invert_request_layout() {
    assert_disjoint(
        "GetContextName/GetInstanceName request",
        &[("invert_id", W_INVERT_ID_LO..W_INVERT_ID_LO + 2)],
    );
}

#[test]
fn time_reply_layout() {
    assert_disjoint("GetTime reply", &[("seconds", W_TIME_LO..W_TIME_LO + 2)]);
}
