//! Wire round-trip coverage for every declared op code.
//!
//! Each request and reply code is named here *explicitly*, with its wire
//! value, so this test pins the on-the-wire protocol: renumbering or
//! removing a code breaks this file, and adding one without extending it
//! is caught by `vcheck`'s opcode-coverage lint.

use proptest::prelude::*;
use vproto::{
    is_csname_request_raw, ContextId, Message, ReplyCode, RequestCode, WireReader, WireWriter,
};

/// Every request code, its pinned wire value, and whether its message
/// carries the standard CSname fields (paper §5.3).
const REQUESTS: &[(RequestCode, u16, bool)] = &[
    (RequestCode::Echo, 0x0001, false),
    (RequestCode::ReadInstance, 0x0002, false),
    (RequestCode::WriteInstance, 0x0003, false),
    (RequestCode::ReleaseInstance, 0x0004, false),
    (RequestCode::QueryInstance, 0x0005, false),
    (RequestCode::GetContextName, 0x0006, false),
    (RequestCode::GetInstanceName, 0x0007, false),
    (RequestCode::GetTime, 0x0008, false),
    (RequestCode::SetInstanceOwner, 0x0009, false),
    (RequestCode::OpenById, 0x000A, false),
    (RequestCode::RemoveById, 0x000B, false),
    (RequestCode::SyncPull, 0x000C, false),
    (RequestCode::SyncDigest, 0x000D, false),
    (RequestCode::SyncStatus, 0x000E, false),
    (RequestCode::SyncGossip, 0x000F, false),
    (RequestCode::SyncProbe, 0x0010, false),
    (RequestCode::ResolveBatch, 0x0011, false),
    (RequestCode::QueryName, 0x8001, true),
    (RequestCode::QueryObject, 0x8002, true),
    (RequestCode::ModifyObject, 0x8003, true),
    (RequestCode::CreateInstance, 0x8004, true),
    (RequestCode::RemoveObject, 0x8005, true),
    (RequestCode::RenameObject, 0x8006, true),
    (RequestCode::AddContextName, 0x8007, true),
    (RequestCode::DeleteContextName, 0x8008, true),
    (RequestCode::CreateObject, 0x8009, true),
];

/// Every reply code with its pinned wire value.
const REPLIES: &[(ReplyCode, u16)] = &[
    (ReplyCode::Ok, 0x0000),
    (ReplyCode::NotFound, 0x0001),
    (ReplyCode::IllegalName, 0x0002),
    (ReplyCode::NotAContext, 0x0003),
    (ReplyCode::NoPermission, 0x0004),
    (ReplyCode::BadArgs, 0x0005),
    (ReplyCode::UnknownRequest, 0x0006),
    (ReplyCode::EndOfFile, 0x0007),
    (ReplyCode::NoServerResources, 0x0008),
    (ReplyCode::Retry, 0x0009),
    (ReplyCode::InvalidContext, 0x000A),
    (ReplyCode::NameInUse, 0x000B),
    (ReplyCode::NotEmpty, 0x000C),
    (ReplyCode::InvalidInstance, 0x000D),
    (ReplyCode::BadMode, 0x000E),
    (ReplyCode::NoServer, 0x000F),
    (ReplyCode::Timeout, 0x0010),
    (ReplyCode::ForwardLoop, 0x0011),
    (ReplyCode::Unknown, 0xFFFF),
];

#[test]
fn tables_cover_every_declared_code() {
    assert_eq!(REQUESTS.len(), RequestCode::ALL.len());
    assert_eq!(REPLIES.len(), ReplyCode::ALL.len());
    for (i, &(code, ..)) in REQUESTS.iter().enumerate() {
        assert_eq!(code, RequestCode::ALL[i], "declaration order");
    }
    for (i, &(code, _)) in REPLIES.iter().enumerate() {
        assert_eq!(code, ReplyCode::ALL[i], "declaration order");
    }
}

#[test]
fn every_request_code_round_trips_through_message_bytes() {
    for &(code, wire, csname) in REQUESTS {
        assert_eq!(code.as_u16(), wire, "{code} wire value");
        assert_eq!(code.is_csname_request(), csname, "{code} CSname bit");
        assert_eq!(is_csname_request_raw(wire), csname, "{code} raw bit");

        let msg = Message::request(code);
        let back = Message::from_bytes(&msg.to_bytes());
        assert_eq!(back.code_raw(), wire, "{code} survives the wire");
        assert_eq!(back.request_code(), Some(code), "{code} decodes");
        assert_eq!(back.is_csname_request(), csname, "{code} structural tag");
    }
}

#[test]
fn every_reply_code_round_trips_through_message_bytes() {
    for &(code, wire) in REPLIES {
        assert_eq!(code.as_u16(), wire, "{code} wire value");

        let msg = Message::reply(code);
        let back = Message::from_bytes(&msg.to_bytes());
        assert_eq!(back.code_raw(), wire, "{code} survives the wire");
        assert_eq!(back.reply_code(), code, "{code} decodes");
    }
}

proptest! {
    /// Every declared request code, with arbitrary field words, survives
    /// the wire with its code and structural CSname-ness intact.
    #[test]
    fn any_request_with_any_fields_round_trips(
        idx in 0..RequestCode::ALL.len(),
        words in proptest::collection::vec(any::<u16>(), 15),
    ) {
        let code = RequestCode::ALL[idx];
        let mut msg = Message::request(code);
        for (i, w) in words.iter().enumerate() {
            msg.set_word(i + 1, *w);
        }
        let back = Message::from_bytes(&msg.to_bytes());
        prop_assert_eq!(back.request_code(), Some(code));
        prop_assert_eq!(back.is_csname_request(), code.is_csname_request());
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(back.word(i + 1), *w);
        }
    }

    /// A CSname request's message fields and payload (the name bytes,
    /// carried via MoveFrom) round-trip through the wire codec together.
    #[test]
    fn csname_request_with_payload_round_trips(
        idx in 0..RequestCode::ALL.len(),
        ctx in any::<u32>(),
        name in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let code = RequestCode::ALL[idx];
        if !code.is_csname_request() {
            return Ok(());
        }
        let mut msg = Message::request(code);
        msg.set_context_id(ContextId::new(ctx))
            .set_name_index(0)
            .set_name_length(name.len() as u16);
        let mut w = WireWriter::new();
        w.raw(&msg.to_bytes()).bytes(&name);
        let buf = w.into_vec();

        let mut r = WireReader::new(&buf);
        let head: [u8; 32] = r.raw(32).unwrap().try_into().unwrap();
        let back = Message::from_bytes(&head);
        prop_assert_eq!(back.request_code(), Some(code));
        prop_assert!(back.is_csname_request());
        prop_assert_eq!(back.context_id(), ContextId::new(ctx));
        prop_assert_eq!(back.name_length() as usize, name.len());
        prop_assert_eq!(r.bytes().unwrap(), &name[..]);
        prop_assert!(r.is_exhausted());
    }
}

#[test]
fn unknown_codes_keep_their_structural_meaning() {
    // A CSname request the crate has never heard of still classifies as
    // CSname (the forwarding property of §5.3) and survives the wire raw.
    let msg = Message::request_raw(0x8F42);
    let back = Message::from_bytes(&msg.to_bytes());
    assert_eq!(back.code_raw(), 0x8F42);
    assert_eq!(back.request_code(), None);
    assert!(back.is_csname_request());
    assert_eq!(ReplyCode::from_u16(0x7654), ReplyCode::Unknown);
}

#[test]
fn oversized_payload_survives_the_wire() {
    // A directory transfer past 64 KiB used to abort the encoder (and,
    // before that, silently truncate the length). The escaped long-length
    // prefix must round-trip it exactly, with the stream still aligned for
    // whatever follows.
    let payload: Vec<u8> = (0..(u16::MAX as usize + 4093))
        .map(|i| (i % 251) as u8)
        .collect();
    assert!(payload.len() > 64 * 1024);
    let mut w = WireWriter::new();
    w.bytes(&payload).u16(0xBEEF);
    let buf = w.into_vec();
    let mut r = WireReader::new(&buf);
    assert_eq!(r.bytes().unwrap(), &payload[..]);
    assert_eq!(r.u16().unwrap(), 0xBEEF);
    assert!(r.is_exhausted());
}
