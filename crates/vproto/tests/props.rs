//! Property-based tests for the wire-level types (FIG-2 and FIG-3 of the
//! experiment index in DESIGN.md).

use proptest::prelude::*;
use vproto::{
    ContextId, ContextPair, CsName, DescriptorExt, DescriptorTag, Message, ObjectDescriptor,
    ObjectId, Permissions, Pid, WireWriter,
};

fn arb_csname() -> impl Strategy<Value = CsName> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(CsName::from)
}

fn arb_ext() -> impl Strategy<Value = (u16, DescriptorExt)> {
    prop_oneof![
        Just((DescriptorTag::File.as_u16(), DescriptorExt::None)),
        (any::<u32>(), any::<u32>()).prop_map(|(c, e)| (
            DescriptorTag::Directory.as_u16(),
            DescriptorExt::Directory {
                context: ContextId::new(c),
                entries: e,
            }
        )),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(p, c, l)| (
            DescriptorTag::ContextPrefix.as_u16(),
            DescriptorExt::ContextPrefix {
                target: ContextPair::new(Pid::from_raw(p), ContextId::new(c)),
                logical_service: l,
            }
        )),
        (any::<u16>(), any::<u16>()).prop_map(|(c, r)| (
            DescriptorTag::Terminal.as_u16(),
            DescriptorExt::Terminal {
                columns: c,
                rows: r
            }
        )),
        any::<u32>().prop_map(|q| (
            DescriptorTag::PrintJob.as_u16(),
            DescriptorExt::PrintJob { queue_position: q }
        )),
        any::<u32>().prop_map(|p| (
            DescriptorTag::Program.as_u16(),
            DescriptorExt::Program {
                pid: Pid::from_raw(p)
            }
        )),
        (any::<u32>(), any::<u16>(), any::<u16>()).prop_map(|(h, p, s)| (
            DescriptorTag::TcpConnection.as_u16(),
            DescriptorExt::TcpConnection {
                remote_host: h,
                remote_port: p,
                state: s,
            }
        )),
        any::<u32>().prop_map(|u| (
            DescriptorTag::Mailbox.as_u16(),
            DescriptorExt::Mailbox { unread: u }
        )),
    ]
}

fn arb_descriptor() -> impl Strategy<Value = ObjectDescriptor> {
    (
        arb_ext(),
        arb_csname(),
        arb_csname(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
    )
        .prop_map(
            |((tag_raw, ext), name, owner, oid, size, modified, perms)| ObjectDescriptor {
                tag_raw,
                name,
                owner,
                object_id: ObjectId(oid),
                size,
                modified,
                permissions: Permissions(perms),
                ext,
            },
        )
}

proptest! {
    /// FIG-2: pid subfield split/join is lossless for every 32-bit value.
    #[test]
    fn pid_split_join_roundtrip(raw in any::<u32>()) {
        let pid = Pid::from_raw(raw);
        let rebuilt = Pid::new(pid.logical_host(), pid.local_pid());
        prop_assert_eq!(rebuilt, pid);
        prop_assert_eq!(rebuilt.raw(), raw);
    }

    /// FIG-2: two pids are equal iff both subfields are equal.
    #[test]
    fn pid_equality_is_subfield_equality(a in any::<u32>(), b in any::<u32>()) {
        let (pa, pb) = (Pid::from_raw(a), Pid::from_raw(b));
        let same_fields = pa.logical_host() == pb.logical_host()
            && pa.local_pid() == pb.local_pid();
        prop_assert_eq!(pa == pb, same_fields);
    }

    /// Message 32-byte wire encoding is lossless.
    #[test]
    fn message_bytes_roundtrip(words in proptest::collection::vec(any::<u16>(), 16)) {
        let mut m = Message::new();
        for (i, w) in words.iter().enumerate() {
            m.set_word(i, *w);
        }
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()), m);
    }

    /// FIG-3: descriptor records roundtrip for every tag and field content.
    #[test]
    fn descriptor_roundtrip(d in arb_descriptor()) {
        let back = ObjectDescriptor::decode_one(&d.encode()).unwrap();
        prop_assert_eq!(back, d);
    }

    /// FIG-3: a directory stream of arbitrary records decodes to the same
    /// sequence — the context-directory invariant of paper §5.6.
    #[test]
    fn directory_stream_roundtrip(ds in proptest::collection::vec(arb_descriptor(), 0..8)) {
        let mut w = WireWriter::new();
        for d in &ds {
            d.encode_into(&mut w);
        }
        let decoded = ObjectDescriptor::decode_directory(&w.into_vec()).unwrap();
        prop_assert_eq!(decoded, ds);
    }

    /// Prefix parsing: for any prefix body without ']' and any rest, the
    /// composed name parses back to exactly that prefix and rest index.
    #[test]
    fn prefix_parse_inverts_composition(
        prefix in proptest::collection::vec(any::<u8>().prop_filter("no ]", |b| *b != b']'), 0..16),
        rest in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut composed = vec![b'['];
        composed.extend_from_slice(&prefix);
        composed.push(b']');
        composed.extend_from_slice(&rest);
        let name = CsName::from(composed);
        let parse = name.parse_prefix().expect("composed prefix parses");
        prop_assert_eq!(parse.prefix, &prefix[..]);
        prop_assert_eq!(name.suffix(parse.rest_index), &rest[..]);
    }

    /// Truncating an encoded descriptor anywhere strictly inside it never
    /// panics and always errors.
    #[test]
    fn truncated_descriptor_errors(d in arb_descriptor(), frac in 0.0f64..1.0) {
        let bytes = d.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(ObjectDescriptor::decode_one(&bytes[..cut]).is_err());
        }
    }
}
