//! Service naming (paper §4.2).
//!
//! Most V-System services are provided by dedicated server processes. Because
//! a pid names only the process *currently* implementing a service — and a
//! server recreated after a crash has a different pid — the kernel supports a
//! separate service-naming facility: `SetPid(service, pid, scope)` registers
//! a process as providing a service, and `GetPid(service, scope)` returns the
//! registered pid, broadcasting to other kernels if the local table misses.

use std::fmt;

/// A well-known numeric identifier for a V-System service (paper §4.2).
///
/// Programs are written in terms of services; the binding of service to
/// server process happens at time of use via `GetPid`.
///
/// # Examples
///
/// ```
/// use vproto::ServiceId;
///
/// let svc = ServiceId::FILE_SERVER;
/// assert_eq!(ServiceId::new(svc.raw()), svc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Storage (file) service.
    pub const FILE_SERVER: ServiceId = ServiceId(1);
    /// Per-user context prefix service (paper §5.8).
    pub const CONTEXT_PREFIX: ServiceId = ServiceId(2);
    /// Virtual graphics terminal service.
    pub const TERMINAL_SERVER: ServiceId = ServiceId(3);
    /// Printer service.
    pub const PRINT_SERVER: ServiceId = ServiceId(4);
    /// Internet (IP/TCP) service.
    pub const INTERNET_SERVER: ServiceId = ServiceId(5);
    /// Program manager (programs in execution).
    pub const PROGRAM_MANAGER: ServiceId = ServiceId(6);
    /// Time service.
    pub const TIME_SERVER: ServiceId = ServiceId(7);
    /// Exception service.
    pub const EXCEPTION_SERVER: ServiceId = ServiceId(8);
    /// Computer-mail naming service (extensibility demo, paper §2.2).
    pub const MAIL_SERVER: ServiceId = ServiceId(9);
    /// Centralized name server (baseline model of paper §2.1, for comparison
    /// experiments only — not part of the V design).
    pub const CENTRAL_NAME_SERVER: ServiceId = ServiceId(10);
    /// Pipe service (pipes are among the §3.2 I/O protocol's sources/sinks).
    pub const PIPE_SERVER: ServiceId = ServiceId(11);

    /// First identifier available for user-defined services.
    pub const FIRST_USER: ServiceId = ServiceId(1000);

    /// Creates a service identifier from its raw value.
    pub const fn new(raw: u32) -> Self {
        ServiceId(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let known = match *self {
            ServiceId::FILE_SERVER => Some("file-server"),
            ServiceId::CONTEXT_PREFIX => Some("context-prefix"),
            ServiceId::TERMINAL_SERVER => Some("terminal-server"),
            ServiceId::PRINT_SERVER => Some("print-server"),
            ServiceId::INTERNET_SERVER => Some("internet-server"),
            ServiceId::PROGRAM_MANAGER => Some("program-manager"),
            ServiceId::TIME_SERVER => Some("time-server"),
            ServiceId::EXCEPTION_SERVER => Some("exception-server"),
            ServiceId::MAIL_SERVER => Some("mail-server"),
            ServiceId::CENTRAL_NAME_SERVER => Some("central-name-server"),
            ServiceId::PIPE_SERVER => Some("pipe-server"),
            _ => None,
        };
        match known {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "service{}", self.0),
        }
    }
}

/// Registration/lookup scope for service naming (paper §4.2).
///
/// The paper: "Scope is one of 'local' to this machine, 'remote', or 'both
/// local and remote'. We have found it important to distinguish between
/// simple local servers and remotely-available 'public' servers, and even to
/// allow both simultaneously for the same service."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scope {
    /// Visible only to processes on the same logical host.
    Local,
    /// Visible only to processes on *other* logical hosts.
    Remote,
    /// Visible everywhere.
    #[default]
    Both,
}

impl Scope {
    /// Whether a registration with this scope answers a *local* lookup
    /// (client on the same host as the registered server).
    pub fn serves_local(self) -> bool {
        matches!(self, Scope::Local | Scope::Both)
    }

    /// Whether a registration with this scope answers a *remote* lookup
    /// (client on a different host).
    pub fn serves_remote(self) -> bool {
        matches!(self, Scope::Remote | Scope::Both)
    }

    /// Whether a lookup with this scope may consult other hosts at all.
    pub fn searches_remote(self) -> bool {
        matches!(self, Scope::Remote | Scope::Both)
    }

    /// Whether a lookup with this scope may consult the local host table.
    pub fn searches_local(self) -> bool {
        matches!(self, Scope::Local | Scope::Both)
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Local => write!(f, "local"),
            Scope::Remote => write!(f, "remote"),
            Scope::Both => write!(f, "both"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_visibility_matrix() {
        assert!(Scope::Local.serves_local());
        assert!(!Scope::Local.serves_remote());
        assert!(!Scope::Remote.serves_local());
        assert!(Scope::Remote.serves_remote());
        assert!(Scope::Both.serves_local());
        assert!(Scope::Both.serves_remote());
    }

    #[test]
    fn scope_search_matrix() {
        assert!(Scope::Local.searches_local());
        assert!(!Scope::Local.searches_remote());
        assert!(Scope::Remote.searches_remote());
        assert!(!Scope::Remote.searches_local());
        assert!(Scope::Both.searches_local());
        assert!(Scope::Both.searches_remote());
    }

    #[test]
    fn known_service_display() {
        assert_eq!(ServiceId::FILE_SERVER.to_string(), "file-server");
        assert_eq!(ServiceId::new(4242).to_string(), "service4242");
    }

    #[test]
    fn user_services_do_not_collide_with_well_known() {
        assert!(ServiceId::FIRST_USER.raw() > ServiceId::CENTRAL_NAME_SERVER.raw());
    }
}
