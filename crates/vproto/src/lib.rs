//! Wire-level types for the V-System naming reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace, mirroring the message standards of the V-System as described in
//! Cheriton & Mann, *Uniform Access to Distributed Name Interpretation in the
//! V-System* (ICDCS 1984):
//!
//! * [`Pid`] — 32-bit process identifiers structured as a 16-bit logical host
//!   and a 16-bit local process identifier (paper §4.1, Figure 2).
//! * [`ServiceId`] and [`Scope`] — service naming used by `SetPid`/`GetPid`
//!   (paper §4.2).
//! * [`Message`] — the fixed 32-byte request/reply message, with the request
//!   code acting as a tag field in its first 16-bit word (paper §3.2).
//! * [`RequestCode`] / [`ReplyCode`] — standard operation and reply codes,
//!   including the name-handling protocol operations (paper §5.7).
//! * [`CsName`] — character string names: arbitrary byte strings, usually
//!   human-readable ASCII (paper §5.1).
//! * [`ObjectDescriptor`] — typed object description records returned by the
//!   query operation and context directories (paper §5.5, Figure 3).
//!
//! # Examples
//!
//! Build a CSname request the way a client run-time stub would:
//!
//! ```
//! use vproto::{Message, RequestCode, CsName, ContextId};
//!
//! let name = CsName::from("[home]notes/todo.txt");
//! let mut msg = Message::request(RequestCode::CreateInstance);
//! msg.set_context_id(ContextId::DEFAULT);
//! msg.set_name_index(0);
//! msg.set_name_length(name.len() as u16);
//! assert_eq!(msg.request_code(), Some(RequestCode::CreateInstance));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod codes;
mod csname;
mod descriptor;
mod message;
mod pid;
mod service;
mod sync;
mod wire;

pub use batch::{
    ResolveAnswer, ResolveBatchMsg, ResolveBatchReply, RESOLVE_NOT_FOUND, RESOLVE_NO_SERVER,
    RESOLVE_OK,
};
pub use codes::{is_csname_request_raw, ReplyCode, RequestCode, CSNAME_BIT};
pub use csname::{CsName, PrefixParse, PREFIX_CLOSE, PREFIX_OPEN};
pub use descriptor::{
    ContextPair, DecodeError, DescriptorExt, DescriptorTag, InstanceId, ObjectDescriptor, ObjectId,
    Permissions,
};
pub use message::{fields, ContextId, Message, OpenMode, MSG_WORDS};
pub use pid::{LogicalHost, Pid};
pub use service::{Scope, ServiceId};
pub use sync::{
    SyncBinding, SyncDeltaMsg, SyncDigestEntry, SyncDigestMsg, SyncEntry, SyncLeafDigest,
    SyncNodeRec, SyncProbeMsg, SyncProbeReply, SyncStatusRec,
};
pub use wire::{WireReader, WireWriter};
