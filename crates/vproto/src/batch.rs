//! Wire structures for [`crate::RequestCode::ResolveBatch`].
//!
//! A resolution burst costs one IPC transaction per name under the
//! standard `QueryName` protocol. `ResolveBatch` amortizes that: the
//! request payload carries many bare prefixes, the reply carries one
//! answer per name, and the server promises every answer comes from a
//! single published snapshot of its table — the batch observes one
//! consistent state, never a half-applied sync round.
//!
//! Counts are 32-bit on the wire, like the anti-entropy payloads: the
//! 16-bit message-word count is advisory and saturating, the payload
//! count is authoritative.

use crate::descriptor::DecodeError;
use crate::wire::{WireReader, WireWriter};

/// Per-name outcome: the prefix resolved to a binding.
pub const RESOLVE_OK: u16 = 0;
/// Per-name outcome: the server's table holds no live binding.
pub const RESOLVE_NOT_FOUND: u16 = 1;
/// Per-name outcome: a logical binding whose service has no registered
/// provider right now.
pub const RESOLVE_NO_SERVER: u16 = 2;

/// The `ResolveBatch` request payload: the prefixes to resolve, bare
/// (no surrounding brackets).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResolveBatchMsg {
    /// The prefix names, answered in order.
    pub names: Vec<Vec<u8>>,
}

/// One answer in a `ResolveBatch` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveAnswer {
    /// [`RESOLVE_OK`], [`RESOLVE_NOT_FOUND`] or [`RESOLVE_NO_SERVER`].
    pub status: u16,
    /// Raw pid of the server behind the prefix (0 unless `status` is OK).
    pub pid: u32,
    /// Raw context id within that server (0 unless `status` is OK).
    pub context: u32,
    /// 0 for a fresh answer, nonzero if the binding is suspect (armed
    /// suspicion, or an unverified replica entry).
    pub staleness: u16,
}

/// The `ResolveBatch` reply payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResolveBatchReply {
    /// One answer per requested name, in request order.
    pub answers: Vec<ResolveAnswer>,
}

impl ResolveBatchMsg {
    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.names.len() as u32);
        for name in &self.names {
            w.bytes(name);
        }
        w.into_vec()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<ResolveBatchMsg, DecodeError> {
        let mut r = WireReader::new(buf);
        let count = r.u32()? as usize;
        let mut names = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            names.push(r.bytes()?.to_vec());
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(ResolveBatchMsg { names })
    }
}

impl ResolveBatchReply {
    /// Encodes the reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.answers.len() as u32);
        for a in &self.answers {
            w.u16(a.status).u32(a.pid).u32(a.context).u16(a.staleness);
        }
        w.into_vec()
    }

    /// Decodes a reply payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<ResolveBatchReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let count = r.u32()? as usize;
        let mut answers = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            answers.push(ResolveAnswer {
                status: r.u16()?,
                pid: r.u32()?,
                context: r.u32()?,
                staleness: r.u16()?,
            });
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(ResolveBatchReply { answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let msg = ResolveBatchMsg {
            names: vec![b"storage".to_vec(), b"".to_vec(), b"print-q".to_vec()],
        };
        assert_eq!(ResolveBatchMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn reply_roundtrip() {
        let reply = ResolveBatchReply {
            answers: vec![
                ResolveAnswer {
                    status: RESOLVE_OK,
                    pid: 0x0002_0009,
                    context: 7,
                    staleness: 0,
                },
                ResolveAnswer {
                    status: RESOLVE_NOT_FOUND,
                    pid: 0,
                    context: 0,
                    staleness: 0,
                },
                ResolveAnswer {
                    status: RESOLVE_NO_SERVER,
                    pid: 0,
                    context: 0,
                    staleness: 1,
                },
            ],
        };
        assert_eq!(ResolveBatchReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let msg = ResolveBatchMsg::default();
        assert_eq!(ResolveBatchMsg::decode(&msg.encode()).unwrap(), msg);
        let reply = ResolveBatchReply::default();
        assert_eq!(ResolveBatchReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = ResolveBatchMsg::default().encode();
        buf.push(0);
        assert!(matches!(
            ResolveBatchMsg::decode(&buf),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn large_batch_roundtrips_past_u16() {
        // Counts are 32-bit: a batch past 65 535 names must survive.
        let msg = ResolveBatchMsg {
            names: (0..70_000u32).map(|i| i.to_le_bytes().to_vec()).collect(),
        };
        let back = ResolveBatchMsg::decode(&msg.encode()).unwrap();
        assert_eq!(back.names.len(), 70_000);
        assert_eq!(back, msg);
    }
}
