//! Minimal little-endian wire encoding helpers used by descriptor records
//! and context directories.
//!
//! V messages are fixed 32-byte structures, but descriptor records and
//! directory contents are variable-length byte streams transferred as
//! payloads. This module provides the (deliberately tiny) reader/writer both
//! ends share.

use crate::descriptor::DecodeError;

/// Append-only little-endian encoder.
///
/// # Examples
///
/// ```
/// use vproto::{WireWriter, WireReader};
///
/// let mut w = WireWriter::new();
/// w.u16(7).u32(42).bytes(b"hi");
/// let buf = w.into_vec();
/// let mut r = WireReader::new(&buf);
/// assert_eq!(r.u16().unwrap(), 7);
/// assert_eq!(r.u32().unwrap(), 42);
/// assert_eq!(r.bytes().unwrap(), b"hi");
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string (u16 length).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() > u16::MAX as usize`.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        assert!(b.len() <= u16::MAX as usize, "wire byte string too long");
        self.u16(b.len() as u16);
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Returns the current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the buffer ends early.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u16()? as usize;
        self.take(len)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u16(0xA1B2).u32(0xDEADBEEF).u64(0x0123_4567_89AB_CDEF);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.u16().unwrap(), 0xA1B2);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_string_roundtrip() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"name.txt");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"name.txt");
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let mut r = WireReader::new(&[0x01]);
        match r.u32() {
            Err(DecodeError::Truncated { needed, available }) => {
                assert_eq!(needed, 4);
                assert_eq!(available, 1);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncated_byte_string() {
        // Length prefix claims 10 bytes, only 2 present.
        let mut w = WireWriter::new();
        w.u16(10).raw(b"ab");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn position_tracking() {
        let mut w = WireWriter::new();
        w.u16(1).u16(2);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.position(), 0);
        r.u16().unwrap();
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 2);
    }
}
