//! Minimal little-endian wire encoding helpers used by descriptor records
//! and context directories.
//!
//! V messages are fixed 32-byte structures, but descriptor records and
//! directory contents are variable-length byte streams transferred as
//! payloads. This module provides the (deliberately tiny) reader/writer both
//! ends share.

use crate::descriptor::DecodeError;

/// `u16` length-prefix value marking an escaped long byte string: the real
/// length follows as a `u32`. See [`WireWriter::bytes`].
pub const LONG_LEN_ESCAPE: u16 = 0xFFFF;

/// Append-only little-endian encoder.
///
/// # Examples
///
/// ```
/// use vproto::{WireWriter, WireReader};
///
/// let mut w = WireWriter::new();
/// w.u16(7).u32(42).bytes(b"hi");
/// let buf = w.into_vec();
/// let mut r = WireReader::new(&buf);
/// assert_eq!(r.u16().unwrap(), 7);
/// assert_eq!(r.u32().unwrap(), 42);
/// assert_eq!(r.bytes().unwrap(), b"hi");
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    ///
    /// Strings shorter than [`LONG_LEN_ESCAPE`] carry a plain `u16` length,
    /// unchanged from the original encoding. Longer strings (and the length
    /// value `0xFFFF` itself, which now serves as the marker) are prefixed
    /// by the escape marker followed by the real length as a `u32`, so a
    /// directory transfer past 64 KiB round-trips instead of truncating or
    /// aborting the server.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() > u32::MAX as usize` (a single wire string of
    /// over 4 GiB).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        match u16::try_from(b.len()) {
            Ok(short) if short != LONG_LEN_ESCAPE => self.u16(short),
            _ => {
                let long = u32::try_from(b.len()).expect("wire byte string exceeds u32::MAX");
                self.u16(LONG_LEN_ESCAPE).u32(long)
            }
        };
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Returns the current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len 8")))
    }

    /// Reads a length-prefixed byte string, honouring the
    /// [`LONG_LEN_ESCAPE`] long-string encoding of [`WireWriter::bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the buffer ends early.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = match self.u16()? {
            LONG_LEN_ESCAPE => self.u32()? as usize,
            short => short as usize,
        };
        self.take(len)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u16(0xA1B2).u32(0xDEADBEEF).u64(0x0123_4567_89AB_CDEF);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.u16().unwrap(), 0xA1B2);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_string_roundtrip() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"name.txt");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"name.txt");
    }

    #[test]
    fn long_byte_string_roundtrip() {
        // 0xFFFF exactly, and one past it, both take the escaped encoding;
        // one short of it stays on the plain u16 prefix.
        for len in [0xFFFE_usize, 0xFFFF, 0x1_0000, 0x2_0001] {
            let payload = vec![0xAB_u8; len];
            let mut w = WireWriter::new();
            w.bytes(&payload).u16(0x1234);
            let v = w.into_vec();
            let mut r = WireReader::new(&v);
            assert_eq!(r.bytes().unwrap(), &payload[..], "len {len:#x}");
            assert_eq!(
                r.u16().unwrap(),
                0x1234,
                "stream stays aligned after len {len:#x}"
            );
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn short_byte_string_prefix_is_wire_compatible() {
        // The escape must not change the encoding of ordinary strings.
        let mut w = WireWriter::new();
        w.bytes(b"hi");
        assert_eq!(w.into_vec(), vec![2, 0, b'h', b'i']);
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let mut r = WireReader::new(&[0x01]);
        match r.u32() {
            Err(DecodeError::Truncated { needed, available }) => {
                assert_eq!(needed, 4);
                assert_eq!(available, 1);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn truncated_byte_string() {
        // Length prefix claims 10 bytes, only 2 present.
        let mut w = WireWriter::new();
        w.u16(10).raw(b"ab");
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn position_tracking() {
        let mut w = WireWriter::new();
        w.u16(1).u16(2);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.position(), 0);
        r.u16().unwrap();
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 2);
    }
}
