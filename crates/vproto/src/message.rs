//! The fixed 32-byte V message and the CSname request skeleton
//! (paper §3.2, §5.3).
//!
//! Every request message carries its operation code in the first 16-bit word;
//! the code acts as a tag field (like a Pascal variant record tag) specifying
//! the layout of the remaining words. CSname requests additionally carry the
//! standard name-handling fields — context id, name index, name length — in
//! fixed positions, so any CSNH server can parse and forward a CSname request
//! without understanding its operation code.

use crate::codes::{is_csname_request_raw, ReplyCode, RequestCode};
use crate::pid::Pid;
use std::fmt;

/// Number of 16-bit words in a V message (32 bytes).
pub const MSG_WORDS: usize = 16;

/// A numeric context identifier (paper §5.2).
///
/// A context is specified by a *(server-pid, context-id)* pair; the context
/// id selects one of possibly many name spaces implemented by the server.
/// Ordinary context ids are server-assigned and valid only as long as the
/// server process exists. A few *well-known* ids with fixed values designate
/// generic name spaces.
///
/// # Examples
///
/// ```
/// use vproto::ContextId;
///
/// assert!(ContextId::HOME.is_well_known());
/// assert!(!ContextId::new(1234).is_well_known());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ContextId(u32);

impl ContextId {
    /// The standard default context, used when a server implements only one
    /// context (paper §5.2).
    pub const DEFAULT: ContextId = ContextId(0);
    /// Well-known id for the user's home directory.
    pub const HOME: ContextId = ContextId(1);
    /// Well-known id for the standard program directory.
    pub const STANDARD_PROGRAMS: ContextId = ContextId(2);
    /// Well-known id for the per-user temporary directory.
    pub const TEMPORARY: ContextId = ContextId(3);
    /// First ordinary (server-assigned) context id.
    pub const FIRST_ORDINARY: ContextId = ContextId(0x100);

    /// Creates a context id from its raw value.
    pub const fn new(raw: u32) -> Self {
        ContextId(raw)
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` for the well-known fixed-value ids (paper §5.2).
    pub const fn is_well_known(self) -> bool {
        self.0 < Self::FIRST_ORDINARY.0
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ContextId::DEFAULT => write!(f, "ctx:default"),
            ContextId::HOME => write!(f, "ctx:home"),
            ContextId::STANDARD_PROGRAMS => write!(f, "ctx:bin"),
            ContextId::TEMPORARY => write!(f, "ctx:tmp"),
            ContextId(raw) => write!(f, "ctx:{raw}"),
        }
    }
}

// Standard field positions (word indices).
const W_CODE: usize = 0;
const W_CONTEXT_LO: usize = 1; // context id spans words 1-2
const W_NAME_INDEX: usize = 3;
const W_NAME_LEN: usize = 4;

/// Word indices of per-operation fields, in the operation-specific part of
/// the message (words 5..15). Documented here so every server and stub uses
/// the same layout.
pub mod fields {
    /// `CreateInstance` request: open mode ([`crate::message::Message::set_mode`]).
    pub const W_MODE: usize = 5;
    /// Replies carrying an instance: instance id. (Word 11: open replies
    /// also carry the implementing server's pid in words 5-6 and the object
    /// size in words 7-8.)
    pub const W_INSTANCE: usize = 11;
    /// `ReadInstance`/`WriteInstance` request: instance id.
    pub const W_IO_INSTANCE: usize = 5;
    /// `ReadInstance`/`WriteInstance` request: byte offset (u32, words 6-7).
    pub const W_IO_OFFSET_LO: usize = 6;
    /// High word of the I/O byte offset.
    pub const W_IO_OFFSET_HI: usize = 7;
    /// `ReadInstance` request / `ReadInstance`+`WriteInstance` reply: byte count.
    pub const W_IO_COUNT: usize = 8;
    /// Replies carrying a context: server pid (u32, words 5-6) — the context
    /// id travels in the standard context-id field.
    pub const W_PID_LO: usize = 5;
    /// High word of a pid field.
    pub const W_PID_HI: usize = 6;
    /// `AddContextName` request: target server pid (u32, words 5-6), or the
    /// logical service id if [`W_LOGICAL`] is nonzero.
    pub const W_TARGET_PID_LO: usize = 5;
    /// High word of the target pid / service id.
    pub const W_TARGET_PID_HI: usize = 6;
    /// `AddContextName` request: target context id (u32, words 7-8).
    pub const W_TARGET_CTX_LO: usize = 7;
    /// High word of the target context id.
    pub const W_TARGET_CTX_HI: usize = 8;
    /// `AddContextName` request: nonzero if the target is a *logical*
    /// (service, well-known-context) pair re-resolved via GetPid on each use
    /// (paper §6).
    pub const W_LOGICAL: usize = 9;
    /// `RenameObject` request: index of the new name within the payload.
    pub const W_NAME2_INDEX: usize = 5;
    /// `RenameObject` request: length of the new name.
    pub const W_NAME2_LEN: usize = 6;
    /// `GetContextName`/`GetInstanceName` request: the id to invert
    /// (u32, words 5-6).
    pub const W_INVERT_ID_LO: usize = 5;
    /// High word of the id to invert.
    pub const W_INVERT_ID_HI: usize = 6;
    /// Replies reporting total object size (u32, words 7-8).
    pub const W_SIZE_LO: usize = 7;
    /// High word of the size field.
    pub const W_SIZE_HI: usize = 8;
    /// `GetTime` reply: seconds (u32, words 5-6).
    pub const W_TIME_LO: usize = 5;
    /// High word of the time field.
    pub const W_TIME_HI: usize = 6;
    /// Replies reporting a low-level object id (u32, words 9-10) alongside
    /// the pid (5-6), size (7-8), and instance (11) fields.
    pub const W_OBJECT_ID_LO: usize = 9;
    /// *Failure* replies to CSname requests: byte index within the name at
    /// which interpretation failed — this reproduction's answer to the
    /// paper's §7 complaint that failures deep in a forwarding chain are
    /// hard to report usefully.
    pub const W_FAIL_INDEX: usize = 5;
    /// Replies carrying a context binding: nonzero when the binding is
    /// *suspect* — served from a cache or a non-authoritative replica while
    /// the authoritative server is unreachable (degraded-mode resolution).
    /// Zero (the default) means the binding is fresh/authoritative.
    pub const W_STALENESS: usize = 14;
    /// Requests that carry a forward count to detect interpretation loops.
    pub const W_FORWARD_COUNT: usize = 15;
    /// `SyncPull` reply: bindings adopted from the authority this round.
    pub const W_SYNC_ADOPTED: usize = 5;
    /// `SyncPull` reply: live entries dropped (tombstoned) this round.
    pub const W_SYNC_DROPPED: usize = 6;
    /// `SyncPull` reply: entries promoted unverified → verified this round.
    pub const W_SYNC_PROMOTED: usize = 7;
    /// `SyncPull` reply: low 32 bits of the table epoch after the round
    /// (u32, words 8-9).
    pub const W_SYNC_EPOCH_LO: usize = 8;
    /// `SyncDigest` request and reply: number of encoded entries in the
    /// payload (digest entries in the request, delta entries in the reply).
    /// Advisory — saturates at `u16::MAX`; the 32-bit count inside the
    /// payload is authoritative.
    pub const W_SYNC_COUNT: usize = 5;
    /// `SyncProbe` request and reply: number of Merkle node records in the
    /// payload (interior ids + leaf digests in the request, expanded node
    /// records in the reply). Advisory — saturates at `u16::MAX`; the
    /// 32-bit counts inside the payload are authoritative. The reply
    /// reuses `W_SYNC_COUNT` for its delta-entry count.
    pub const W_SYNC_NODES: usize = 6;
    /// `SyncGossip` request: phase. 0 = trigger (unicast: run one gossip
    /// round now), 1 = probe (multicast: reply with your pid if willing to
    /// answer a gossip digest).
    pub const W_SYNC_PHASE: usize = 7;
    /// `SyncPull` reply: nonzero if the round was satisfied by gossiping
    /// with a peer replica because the authority was unreachable.
    pub const W_SYNC_GOSSIP: usize = 10;
}

/// Open modes for `CreateInstance` (V I/O protocol session conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u16)]
pub enum OpenMode {
    /// Read-only access to an existing object.
    #[default]
    Read = 0,
    /// Read-write access to an existing object.
    Write = 1,
    /// Create the object if absent, then read-write.
    Create = 2,
    /// Append to an existing object.
    Append = 3,
    /// Open a context directory for reading descriptor records (paper §5.6).
    Directory = 4,
}

impl OpenMode {
    /// Decodes a raw mode word.
    pub const fn from_u16(raw: u16) -> Option<OpenMode> {
        match raw {
            0 => Some(OpenMode::Read),
            1 => Some(OpenMode::Write),
            2 => Some(OpenMode::Create),
            3 => Some(OpenMode::Append),
            4 => Some(OpenMode::Directory),
            _ => None,
        }
    }

    /// Returns `true` if the mode permits writing object data.
    pub const fn writes(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::Create | OpenMode::Append)
    }
}

/// The fixed-size V message: sixteen 16-bit words (paper §3.2).
///
/// Short and fixed-size by design — larger data travels via `MoveTo` /
/// `MoveFrom` (modeled as the request/reply payloads in
/// [`vkernel`](https://docs.rs/vkernel)).
///
/// # Examples
///
/// ```
/// use vproto::{Message, RequestCode, ReplyCode, ContextId};
///
/// let mut req = Message::request(RequestCode::QueryName);
/// req.set_context_id(ContextId::HOME);
/// req.set_name_length(9);
/// assert!(req.is_csname_request());
///
/// let rep = Message::reply(ReplyCode::NotFound);
/// assert_eq!(rep.reply_code(), ReplyCode::NotFound);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Message {
    words: [u16; MSG_WORDS],
}

impl Message {
    /// Creates a zeroed message.
    pub const fn new() -> Self {
        Message {
            words: [0; MSG_WORDS],
        }
    }

    /// Creates a request message with the given operation code.
    pub fn request(code: RequestCode) -> Self {
        let mut m = Message::new();
        m.words[W_CODE] = code.as_u16();
        m
    }

    /// Creates a request message from a raw operation code (for testing
    /// forwarding of unknown operations).
    pub fn request_raw(code: u16) -> Self {
        let mut m = Message::new();
        m.words[W_CODE] = code;
        m
    }

    /// Creates a reply message with the given reply code.
    pub fn reply(code: ReplyCode) -> Self {
        let mut m = Message::new();
        m.words[W_CODE] = code.as_u16();
        m
    }

    /// Creates a success reply.
    pub fn ok() -> Self {
        Message::reply(ReplyCode::Ok)
    }

    // ---- raw word access ----

    /// Reads the 16-bit word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MSG_WORDS`.
    pub fn word(&self, index: usize) -> u16 {
        self.words[index]
    }

    /// Writes the 16-bit word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MSG_WORDS`.
    pub fn set_word(&mut self, index: usize, value: u16) -> &mut Self {
        self.words[index] = value;
        self
    }

    /// Reads a 32-bit little-word-endian value at words `lo`, `lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + 1 >= MSG_WORDS`.
    pub fn word32(&self, lo: usize) -> u32 {
        (self.words[lo] as u32) | ((self.words[lo + 1] as u32) << 16)
    }

    /// Writes a 32-bit value across words `lo`, `lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + 1 >= MSG_WORDS`.
    pub fn set_word32(&mut self, lo: usize, value: u32) -> &mut Self {
        self.words[lo] = value as u16;
        self.words[lo + 1] = (value >> 16) as u16;
        self
    }

    /// Returns the message as 32 bytes in wire order (little-endian words).
    pub fn to_bytes(&self) -> [u8; MSG_WORDS * 2] {
        let mut out = [0u8; MSG_WORDS * 2];
        for (i, w) in self.words.iter().enumerate() {
            out[2 * i..2 * i + 2].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstructs a message from its 32-byte wire representation.
    pub fn from_bytes(bytes: &[u8; MSG_WORDS * 2]) -> Self {
        let mut words = [0u16; MSG_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
        }
        Message { words }
    }

    // ---- tag field ----

    /// Returns the raw operation/reply code (word 0).
    pub fn code_raw(&self) -> u16 {
        self.words[W_CODE]
    }

    /// Decodes word 0 as a request code; `None` if unknown to this crate.
    pub fn request_code(&self) -> Option<RequestCode> {
        RequestCode::from_u16(self.words[W_CODE])
    }

    /// Decodes word 0 as a reply code (unknown values map to
    /// [`ReplyCode::Unknown`]).
    pub fn reply_code(&self) -> ReplyCode {
        ReplyCode::from_u16(self.words[W_CODE])
    }

    /// Returns `true` if word 0 denotes a CSname request — even one whose
    /// specific operation this crate does not know (paper §5.3).
    pub fn is_csname_request(&self) -> bool {
        is_csname_request_raw(self.words[W_CODE])
    }

    // ---- standard CSname fields (paper §5.3) ----

    /// Returns the context id in which the name is to be interpreted.
    pub fn context_id(&self) -> ContextId {
        ContextId::new(self.word32(W_CONTEXT_LO))
    }

    /// Sets the context id field.
    pub fn set_context_id(&mut self, ctx: ContextId) -> &mut Self {
        self.set_word32(W_CONTEXT_LO, ctx.raw())
    }

    /// Returns the index into the name at which interpretation is to begin
    /// or continue — updated by each server before forwarding (paper §5.4).
    pub fn name_index(&self) -> u16 {
        self.words[W_NAME_INDEX]
    }

    /// Sets the name index field.
    pub fn set_name_index(&mut self, index: u16) -> &mut Self {
        self.words[W_NAME_INDEX] = index;
        self
    }

    /// Returns the total length of the name in the payload.
    pub fn name_length(&self) -> u16 {
        self.words[W_NAME_LEN]
    }

    /// Sets the name length field.
    pub fn set_name_length(&mut self, len: u16) -> &mut Self {
        self.words[W_NAME_LEN] = len;
        self
    }

    /// Returns the forwarding hop count (used to detect interpretation
    /// loops; see [`ReplyCode::ForwardLoop`]).
    pub fn forward_count(&self) -> u16 {
        self.words[fields::W_FORWARD_COUNT]
    }

    /// Increments the forwarding hop count, saturating.
    pub fn bump_forward_count(&mut self) -> &mut Self {
        self.words[fields::W_FORWARD_COUNT] = self.words[fields::W_FORWARD_COUNT].saturating_add(1);
        self
    }

    // ---- common typed helpers ----

    /// Reads a pid stored at words `lo`, `lo + 1`.
    pub fn pid_at(&self, lo: usize) -> Pid {
        Pid::from_raw(self.word32(lo))
    }

    /// Stores a pid at words `lo`, `lo + 1`.
    pub fn set_pid_at(&mut self, lo: usize, pid: Pid) -> &mut Self {
        self.set_word32(lo, pid.raw())
    }

    /// Returns the open mode of a `CreateInstance` request.
    pub fn mode(&self) -> Option<OpenMode> {
        OpenMode::from_u16(self.words[fields::W_MODE])
    }

    /// Sets the open mode of a `CreateInstance` request.
    pub fn set_mode(&mut self, mode: OpenMode) -> &mut Self {
        self.words[fields::W_MODE] = mode as u16;
        self
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.request_code() {
            Some(code) => write!(f, "msg[{code}]"),
            None => write!(f, "msg[raw:{:#06x}]", self.code_raw()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_tag_word() {
        let m = Message::request(RequestCode::QueryName);
        assert_eq!(m.code_raw(), RequestCode::QueryName.as_u16());
        assert_eq!(m.request_code(), Some(RequestCode::QueryName));
        assert!(m.is_csname_request());
    }

    #[test]
    fn unknown_csname_request_still_classified() {
        let m = Message::request_raw(0x8FFF);
        assert_eq!(m.request_code(), None);
        assert!(m.is_csname_request());
    }

    #[test]
    fn context_fields_roundtrip() {
        let mut m = Message::request(RequestCode::CreateInstance);
        m.set_context_id(ContextId::new(0xDEADBEEF))
            .set_name_index(7)
            .set_name_length(23);
        assert_eq!(m.context_id(), ContextId::new(0xDEADBEEF));
        assert_eq!(m.name_index(), 7);
        assert_eq!(m.name_length(), 23);
        // The tag word is untouched by field updates.
        assert_eq!(m.request_code(), Some(RequestCode::CreateInstance));
    }

    #[test]
    fn word32_is_little_word_endian() {
        let mut m = Message::new();
        m.set_word32(5, 0x1234_5678);
        assert_eq!(m.word(5), 0x5678);
        assert_eq!(m.word(6), 0x1234);
        assert_eq!(m.word32(5), 0x1234_5678);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Message::request(RequestCode::ReadInstance);
        m.set_word(fields::W_IO_INSTANCE, 3)
            .set_word32(fields::W_IO_OFFSET_LO, 0xABCD_1234)
            .set_word(fields::W_IO_COUNT, 512);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 32, "V messages are exactly 32 bytes");
        assert_eq!(Message::from_bytes(&bytes), m);
    }

    #[test]
    fn forward_count_saturates() {
        let mut m = Message::new();
        m.set_word(fields::W_FORWARD_COUNT, u16::MAX - 1);
        m.bump_forward_count();
        assert_eq!(m.forward_count(), u16::MAX);
        m.bump_forward_count();
        assert_eq!(m.forward_count(), u16::MAX);
    }

    #[test]
    fn pid_field_roundtrip() {
        use crate::pid::LogicalHost;
        let mut m = Message::new();
        let pid = Pid::new(LogicalHost::new(12), 34);
        m.set_pid_at(fields::W_PID_LO, pid);
        assert_eq!(m.pid_at(fields::W_PID_LO), pid);
    }

    #[test]
    fn open_mode_roundtrip() {
        for mode in [
            OpenMode::Read,
            OpenMode::Write,
            OpenMode::Create,
            OpenMode::Append,
            OpenMode::Directory,
        ] {
            let mut m = Message::request(RequestCode::CreateInstance);
            m.set_mode(mode);
            assert_eq!(m.mode(), Some(mode));
        }
        let mut m = Message::new();
        m.set_word(fields::W_MODE, 999);
        assert_eq!(m.mode(), None);
    }

    #[test]
    fn well_known_context_ids() {
        assert!(ContextId::DEFAULT.is_well_known());
        assert!(ContextId::HOME.is_well_known());
        assert!(ContextId::STANDARD_PROGRAMS.is_well_known());
        assert!(!ContextId::FIRST_ORDINARY.is_well_known());
    }

    #[test]
    fn only_writing_modes_write() {
        assert!(!OpenMode::Read.writes());
        assert!(!OpenMode::Directory.writes());
        assert!(OpenMode::Write.writes());
        assert!(OpenMode::Create.writes());
        assert!(OpenMode::Append.writes());
    }
}
