//! Standard request and reply codes (paper §3.2, §5.7).
//!
//! Request messages carry the operation code in the first 16-bit word of the
//! message; the code acts as a tag field specifying the format of the rest of
//! the message. Reply messages carry a reply code indicating success or the
//! reason for failure.
//!
//! Following the V convention that a CSNH server "can perform some processing
//! on any CSname request, even if it does not understand the operation code"
//! (§5.3), CSname-ness is encoded *structurally*: any request code with the
//! [`CSNAME_BIT`] set contains the standard CSname fields, so a server can
//! parse and forward requests whose operation it has never heard of.

use std::fmt;

/// Bit set in every request code whose message follows the standard CSname
/// skeleton (context id, name index, name length + name bytes in the payload).
pub const CSNAME_BIT: u16 = 0x8000;

/// Returns `true` if a raw request code denotes a CSname request, i.e. the
/// message contains the standard name-handling fields of paper §5.3.
///
/// This works for codes this crate has never seen — the property the paper
/// relies on for forwarding unknown operations.
pub const fn is_csname_request_raw(code: u16) -> bool {
    code & CSNAME_BIT != 0
}

macro_rules! request_codes {
    ($(#[$enum_meta:meta])* pub enum RequestCode { $($(#[$meta:meta])* $name:ident = $val:expr,)+ }) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        pub enum RequestCode {
            $($(#[$meta])* $name = $val,)+
        }

        impl RequestCode {
            /// All codes defined by this crate, in declaration order.
            pub const ALL: &'static [RequestCode] = &[$(RequestCode::$name,)+];

            /// Decodes a raw 16-bit code; returns `None` for codes not
            /// defined by this crate (servers must still handle those —
            /// see [`is_csname_request_raw`]).
            pub const fn from_u16(raw: u16) -> Option<RequestCode> {
                match raw {
                    $($val => Some(RequestCode::$name),)+
                    _ => None,
                }
            }
        }
    };
}

request_codes! {
    /// Standard V-System operation codes.
    ///
    /// Codes with [`CSNAME_BIT`] set are CSname requests (paper §5.3): their
    /// messages carry a context id, a name index, and a name length, with the
    /// name bytes travelling in the request payload (the sender's memory,
    /// readable by the server via `MoveFrom`).
    pub enum RequestCode {
        // ---- plain requests (no CSname) ----
        /// Diagnostic echo; the server replies with the same message body.
        Echo = 0x0001,
        /// Read bytes from an open instance (V I/O protocol).
        ReadInstance = 0x0002,
        /// Write bytes to an open instance (V I/O protocol).
        WriteInstance = 0x0003,
        /// Release (close) an open instance (V I/O protocol).
        ReleaseInstance = 0x0004,
        /// Query the descriptor of an open instance.
        QueryInstance = 0x0005,
        /// Inverse mapping: (server, context-id) → CSname (paper §5.7).
        GetContextName = 0x0006,
        /// Inverse mapping: (server, instance-id) → CSname (paper §5.7).
        GetInstanceName = 0x0007,
        /// Ask a server for the current time (simple service example).
        GetTime = 0x0008,
        /// Modify the descriptor of an open instance.
        SetInstanceOwner = 0x0009,
        /// Open an object by its low-level globally-registered identifier —
        /// the extra naming level required by the *centralized* model of
        /// paper §2.1 (implemented only by the baseline object store).
        OpenById = 0x000A,
        /// Delete an object by its low-level identifier (baseline model).
        RemoveById = 0x000B,
        /// Anti-entropy: ask a prefix replica to run one sync round against
        /// its configured authority (digest → delta → apply). The reply
        /// summarizes what changed (adopted/dropped/promoted counts).
        SyncPull = 0x000C,
        /// Anti-entropy: a replica's table digest (prefix, epoch) list in the
        /// request payload; the authority replies with the delta of entries
        /// the digest proves the replica is missing or holding stale.
        SyncDigest = 0x000D,
        /// Anti-entropy introspection: the server's versioned-table summary
        /// (epoch, entry counts, table hash, sync counters) in the reply
        /// payload.
        SyncStatus = 0x000E,
        /// Anti-entropy gossip between non-authoritative replicas. Phase 0
        /// (trigger, unicast) asks a replica to run one gossip round: it
        /// multicasts a phase-1 probe on the replica group, picks the first
        /// peer that answers, and runs a digest → delta round against it.
        /// Phase 1 (probe, multicast) merely solicits a peer pid — group
        /// replies carry no payload, so the digest round itself is unicast.
        SyncGossip = 0x000F,
        /// Anti-entropy: one step of a Merkle subtree walk. The request
        /// payload carries the puller's watermark, interior node ids to
        /// expand, and leaf-bucket digests to diff; the reply carries the
        /// responder's child hashes for those nodes plus the delta entries
        /// for the diffed leaves. Equal-hash subtrees are never walked, so
        /// a round costs O(divergence), not O(table).
        SyncProbe = 0x0010,
        /// Resolve a batch of bare prefixes in one transaction: the request
        /// payload lists the prefix names, the reply payload carries one
        /// answer per name (status, target pid, context, staleness), all
        /// served from a single published resolver snapshot — one
        /// internally consistent view across the whole batch.
        ResolveBatch = 0x0011,

        // ---- CSname requests (standard fields present) ----
        /// Map a CSname that names a context into a (server-pid, context-id)
        /// pair (paper §5.7, the standard mapping operation).
        QueryName = 0x8001,
        /// Get the description record of the named object (paper §5.5).
        QueryObject = 0x8002,
        /// Overwrite (parts of) the description record of the named object
        /// (paper §5.5). Servers ignore fields that make no sense to change.
        ModifyObject = 0x8003,
        /// Open the named object as an I/O instance (V I/O protocol `Open`).
        CreateInstance = 0x8004,
        /// Delete the named object.
        RemoveObject = 0x8005,
        /// Rename the named object; the new name follows the old one in the
        /// payload.
        RenameObject = 0x8006,
        /// Define a name for an existing context (optional op, ordinarily
        /// implemented only in context prefix servers — paper §5.7).
        AddContextName = 0x8007,
        /// Delete a name previously defined for a context (optional op).
        DeleteContextName = 0x8008,
        /// Create the named object without opening it (mkdir and friends);
        /// the descriptor template travels after the name in the payload.
        CreateObject = 0x8009,
    }
}

impl RequestCode {
    /// Returns the raw 16-bit wire value.
    pub const fn as_u16(self) -> u16 {
        self as u16
    }

    /// Returns `true` if this operation's message follows the standard
    /// CSname skeleton (paper §5.3).
    pub const fn is_csname_request(self) -> bool {
        is_csname_request_raw(self as u16)
    }

    /// Returns `true` for the optional context-prefix management operations
    /// (paper §5.7: "ordinarily implemented only in context prefix servers").
    pub const fn is_optional_op(self) -> bool {
        matches!(
            self,
            RequestCode::AddContextName | RequestCode::DeleteContextName
        )
    }
}

impl fmt::Display for RequestCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! reply_codes {
    ($(#[$enum_meta:meta])* pub enum ReplyCode { $($(#[$meta:meta])* $name:ident = $val:expr,)+ }) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        pub enum ReplyCode {
            $($(#[$meta])* $name = $val,)+
        }

        impl ReplyCode {
            /// All codes defined by this crate, in declaration order.
            pub const ALL: &'static [ReplyCode] = &[$(ReplyCode::$name,)+];

            /// Decodes a raw 16-bit reply code, mapping unknown values to
            /// [`ReplyCode::Unknown`].
            pub const fn from_u16(raw: u16) -> ReplyCode {
                match raw {
                    $($val => ReplyCode::$name,)+
                    _ => ReplyCode::Unknown,
                }
            }
        }
    };
}

reply_codes! {
    /// Standard system reply codes (paper §3.2).
    ///
    /// A reply code appears at the beginning of each reply message,
    /// indicating whether the request succeeded or failed, and in the latter
    /// case, the reason for failure.
    pub enum ReplyCode {
        /// The request succeeded.
        Ok = 0x0000,
        /// No object with the given name exists in the given context.
        NotFound = 0x0001,
        /// The name is syntactically unacceptable to this server.
        IllegalName = 0x0002,
        /// A name component that must denote a context does not.
        NotAContext = 0x0003,
        /// The requester lacks permission for the operation.
        NoPermission = 0x0004,
        /// Malformed or out-of-range request parameters.
        BadArgs = 0x0005,
        /// The server does not implement the requested operation.
        UnknownRequest = 0x0006,
        /// Read past the end of an instance.
        EndOfFile = 0x0007,
        /// The server cannot allocate resources for the request.
        NoServerResources = 0x0008,
        /// Transient failure; the client may retry.
        Retry = 0x0009,
        /// The context id in the request does not name a live context —
        /// e.g. the server was restarted and ordinary context ids died
        /// with the old process (paper §5.2).
        InvalidContext = 0x000A,
        /// The name is already bound in the target context.
        NameInUse = 0x000B,
        /// The context must be empty for this operation (e.g. rmdir).
        NotEmpty = 0x000C,
        /// The instance id does not name a live instance.
        InvalidInstance = 0x000D,
        /// The instance is open in a mode that forbids this operation.
        BadMode = 0x000E,
        /// No server for the requested service could be found.
        NoServer = 0x000F,
        /// The operation timed out (e.g. a crashed server).
        Timeout = 0x0010,
        /// A name lookup was forwarded too many times without resolving —
        /// the error-reporting difficulty the paper's §7 discusses.
        ForwardLoop = 0x0011,
        /// Catch-all decode for reply codes this crate does not know.
        Unknown = 0xFFFF,
    }
}

impl ReplyCode {
    /// Returns the raw 16-bit wire value.
    pub const fn as_u16(self) -> u16 {
        self as u16
    }

    /// Returns `true` if the code denotes success.
    pub const fn is_ok(self) -> bool {
        matches!(self, ReplyCode::Ok)
    }
}

impl fmt::Display for ReplyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for ReplyCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csname_bit_classifies_known_codes() {
        assert!(RequestCode::CreateInstance.is_csname_request());
        assert!(RequestCode::QueryName.is_csname_request());
        assert!(!RequestCode::ReadInstance.is_csname_request());
        assert!(!RequestCode::Echo.is_csname_request());
    }

    #[test]
    fn csname_bit_classifies_unknown_codes() {
        // A server must recognize CSname requests it has never seen.
        assert!(is_csname_request_raw(0x8F42));
        assert!(!is_csname_request_raw(0x0F42));
    }

    #[test]
    fn request_roundtrip_all() {
        for &code in RequestCode::ALL {
            assert_eq!(RequestCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(RequestCode::from_u16(0x7777), None);
    }

    #[test]
    fn reply_roundtrip_all() {
        for &code in ReplyCode::ALL {
            assert_eq!(ReplyCode::from_u16(code.as_u16()), code);
        }
        assert_eq!(ReplyCode::from_u16(0x1234), ReplyCode::Unknown);
    }

    #[test]
    fn only_prefix_ops_are_optional() {
        for &code in RequestCode::ALL {
            let expect = matches!(
                code,
                RequestCode::AddContextName | RequestCode::DeleteContextName
            );
            assert_eq!(code.is_optional_op(), expect, "{code}");
        }
    }

    #[test]
    fn ok_is_the_only_success() {
        for &code in ReplyCode::ALL {
            assert_eq!(code.is_ok(), code == ReplyCode::Ok);
        }
    }
}
