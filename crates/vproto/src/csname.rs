//! Character string names (paper §5.1) and the context-prefix syntax
//! (paper §5.8).
//!
//! A CSname is a sequence of zero or more bytes — *not* necessarily UTF-8 —
//! though usually meaningful human-readable ASCII. The name-handling protocol
//! imposes minimal restrictions on name syntax; the only syntax the standard
//! run-time routines know is the context prefix: a name beginning with `[`
//! whose prefix is terminated by the matching `]`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;

/// Opening delimiter of a context prefix (paper §5.8).
pub const PREFIX_OPEN: u8 = b'[';
/// Closing delimiter of a context prefix (paper §5.8).
pub const PREFIX_CLOSE: u8 = b']';

/// A V-System character string name: an arbitrary byte string (paper §5.1).
///
/// `CsName` deliberately does **not** impose a component structure — how a
/// name decomposes into components is the business of the server that
/// interprets it (paper §5.4: "Names are ordinarily interpreted
/// left-to-right, if the server implements hierarchical naming, though this
/// is not required"). Helpers for `/`-separated interpretation live with the
/// file server, and `@`-separated interpretation with the mail server.
///
/// # Examples
///
/// ```
/// use vproto::CsName;
///
/// let name = CsName::from("[home]notes/todo.txt");
/// assert!(name.has_prefix_syntax());
/// let parse = name.parse_prefix().expect("well-formed prefix");
/// assert_eq!(parse.prefix, b"home");
/// assert_eq!(parse.rest_index, 6);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CsName(Vec<u8>);

impl CsName {
    /// Creates an empty name.
    pub const fn new() -> Self {
        CsName(Vec::new())
    }

    /// Creates a name from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        CsName(bytes.into())
    }

    /// Returns the name bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the name, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Returns the length of the name in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the name is empty (a zero-length CSname is legal
    /// per §5.1).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if the name begins with the standard context prefix
    /// character `[` — the test the run-time `Open` routine performs
    /// (paper §6).
    pub fn has_prefix_syntax(&self) -> bool {
        self.0.first() == Some(&PREFIX_OPEN)
    }

    /// Parses a leading `[prefix]` (paper §5.8).
    ///
    /// Returns `None` if the name does not start with `[` or has no matching
    /// `]`. An *empty* prefix (`[]name`) parses successfully; what it means
    /// is up to the prefix server.
    pub fn parse_prefix(&self) -> Option<PrefixParse<'_>> {
        if !self.has_prefix_syntax() {
            return None;
        }
        let close = self.0.iter().position(|&b| b == PREFIX_CLOSE)?;
        Some(PrefixParse {
            prefix: &self.0[1..close],
            rest_index: close + 1,
        })
    }

    /// Returns the suffix of the name starting at `index` — the portion not
    /// yet interpreted, per the name-index field of §5.3.
    pub fn suffix(&self, index: usize) -> &[u8] {
        &self.0[index.min(self.0.len())..]
    }

    /// Returns a lossy UTF-8 rendering for diagnostics.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.0).into_owned()
    }
}

/// The result of parsing a `[prefix]rest` name (paper §5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixParse<'a> {
    /// The bytes between `[` and `]`.
    pub prefix: &'a [u8],
    /// Byte index of the first character after `]` — the value a context
    /// prefix server stores into the request's name-index field before
    /// forwarding.
    pub rest_index: usize,
}

impl fmt::Debug for CsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsName({:?})", self.to_string_lossy())
    }
}

impl fmt::Display for CsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_lossy())
    }
}

impl From<&str> for CsName {
    fn from(s: &str) -> Self {
        CsName(s.as_bytes().to_vec())
    }
}

impl From<String> for CsName {
    fn from(s: String) -> Self {
        CsName(s.into_bytes())
    }
}

impl From<&[u8]> for CsName {
    fn from(b: &[u8]) -> Self {
        CsName(b.to_vec())
    }
}

impl From<Vec<u8>> for CsName {
    fn from(b: Vec<u8>) -> Self {
        CsName(b)
    }
}

impl Deref for CsName {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for CsName {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for CsName {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl FromIterator<u8> for CsName {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        CsName(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_parse_simple() {
        let n = CsName::from("[storage]src/main.rs");
        let p = n.parse_prefix().unwrap();
        assert_eq!(p.prefix, b"storage");
        assert_eq!(&n.suffix(p.rest_index), b"src/main.rs");
    }

    #[test]
    fn prefix_parse_empty_prefix() {
        let n = CsName::from("[]whatever");
        let p = n.parse_prefix().unwrap();
        assert_eq!(p.prefix, b"");
        assert_eq!(p.rest_index, 2);
    }

    #[test]
    fn prefix_parse_empty_rest() {
        let n = CsName::from("[home]");
        let p = n.parse_prefix().unwrap();
        assert_eq!(p.prefix, b"home");
        assert_eq!(n.suffix(p.rest_index), b"");
    }

    #[test]
    fn no_prefix_is_none() {
        assert!(CsName::from("plain/name").parse_prefix().is_none());
        assert!(CsName::new().parse_prefix().is_none());
    }

    #[test]
    fn unterminated_prefix_is_none() {
        let n = CsName::from("[unterminated");
        assert!(n.has_prefix_syntax());
        assert!(n.parse_prefix().is_none());
    }

    #[test]
    fn names_may_contain_arbitrary_bytes() {
        let n = CsName::from_bytes(vec![0xFF, 0x00, b'[', 0xAA]);
        assert_eq!(n.len(), 4);
        assert!(!n.has_prefix_syntax());
        // Debug/Display never panic on non-UTF-8.
        let _ = format!("{n:?} {n}");
    }

    #[test]
    fn suffix_clamps_out_of_range_index() {
        let n = CsName::from("abc");
        assert_eq!(n.suffix(0), b"abc");
        assert_eq!(n.suffix(2), b"c");
        assert_eq!(n.suffix(99), b"");
    }

    #[test]
    fn zero_length_name_is_legal() {
        let n = CsName::new();
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
    }
}
