//! Anti-entropy wire structures for prefix-replica reconciliation.
//!
//! The paper's §5 multi-manager model assumes context servers can re-learn
//! bindings from their peers. This module defines the payloads of the three
//! anti-entropy operations ([`crate::RequestCode::SyncPull`],
//! [`crate::RequestCode::SyncDigest`], [`crate::RequestCode::SyncStatus`]):
//!
//! * a **digest** — the compact `(prefix, epoch)` summary a replica sends to
//!   its authority ([`SyncDigestEntry`], [`encode_digest`]);
//! * a **delta** — the versioned entries the authority proves the replica is
//!   missing or holding stale, tombstones included ([`SyncEntry`],
//!   [`encode_delta`]);
//! * a **status record** — the introspection summary a server replies to
//!   `SyncStatus` with ([`SyncStatusRec`]).
//!
//! All three ride the existing [`WireWriter`]/[`WireReader`] little-endian
//! encoding used by descriptor records, travelling as request/reply payloads
//! (`MoveFrom`/`MoveTo` segments), never in the fixed 32-byte message.

use crate::descriptor::DecodeError;
use crate::wire::{WireReader, WireWriter};

/// A prefix binding as carried in an anti-entropy delta.
///
/// Mirrors the `AddContextName` request fields: a *direct* binding names a
/// concrete `(server-pid, context-id)` pair, a *logical* binding names a
/// `(service-id, well-known-context)` pair re-resolved via GetPid on use
/// (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncBinding {
    /// `true` if `target` is a logical service id rather than a pid.
    pub logical: bool,
    /// Raw target: a pid (`logical == false`) or a service id.
    pub target: u32,
    /// Raw target context id.
    pub context: u32,
}

/// One versioned table entry in an anti-entropy delta.
///
/// `binding == None` is a **tombstone**: the authority asserts the prefix was
/// deleted at `epoch`, and the replica must drop any older live entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncEntry {
    /// The prefix name (bytes, per §5.1).
    pub prefix: Vec<u8>,
    /// Monotonic per-entry version, stamped at the authority.
    pub epoch: u64,
    /// The binding, or `None` for a tombstone.
    pub binding: Option<SyncBinding>,
}

/// One `(prefix, epoch)` pair in a table digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncDigestEntry {
    /// The prefix name.
    pub prefix: Vec<u8>,
    /// The epoch the sender holds for it (0 = preloaded, never verified).
    pub epoch: u64,
}

/// The `SyncStatus` reply payload: a server's versioned-table summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SyncStatusRec {
    /// Highest epoch the server has stamped or adopted.
    pub epoch: u64,
    /// Live (non-tombstone) table entries.
    pub live_entries: u32,
    /// Tombstoned entries retained for reconciliation.
    pub tombstones: u32,
    /// Currently armed suspicion entries.
    pub suspects: u32,
    /// Order-independent hash of the versioned table (entries + epochs +
    /// tombstones); two tables with equal hashes hold identical contents.
    pub table_hash: u64,
    /// Completed sync rounds (replica side).
    pub rounds: u32,
    /// Entries adopted from deltas, cumulative.
    pub adopted: u32,
    /// Live entries dropped by tombstone adoption, cumulative.
    pub dropped: u32,
    /// Entries promoted unverified → verified, cumulative.
    pub promoted: u32,
    /// Suspicion entries expired by the TTL sweep, cumulative.
    pub suspects_expired: u32,
    /// Bare-prefix `QueryName` binding queries answered, cumulative.
    pub binding_queries: u32,
}

fn write_entry(w: &mut WireWriter, e: &SyncEntry) {
    w.bytes(&e.prefix);
    w.u64(e.epoch);
    match &e.binding {
        None => {
            w.u16(1); // tombstone flag
        }
        Some(b) => {
            w.u16(0);
            w.u16(u16::from(b.logical));
            w.u32(b.target);
            w.u32(b.context);
        }
    }
}

fn read_entry(r: &mut WireReader<'_>) -> Result<SyncEntry, DecodeError> {
    let prefix = r.bytes()?.to_vec();
    let epoch = r.u64()?;
    let binding = match r.u16()? {
        1 => None,
        0 => {
            let logical = match r.u16()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::BadValue { field: "logical" }),
            };
            Some(SyncBinding {
                logical,
                target: r.u32()?,
                context: r.u32()?,
            })
        }
        _ => return Err(DecodeError::BadValue { field: "tombstone" }),
    };
    Ok(SyncEntry {
        prefix,
        epoch,
        binding,
    })
}

/// Encodes a table digest (`SyncDigest` request payload).
///
/// # Panics
///
/// Panics if `entries.len()` or any prefix length exceeds `u16::MAX`.
pub fn encode_digest(entries: &[SyncDigestEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    assert!(entries.len() <= u16::MAX as usize, "digest too large");
    w.u16(entries.len() as u16);
    for e in entries {
        w.bytes(&e.prefix);
        w.u64(e.epoch);
    }
    w.into_vec()
}

/// Decodes a table digest.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or trailing bytes.
pub fn decode_digest(buf: &[u8]) -> Result<Vec<SyncDigestEntry>, DecodeError> {
    let mut r = WireReader::new(buf);
    let count = r.u16()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let prefix = r.bytes()?.to_vec();
        let epoch = r.u64()?;
        out.push(SyncDigestEntry { prefix, epoch });
    }
    if !r.is_exhausted() {
        return Err(DecodeError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(out)
}

/// Encodes a delta (`SyncDigest` reply payload).
///
/// # Panics
///
/// Panics if `entries.len()` or any prefix length exceeds `u16::MAX`.
pub fn encode_delta(entries: &[SyncEntry]) -> Vec<u8> {
    let mut w = WireWriter::new();
    assert!(entries.len() <= u16::MAX as usize, "delta too large");
    w.u16(entries.len() as u16);
    for e in entries {
        write_entry(&mut w, e);
    }
    w.into_vec()
}

/// Decodes a delta.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, trailing bytes, or invalid flags.
pub fn decode_delta(buf: &[u8]) -> Result<Vec<SyncEntry>, DecodeError> {
    let mut r = WireReader::new(buf);
    let count = r.u16()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(read_entry(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(DecodeError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(out)
}

impl SyncStatusRec {
    /// Encodes the record as a `SyncStatus` reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch)
            .u32(self.live_entries)
            .u32(self.tombstones)
            .u32(self.suspects)
            .u64(self.table_hash)
            .u32(self.rounds)
            .u32(self.adopted)
            .u32(self.dropped)
            .u32(self.promoted)
            .u32(self.suspects_expired)
            .u32(self.binding_queries);
        w.into_vec()
    }

    /// Decodes a record from a `SyncStatus` reply payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<SyncStatusRec, DecodeError> {
        let mut r = WireReader::new(buf);
        let rec = SyncStatusRec {
            epoch: r.u64()?,
            live_entries: r.u32()?,
            tombstones: r.u32()?,
            suspects: r.u32()?,
            table_hash: r.u64()?,
            rounds: r.u32()?,
            adopted: r.u32()?,
            dropped: r.u32()?,
            promoted: r.u32()?,
            suspects_expired: r.u32()?,
            binding_queries: r.u32()?,
        };
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_roundtrip() {
        let digest = vec![
            SyncDigestEntry {
                prefix: b"local".to_vec(),
                epoch: 0,
            },
            SyncDigestEntry {
                prefix: b"remote".to_vec(),
                epoch: 42,
            },
        ];
        let buf = encode_digest(&digest);
        assert_eq!(decode_digest(&buf).unwrap(), digest);
    }

    #[test]
    fn delta_roundtrip_with_tombstone() {
        let delta = vec![
            SyncEntry {
                prefix: b"remote".to_vec(),
                epoch: 7,
                binding: Some(SyncBinding {
                    logical: false,
                    target: 0xDEAD_BEEF,
                    context: 3,
                }),
            },
            SyncEntry {
                prefix: b"gone".to_vec(),
                epoch: 8,
                binding: None,
            },
        ];
        let buf = encode_delta(&delta);
        assert_eq!(decode_delta(&buf).unwrap(), delta);
    }

    #[test]
    fn truncated_delta_is_an_error() {
        let delta = vec![SyncEntry {
            prefix: b"x".to_vec(),
            epoch: 1,
            binding: None,
        }];
        let buf = encode_delta(&delta);
        assert!(decode_delta(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_digest(&[]);
        buf.push(0);
        assert!(matches!(
            decode_digest(&buf),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_flags_rejected() {
        // count=1, empty prefix, epoch=0, tombstone flag 9.
        let mut w = WireWriter::new();
        w.u16(1).bytes(b"").u64(0).u16(9);
        assert!(matches!(
            decode_delta(&w.into_vec()),
            Err(DecodeError::BadValue { field: "tombstone" })
        ));
    }

    #[test]
    fn status_roundtrip() {
        let rec = SyncStatusRec {
            epoch: 0x0123_4567_89AB_CDEF,
            live_entries: 3,
            tombstones: 1,
            suspects: 2,
            table_hash: 0xFEED_FACE_CAFE_BABE,
            rounds: 4,
            adopted: 5,
            dropped: 6,
            promoted: 7,
            suspects_expired: 8,
            binding_queries: 9,
        };
        assert_eq!(SyncStatusRec::decode(&rec.encode()).unwrap(), rec);
    }
}
