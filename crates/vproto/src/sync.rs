//! Anti-entropy wire structures for prefix-replica reconciliation.
//!
//! The paper's §5 multi-manager model assumes context servers can re-learn
//! bindings from their peers. This module defines the payloads of the five
//! anti-entropy operations ([`crate::RequestCode::SyncPull`],
//! [`crate::RequestCode::SyncDigest`], [`crate::RequestCode::SyncProbe`],
//! [`crate::RequestCode::SyncGossip`], [`crate::RequestCode::SyncStatus`]):
//!
//! * a **digest** — the compact `(prefix, epoch, tombstone?)` summary a
//!   replica sends to a peer, headed by the replica's **synced watermark**,
//!   the highest authority epoch it has fully reconciled through
//!   ([`SyncDigestMsg`]). The watermark is the replica's acknowledgement
//!   that every tombstone at or below that epoch has been adopted — the
//!   input to the authority's tombstone-GC horizon;
//! * a **delta** — the versioned entries the responder proves the digest
//!   sender is missing or holding stale, tombstones included, headed by the
//!   responder's table epoch and (when the responder is the authority) the
//!   current **GC horizon** = the minimum watermark across known replicas,
//!   below which tombstones are provably adopted everywhere and may be
//!   dropped ([`SyncDeltaMsg`]);
//! * a **subtree probe** — one step of a Merkle walk over the versioned
//!   table. The puller sends interior node ids it wants expanded plus
//!   per-leaf digests for the diverging leaf buckets it has reached
//!   ([`SyncProbeMsg`]); the responder answers with the child hashes of
//!   those nodes and the delta entries for the diffed leaves
//!   ([`SyncProbeReply`]). Equal-hash subtrees are never descended, so a
//!   round's wire cost is proportional to divergence, not table size;
//! * a **status record** — the introspection summary a server replies to
//!   `SyncStatus` with ([`SyncStatusRec`]).
//!
//! All payloads ride the existing [`WireWriter`]/[`WireReader`]
//! little-endian encoding used by descriptor records, travelling as
//! request/reply payloads (`MoveFrom`/`MoveTo` segments), never in the
//! fixed 32-byte message. Entry counts are 32-bit on the wire: a prefix
//! table can exceed 65 535 entries, and the old 16-bit count would
//! silently truncate it (the message-word count field is advisory and
//! saturates; the payload count is authoritative).

use crate::descriptor::DecodeError;
use crate::wire::{WireReader, WireWriter};

/// A prefix binding as carried in an anti-entropy delta.
///
/// Mirrors the `AddContextName` request fields: a *direct* binding names a
/// concrete `(server-pid, context-id)` pair, a *logical* binding names a
/// `(service-id, well-known-context)` pair re-resolved via GetPid on use
/// (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncBinding {
    /// `true` if `target` is a logical service id rather than a pid.
    pub logical: bool,
    /// Raw target: a pid (`logical == false`) or a service id.
    pub target: u32,
    /// Raw target context id.
    pub context: u32,
}

/// One versioned table entry in an anti-entropy delta.
///
/// `binding == None` is a **tombstone**: the responder asserts the prefix
/// was deleted at `epoch`, and the digest sender must drop any older live
/// entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncEntry {
    /// The prefix name (bytes, per §5.1).
    pub prefix: Vec<u8>,
    /// Monotonic per-entry version, stamped at the authority.
    pub epoch: u64,
    /// The binding, or `None` for a tombstone.
    pub binding: Option<SyncBinding>,
}

/// One `(prefix, epoch)` pair in a table digest.
///
/// The `tombstone` flag lets the authority tell a **GC'd tombstone** the
/// sender still retains (dropped on the sender's side by the horizon in
/// the delta reply — no re-stamp needed) from a **stray live entry** below
/// the horizon (which must be killed with a freshly stamped tombstone, or
/// a delete could be resurrected through gossip).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncDigestEntry {
    /// The prefix name.
    pub prefix: Vec<u8>,
    /// The epoch the sender holds for it (0 = preloaded, never verified).
    pub epoch: u64,
    /// `true` if the sender holds this entry as a tombstone.
    pub tombstone: bool,
}

/// The `SyncDigest` request payload: the sender's synced watermark plus
/// its whole-table digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SyncDigestMsg {
    /// The highest authority epoch the sender has fully synced through —
    /// its acknowledgement that every entry (tombstones included) at or
    /// below this epoch has been adopted. 0 until the first successful
    /// authority round; never advanced by gossip.
    pub watermark: u64,
    /// The `(prefix, epoch, tombstone?)` digest, tombstones included.
    pub entries: Vec<SyncDigestEntry>,
}

/// The `SyncDigest` reply payload: the responder's table epoch, its GC
/// horizon (authority only; 0 from replicas), and the delta.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SyncDeltaMsg {
    /// The responder's highest stamped/adopted epoch after computing the
    /// delta. A replica that applies the whole delta has synced through
    /// this epoch — its next watermark.
    pub epoch: u64,
    /// The responder's tombstone-GC horizon: tombstones at or below it are
    /// adopted by every known replica and may be dropped. 0 means "no GC
    /// instruction" (replicas answering gossip digests always send 0; the
    /// puller only honours a horizon from its configured authority).
    pub horizon: u64,
    /// The versioned entries the digest sender is missing or holding stale.
    pub entries: Vec<SyncEntry>,
}

/// The digest of one Merkle **leaf bucket**, as carried in a probe.
///
/// `node` is the packed leaf id (see `vservers::merkle_node_id`); the
/// entries are the `(prefix, epoch, tombstone?)` digest of every table
/// entry hashing into that bucket — the same shape as a flat
/// [`SyncDigestMsg`] restricted to one bucket.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncLeafDigest {
    /// Packed Merkle node id of the leaf bucket.
    pub node: u32,
    /// The sender's digest of that bucket (sorted by prefix).
    pub entries: Vec<SyncDigestEntry>,
}

/// The child hashes of one interior Merkle node, as carried in a probe
/// reply.
///
/// Children are in deterministic bucket order (child `k` covers prefixes
/// whose next hash nibble is `k`); a hash of 0 means the child subtree is
/// empty. The child count is 32-bit on the wire for the same reason entry
/// counts are: the advisory message word saturates, the payload count is
/// authoritative.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SyncNodeRec {
    /// Packed Merkle node id of the expanded interior node.
    pub node: u32,
    /// Its child subtree hashes, in child-index order (0 = empty subtree).
    pub children: Vec<u64>,
}

/// The `SyncProbe` request payload: one step of a Merkle subtree walk.
///
/// Carries the puller's synced watermark (same acknowledgement semantics
/// as [`SyncDigestMsg::watermark`] — recorded by an authoritative
/// responder on every probe; recording is idempotent, so a multi-probe
/// round moves the GC horizon exactly as one flat digest would), the
/// interior nodes whose children the puller wants, and the leaf digests
/// for diverging buckets the walk has bottomed out in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SyncProbeMsg {
    /// The sender's synced watermark (see [`SyncDigestMsg::watermark`]).
    pub watermark: u64,
    /// Interior node ids to expand.
    pub nodes: Vec<u32>,
    /// Leaf-bucket digests to diff.
    pub leaves: Vec<SyncLeafDigest>,
}

/// The `SyncProbe` reply payload: the responder's side of one walk step.
///
/// The epoch/horizon header repeats on every probe of a round and carries
/// the same meaning as [`SyncDeltaMsg`]'s: the puller honours the values
/// from the **last** reply of a completed walk (the one computed after
/// any tombstone minting), and ignores all of them if the round dies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SyncProbeReply {
    /// The responder's highest stamped/adopted epoch (see
    /// [`SyncDeltaMsg::epoch`]).
    pub epoch: u64,
    /// The responder's GC horizon; 0 from non-authoritative responders
    /// (see [`SyncDeltaMsg::horizon`]).
    pub horizon: u64,
    /// The responder's Merkle root (= its `table_hash`), so a one-probe
    /// round doubles as a cheap equality check.
    pub root: u64,
    /// Child hashes for each interior node the probe asked to expand.
    pub nodes: Vec<SyncNodeRec>,
    /// Delta entries for the leaf buckets the probe diffed.
    pub entries: Vec<SyncEntry>,
}

/// The `SyncStatus` reply payload: a server's versioned-table summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SyncStatusRec {
    /// Highest epoch the server has stamped or adopted.
    pub epoch: u64,
    /// Live (non-tombstone) table entries.
    pub live_entries: u32,
    /// Tombstoned entries retained for reconciliation.
    pub tombstones: u32,
    /// Currently armed suspicion entries.
    pub suspects: u32,
    /// Order-independent hash of the versioned table (entries + epochs +
    /// tombstones); two tables with equal hashes hold identical contents.
    pub table_hash: u64,
    /// Completed authority sync rounds (replica side).
    pub rounds: u32,
    /// Entries adopted from authority deltas, cumulative.
    pub adopted: u32,
    /// Live entries dropped by tombstone adoption, cumulative.
    pub dropped: u32,
    /// Entries promoted unverified → verified, cumulative.
    pub promoted: u32,
    /// Suspicion entries expired by the TTL sweep, cumulative.
    pub suspects_expired: u32,
    /// Bare-prefix `QueryName` binding queries answered, cumulative.
    pub binding_queries: u32,
    /// The server's synced watermark: the highest authority epoch it has
    /// fully reconciled through (0 on the authority itself and on replicas
    /// that never completed an authority round).
    pub watermark: u64,
    /// The tombstone-GC horizon this table last collected at (authority:
    /// min watermark across known replicas; replica: the last horizon its
    /// authority advertised).
    pub gc_horizon: u64,
    /// Completed replica↔replica gossip rounds, cumulative.
    pub gossip_rounds: u32,
    /// Entries adopted from gossip peers (held Suspect until the authority
    /// vouches), cumulative.
    pub gossip_adopted: u32,
    /// Tombstones dropped by horizon GC, cumulative.
    pub gc_dropped: u32,
    /// Merkle subtree probes this server has **initiated** as a round
    /// puller (authority rounds and gossip rounds both count), cumulative.
    /// Stays 0 when the flat-digest oracle path drives the rounds.
    pub probe_rounds: u32,
}

fn write_entry(w: &mut WireWriter, e: &SyncEntry) {
    w.bytes(&e.prefix);
    w.u64(e.epoch);
    match &e.binding {
        None => {
            w.u16(1); // tombstone flag
        }
        Some(b) => {
            w.u16(0);
            w.u16(u16::from(b.logical));
            w.u32(b.target);
            w.u32(b.context);
        }
    }
}

fn read_entry(r: &mut WireReader<'_>) -> Result<SyncEntry, DecodeError> {
    let prefix = r.bytes()?.to_vec();
    let epoch = r.u64()?;
    let binding = match r.u16()? {
        1 => None,
        0 => {
            let logical = match r.u16()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::BadValue { field: "logical" }),
            };
            Some(SyncBinding {
                logical,
                target: r.u32()?,
                context: r.u32()?,
            })
        }
        _ => return Err(DecodeError::BadValue { field: "tombstone" }),
    };
    Ok(SyncEntry {
        prefix,
        epoch,
        binding,
    })
}

impl SyncDigestMsg {
    /// Encodes the digest message (`SyncDigest` request payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.watermark);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            write_digest_entry(&mut w, e);
        }
        w.into_vec()
    }

    /// Decodes a digest message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, trailing bytes, or invalid
    /// flags.
    pub fn decode(buf: &[u8]) -> Result<SyncDigestMsg, DecodeError> {
        let mut r = WireReader::new(buf);
        let watermark = r.u64()?;
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(read_digest_entry(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(SyncDigestMsg { watermark, entries })
    }
}

impl SyncDeltaMsg {
    /// Encodes the delta message (`SyncDigest` reply payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.u64(self.horizon);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            write_entry(&mut w, e);
        }
        w.into_vec()
    }

    /// Decodes a delta message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, trailing bytes, or invalid
    /// flags.
    pub fn decode(buf: &[u8]) -> Result<SyncDeltaMsg, DecodeError> {
        let mut r = WireReader::new(buf);
        let epoch = r.u64()?;
        let horizon = r.u64()?;
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(read_entry(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(SyncDeltaMsg {
            epoch,
            horizon,
            entries,
        })
    }
}

fn write_digest_entry(w: &mut WireWriter, e: &SyncDigestEntry) {
    w.bytes(&e.prefix);
    w.u64(e.epoch);
    w.u16(u16::from(e.tombstone));
}

fn read_digest_entry(r: &mut WireReader<'_>) -> Result<SyncDigestEntry, DecodeError> {
    let prefix = r.bytes()?.to_vec();
    let epoch = r.u64()?;
    let tombstone = match r.u16()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::BadValue { field: "tombstone" }),
    };
    Ok(SyncDigestEntry {
        prefix,
        epoch,
        tombstone,
    })
}

impl SyncProbeMsg {
    /// Encodes the probe message (`SyncProbe` request payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.watermark);
        w.u32(self.nodes.len() as u32);
        for &n in &self.nodes {
            w.u32(n);
        }
        w.u32(self.leaves.len() as u32);
        for leaf in &self.leaves {
            w.u32(leaf.node);
            w.u32(leaf.entries.len() as u32);
            for e in &leaf.entries {
                write_digest_entry(&mut w, e);
            }
        }
        w.into_vec()
    }

    /// Decodes a probe message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, trailing bytes, or invalid
    /// flags.
    pub fn decode(buf: &[u8]) -> Result<SyncProbeMsg, DecodeError> {
        let mut r = WireReader::new(buf);
        let watermark = r.u64()?;
        let node_count = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(node_count.min(1024));
        for _ in 0..node_count {
            nodes.push(r.u32()?);
        }
        let leaf_count = r.u32()? as usize;
        let mut leaves = Vec::with_capacity(leaf_count.min(1024));
        for _ in 0..leaf_count {
            let node = r.u32()?;
            let entry_count = r.u32()? as usize;
            let mut entries = Vec::with_capacity(entry_count.min(1024));
            for _ in 0..entry_count {
                entries.push(read_digest_entry(&mut r)?);
            }
            leaves.push(SyncLeafDigest { node, entries });
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(SyncProbeMsg {
            watermark,
            nodes,
            leaves,
        })
    }
}

impl SyncProbeReply {
    /// Encodes the probe reply (`SyncProbe` reply payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch);
        w.u64(self.horizon);
        w.u64(self.root);
        w.u32(self.nodes.len() as u32);
        for rec in &self.nodes {
            w.u32(rec.node);
            w.u32(rec.children.len() as u32);
            for &h in &rec.children {
                w.u64(h);
            }
        }
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            write_entry(&mut w, e);
        }
        w.into_vec()
    }

    /// Decodes a probe reply.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, trailing bytes, or invalid
    /// flags.
    pub fn decode(buf: &[u8]) -> Result<SyncProbeReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let epoch = r.u64()?;
        let horizon = r.u64()?;
        let root = r.u64()?;
        let node_count = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(node_count.min(1024));
        for _ in 0..node_count {
            let node = r.u32()?;
            let child_count = r.u32()? as usize;
            let mut children = Vec::with_capacity(child_count.min(1024));
            for _ in 0..child_count {
                children.push(r.u64()?);
            }
            nodes.push(SyncNodeRec { node, children });
        }
        let entry_count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1024));
        for _ in 0..entry_count {
            entries.push(read_entry(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(SyncProbeReply {
            epoch,
            horizon,
            root,
            nodes,
            entries,
        })
    }
}

impl SyncStatusRec {
    /// Encodes the record as a `SyncStatus` reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.epoch)
            .u32(self.live_entries)
            .u32(self.tombstones)
            .u32(self.suspects)
            .u64(self.table_hash)
            .u32(self.rounds)
            .u32(self.adopted)
            .u32(self.dropped)
            .u32(self.promoted)
            .u32(self.suspects_expired)
            .u32(self.binding_queries)
            .u64(self.watermark)
            .u64(self.gc_horizon)
            .u32(self.gossip_rounds)
            .u32(self.gossip_adopted)
            .u32(self.gc_dropped)
            .u32(self.probe_rounds);
        w.into_vec()
    }

    /// Decodes a record from a `SyncStatus` reply payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<SyncStatusRec, DecodeError> {
        let mut r = WireReader::new(buf);
        let rec = SyncStatusRec {
            epoch: r.u64()?,
            live_entries: r.u32()?,
            tombstones: r.u32()?,
            suspects: r.u32()?,
            table_hash: r.u64()?,
            rounds: r.u32()?,
            adopted: r.u32()?,
            dropped: r.u32()?,
            promoted: r.u32()?,
            suspects_expired: r.u32()?,
            binding_queries: r.u32()?,
            watermark: r.u64()?,
            gc_horizon: r.u64()?,
            gossip_rounds: r.u32()?,
            gossip_adopted: r.u32()?,
            gc_dropped: r.u32()?,
            probe_rounds: r.u32()?,
        };
        if !r.is_exhausted() {
            return Err(DecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_roundtrip() {
        let msg = SyncDigestMsg {
            watermark: 0xAB,
            entries: vec![
                SyncDigestEntry {
                    prefix: b"local".to_vec(),
                    epoch: 0,
                    tombstone: false,
                },
                SyncDigestEntry {
                    prefix: b"remote".to_vec(),
                    epoch: 42,
                    tombstone: true,
                },
            ],
        };
        let buf = msg.encode();
        assert_eq!(SyncDigestMsg::decode(&buf).unwrap(), msg);
    }

    #[test]
    fn delta_roundtrip_with_tombstone() {
        let msg = SyncDeltaMsg {
            epoch: 9,
            horizon: 6,
            entries: vec![
                SyncEntry {
                    prefix: b"remote".to_vec(),
                    epoch: 7,
                    binding: Some(SyncBinding {
                        logical: false,
                        target: 0xDEAD_BEEF,
                        context: 3,
                    }),
                },
                SyncEntry {
                    prefix: b"gone".to_vec(),
                    epoch: 8,
                    binding: None,
                },
            ],
        };
        let buf = msg.encode();
        assert_eq!(SyncDeltaMsg::decode(&buf).unwrap(), msg);
    }

    #[test]
    fn truncated_delta_is_an_error() {
        let msg = SyncDeltaMsg {
            epoch: 1,
            horizon: 0,
            entries: vec![SyncEntry {
                prefix: b"x".to_vec(),
                epoch: 1,
                binding: None,
            }],
        };
        let buf = msg.encode();
        assert!(SyncDeltaMsg::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = SyncDigestMsg::default().encode();
        buf.push(0);
        assert!(matches!(
            SyncDigestMsg::decode(&buf),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_flags_rejected() {
        // epoch=0, horizon=0, count=1, empty prefix, epoch=0, tombstone flag 9.
        let mut w = WireWriter::new();
        w.u64(0).u64(0).u32(1).bytes(b"").u64(0).u16(9);
        assert!(matches!(
            SyncDeltaMsg::decode(&w.into_vec()),
            Err(DecodeError::BadValue { field: "tombstone" })
        ));
    }

    #[test]
    fn status_roundtrip() {
        let rec = SyncStatusRec {
            epoch: 0x0123_4567_89AB_CDEF,
            live_entries: 3,
            tombstones: 1,
            suspects: 2,
            table_hash: 0xFEED_FACE_CAFE_BABE,
            rounds: 4,
            adopted: 5,
            dropped: 6,
            promoted: 7,
            suspects_expired: 8,
            binding_queries: 9,
            watermark: 0x1111_2222_3333_4444,
            gc_horizon: 0x0000_0000_1111_0000,
            gossip_rounds: 10,
            gossip_adopted: 11,
            gc_dropped: 12,
            probe_rounds: 13,
        };
        assert_eq!(SyncStatusRec::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn probe_roundtrip() {
        let msg = SyncProbeMsg {
            watermark: 0x42,
            nodes: vec![0x0100_0003, 0x0100_000A],
            leaves: vec![SyncLeafDigest {
                node: 0x0500_1234,
                entries: vec![SyncDigestEntry {
                    prefix: b"local".to_vec(),
                    epoch: 7,
                    tombstone: false,
                }],
            }],
        };
        assert_eq!(SyncProbeMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn probe_reply_roundtrip_with_tombstone() {
        let msg = SyncProbeReply {
            epoch: 9,
            horizon: 6,
            root: 0xFEED_FACE_CAFE_BABE,
            nodes: vec![SyncNodeRec {
                node: 0,
                children: vec![0, 3, 0, 0, 0xAB, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
            }],
            entries: vec![SyncEntry {
                prefix: b"gone".to_vec(),
                epoch: 8,
                binding: None,
            }],
        };
        assert_eq!(SyncProbeReply::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncated_probe_reply_is_an_error() {
        let msg = SyncProbeReply {
            epoch: 1,
            horizon: 0,
            root: 2,
            nodes: vec![SyncNodeRec {
                node: 5,
                children: vec![1, 2],
            }],
            entries: Vec::new(),
        };
        let buf = msg.encode();
        assert!(SyncProbeReply::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn digest_counts_are_not_u16_bounded() {
        // The boundary the old format silently truncated at: one entry
        // past u16::MAX must survive the wire intact.
        let n = usize::from(u16::MAX) + 1;
        let msg = SyncDigestMsg {
            watermark: 7,
            entries: (0..n)
                .map(|i| SyncDigestEntry {
                    prefix: (i as u32).to_le_bytes().to_vec(),
                    epoch: i as u64,
                    tombstone: i % 3 == 0,
                })
                .collect(),
        };
        let decoded = SyncDigestMsg::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.entries.len(), n);
        assert_eq!(decoded, msg);
    }
}
