//! Process identifiers (paper §4.1, Figure 2).
//!
//! A V process identifier is a 32-bit value, unique within one V domain,
//! structured as two 16-bit subfields: the *logical host* and the *local
//! process identifier*. Process identifiers are the only absolute names in a
//! V domain; all other names are relative to a pid.

use std::fmt;

/// The logical-host subfield of a [`Pid`] (paper §4.1).
///
/// A logical host is mapped to a particular host address by the kernel; each
/// logical host independently generates unique local process identifiers, so
/// pids never conflict across hosts.
///
/// # Examples
///
/// ```
/// use vproto::{LogicalHost, Pid};
///
/// let host = LogicalHost::new(7);
/// let pid = Pid::new(host, 42);
/// assert_eq!(pid.logical_host(), host);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalHost(u16);

impl LogicalHost {
    /// Creates a logical host identifier from its raw 16-bit value.
    pub const fn new(raw: u16) -> Self {
        LogicalHost(raw)
    }

    /// Returns the raw 16-bit value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for LogicalHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl From<u16> for LogicalHost {
    fn from(raw: u16) -> Self {
        LogicalHost(raw)
    }
}

/// A V process identifier: 16-bit logical host ∘ 16-bit local pid
/// (paper §4.1, Figure 2).
///
/// A pid uniquely identifies a process within one V domain. It is *spatially*
/// unique but not unique in time — the kernel attempts to maximize the time
/// before a local pid is reused. The structure makes three things efficient:
/// locating a process (route by logical host), generating unique pids without
/// coordination (per-host local counters), and testing whether a named
/// process is local or remote.
///
/// # Examples
///
/// ```
/// use vproto::{LogicalHost, Pid};
///
/// let pid = Pid::new(LogicalHost::new(3), 9);
/// assert_eq!(pid.local_pid(), 9);
/// assert!(pid.is_on(LogicalHost::new(3)));
/// assert_eq!(Pid::from_raw(pid.raw()), pid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// The null pid: never assigned to a process. Used in message fields to
    /// mean "no process".
    pub const NULL: Pid = Pid(0);

    /// Creates a pid from its logical-host and local-pid subfields.
    pub const fn new(host: LogicalHost, local: u16) -> Self {
        Pid(((host.raw() as u32) << 16) | local as u32)
    }

    /// Reconstructs a pid from its raw 32-bit wire representation.
    pub const fn from_raw(raw: u32) -> Self {
        Pid(raw)
    }

    /// Returns the raw 32-bit wire representation.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the logical-host subfield.
    pub const fn logical_host(self) -> LogicalHost {
        LogicalHost::new((self.0 >> 16) as u16)
    }

    /// Returns the local-process-identifier subfield.
    pub const fn local_pid(self) -> u16 {
        self.0 as u16
    }

    /// Returns `true` if this is the null pid.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the process lives on `host`.
    ///
    /// The paper notes that determining locality from a pid alone is "an
    /// important issue for some servers"; this is that test.
    pub const fn is_on(self, host: LogicalHost) -> bool {
        self.logical_host().raw() == host.raw()
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.logical_host(), self.local_pid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join_roundtrip() {
        let pid = Pid::new(LogicalHost::new(0xBEEF), 0xCAFE);
        assert_eq!(pid.logical_host().raw(), 0xBEEF);
        assert_eq!(pid.local_pid(), 0xCAFE);
        assert_eq!(Pid::from_raw(pid.raw()), pid);
    }

    #[test]
    fn null_pid_is_null() {
        assert!(Pid::NULL.is_null());
        assert!(!Pid::new(LogicalHost::new(0), 1).is_null());
        assert!(!Pid::new(LogicalHost::new(1), 0).is_null());
    }

    #[test]
    fn locality_test() {
        let a = LogicalHost::new(1);
        let b = LogicalHost::new(2);
        let pid = Pid::new(a, 5);
        assert!(pid.is_on(a));
        assert!(!pid.is_on(b));
    }

    #[test]
    fn display_shows_subfields() {
        let pid = Pid::new(LogicalHost::new(3), 17);
        assert_eq!(pid.to_string(), "host3.17");
    }

    #[test]
    fn ordering_groups_by_host() {
        let lo = Pid::new(LogicalHost::new(1), 0xFFFF);
        let hi = Pid::new(LogicalHost::new(2), 0);
        assert!(lo < hi);
    }
}
