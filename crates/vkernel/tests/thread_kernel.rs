//! Behavioural tests for the real-thread kernel: rendezvous semantics,
//! forwarding, MoveTo/MoveFrom, failure modes, groups, and service naming.

use bytes::Bytes;
use vkernel::{Domain, Ipc, IpcError};
use vproto::{Message, ReplyCode, RequestCode, Scope, ServiceId};

fn echo_server(ctx: &dyn Ipc) {
    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        let payload = ctx.move_from(&rx).unwrap();
        ctx.reply(rx, msg, payload).ok();
    }
}

#[test]
fn send_receive_reply_roundtrip() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "echo", echo_server);
    let reply = domain
        .client(host, move |ctx| {
            ctx.send(
                server,
                Message::request(RequestCode::Echo),
                Bytes::from_static(b"hello"),
                64,
            )
        })
        .unwrap();
    assert_eq!(reply.msg.request_code(), Some(RequestCode::Echo));
    assert_eq!(&reply.data[..], b"hello");
}

#[test]
fn sender_identity_is_visible_to_receiver() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "who", |ctx| {
        while let Ok(rx) = ctx.receive() {
            let mut m = Message::ok();
            m.set_pid_at(5, rx.from);
            ctx.reply(rx, m, Bytes::new()).ok();
        }
    });
    let (me, reported) = domain.client(host, move |ctx| {
        let r = ctx
            .send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
            .unwrap();
        (ctx.my_pid(), r.msg.pid_at(5))
    });
    assert_eq!(me, reported);
}

#[test]
fn forward_makes_reply_come_from_third_process() {
    // Paper §3.1: "it appears as though the sender originally sent to the
    // third process".
    let domain = Domain::new();
    let host = domain.add_host();
    let backend = domain.spawn(host, "backend", |ctx| {
        while let Ok(rx) = ctx.receive() {
            // The backend sees the ORIGINAL sender, not the forwarder.
            let mut m = Message::ok();
            m.set_pid_at(5, rx.from);
            m.set_pid_at(7, ctx.my_pid());
            ctx.reply(rx, m, Bytes::new()).ok();
        }
    });
    let front = domain.spawn(host, "front", move |ctx| {
        while let Ok(rx) = ctx.receive() {
            let msg = rx.msg;
            ctx.forward(rx, backend, msg).ok();
        }
    });
    let (client_pid, seen_sender, replier) = domain.client(host, move |ctx| {
        let r = ctx
            .send(front, Message::request(RequestCode::Echo), Bytes::new(), 0)
            .unwrap();
        (ctx.my_pid(), r.msg.pid_at(5), r.msg.pid_at(7))
    });
    assert_eq!(seen_sender, client_pid);
    assert_eq!(replier, backend);
}

#[test]
fn forward_preserves_payload_for_move_from() {
    let domain = Domain::new();
    let host = domain.add_host();
    let backend = domain.spawn(host, "backend", |ctx| {
        while let Ok(rx) = ctx.receive() {
            let payload = ctx.move_from(&rx).unwrap();
            ctx.reply(rx, Message::ok(), payload).ok();
        }
    });
    let front = domain.spawn(host, "front", move |ctx| {
        while let Ok(rx) = ctx.receive() {
            let msg = rx.msg;
            ctx.forward(rx, backend, msg).ok();
        }
    });
    let reply = domain
        .client(host, move |ctx| {
            ctx.send(
                front,
                Message::request(RequestCode::Echo),
                Bytes::from_static(b"via-forward"),
                64,
            )
        })
        .unwrap();
    assert_eq!(&reply.data[..], b"via-forward");
}

#[test]
fn move_to_accumulates_before_reply() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "chunker", |ctx| {
        while let Ok(mut rx) = ctx.receive() {
            ctx.move_to(&mut rx, b"part1-").unwrap();
            ctx.move_to(&mut rx, b"part2-").unwrap();
            ctx.reply(rx, Message::ok(), Bytes::from_static(b"tail"))
                .ok();
        }
    });
    let reply = domain
        .client(host, move |ctx| {
            ctx.send(
                server,
                Message::request(RequestCode::Echo),
                Bytes::new(),
                64,
            )
        })
        .unwrap();
    assert_eq!(&reply.data[..], b"part1-part2-tail");
}

#[test]
fn buffer_overflow_reported_to_both_sides() {
    let domain = Domain::new();
    let host = domain.add_host();
    let (err_tx, err_rx) = crossbeam::channel::bounded(1);
    let server = domain.spawn(host, "bloat", move |ctx| {
        while let Ok(rx) = ctx.receive() {
            let result = ctx.reply(rx, Message::ok(), Bytes::from(vec![0u8; 100]));
            let _ = err_tx.send(result);
        }
    });
    let client_result = domain.client(host, move |ctx| {
        ctx.send(
            server,
            Message::request(RequestCode::Echo),
            Bytes::new(),
            10,
        )
    });
    assert_eq!(client_result.unwrap_err(), IpcError::BufferOverflow);
    assert_eq!(err_rx.recv().unwrap(), Err(IpcError::BufferOverflow));
}

#[test]
fn move_to_rejects_overflow_but_keeps_transaction_open() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "careful", |ctx| {
        while let Ok(mut rx) = ctx.receive() {
            assert_eq!(
                ctx.move_to(&mut rx, &[0u8; 999]),
                Err(IpcError::BufferOverflow)
            );
            // Transaction still completes normally afterwards.
            ctx.reply(rx, Message::ok(), Bytes::from_static(b"ok"))
                .unwrap();
        }
    });
    let reply = domain
        .client(host, move |ctx| {
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 8)
        })
        .unwrap();
    assert_eq!(&reply.data[..], b"ok");
}

#[test]
fn send_to_nonexistent_process_fails_fast() {
    let domain = Domain::new();
    let host = domain.add_host();
    let bogus = vproto::Pid::new(host, 9999);
    let err = domain
        .client(host, move |ctx| {
            ctx.send(bogus, Message::request(RequestCode::Echo), Bytes::new(), 0)
        })
        .unwrap_err();
    assert_eq!(err, IpcError::NoProcess);
}

#[test]
fn dropping_received_unreplied_unblocks_sender_with_error() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "dropper", |ctx| {
        while let Ok(rx) = ctx.receive() {
            drop(rx); // never reply
        }
    });
    let err = domain
        .client(host, move |ctx| {
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
        })
        .unwrap_err();
    assert_eq!(err, IpcError::ProcessDied);
}

#[test]
fn killed_server_unblocks_pending_sender() {
    let domain = Domain::new();
    let host = domain.add_host();
    let (ready_tx, ready_rx) = crossbeam::channel::bounded(1);
    // A server that stalls forever after signalling readiness.
    let server = domain.spawn(host, "stall", move |ctx| {
        let rx = ctx.receive().unwrap();
        let _ = ready_tx.send(());
        // Hold the transaction until killed.
        match ctx.receive() {
            Ok(_) | Err(_) => drop(rx),
        }
    });
    let d2 = domain.clone();
    let result = std::thread::spawn(move || {
        d2.client(host, move |ctx| {
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
        })
    });
    ready_rx.recv().unwrap();
    domain.kill(server);
    assert_eq!(result.join().unwrap().unwrap_err(), IpcError::ProcessDied);
}

#[test]
fn registry_rebinding_after_crash() {
    // Paper §4.2: a storage server recreated after a crash has a different
    // pid but is the same service.
    let domain = Domain::new();
    let host = domain.add_host();
    let v1 = domain.spawn(host, "svc1", |ctx| {
        ctx.set_pid(ServiceId::FILE_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    // Wait for registration.
    while domain
        .registry()
        .lookup(ServiceId::FILE_SERVER, Scope::Both, host)
        .is_none()
    {
        std::thread::yield_now();
    }
    domain.kill(v1);
    assert!(domain
        .registry()
        .lookup(ServiceId::FILE_SERVER, Scope::Both, host)
        .is_none());
    let v2 = domain.spawn(host, "svc2", |ctx| {
        ctx.set_pid(ServiceId::FILE_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    while domain
        .registry()
        .lookup(ServiceId::FILE_SERVER, Scope::Both, host)
        .is_none()
    {
        std::thread::yield_now();
    }
    let found = domain.client(host, |ctx| ctx.get_pid(ServiceId::FILE_SERVER, Scope::Both));
    assert_eq!(found, Some(v2));
    assert_ne!(v1, v2);
}

#[test]
fn get_pid_scopes_separate_local_and_public_servers() {
    let domain = Domain::new();
    let (a, b) = (domain.add_host(), domain.add_host());
    domain.spawn(a, "local-prefix", |ctx| {
        ctx.set_pid(ServiceId::CONTEXT_PREFIX, Scope::Local);
        while ctx.receive().is_ok() {}
    });
    // Wait for registration to land.
    while domain
        .registry()
        .lookup(ServiceId::CONTEXT_PREFIX, Scope::Both, a)
        .is_none()
    {
        std::thread::yield_now();
    }
    let from_a = domain.client(a, |ctx| ctx.get_pid(ServiceId::CONTEXT_PREFIX, Scope::Both));
    let from_b = domain.client(b, |ctx| ctx.get_pid(ServiceId::CONTEXT_PREFIX, Scope::Both));
    assert!(from_a.is_some());
    assert!(from_b.is_none(), "local-scope server must stay private");
}

#[test]
fn group_send_first_reply_wins() {
    let domain = Domain::new();
    let host = domain.add_host();
    let group = domain.client(host, |ctx| ctx.create_group());
    for tag in [1u16, 2, 3] {
        let g = group;
        domain.spawn(host, "member", move |ctx| {
            ctx.join_group(g).unwrap();
            ctx.set_pid(ServiceId::new(7000 + tag as u32), Scope::Both);
            while let Ok(rx) = ctx.receive() {
                let mut m = Message::ok();
                m.set_word(5, tag);
                ctx.reply(rx, m, Bytes::new()).ok();
            }
        });
    }
    // Wait until all three members joined.
    for tag in [1u32, 2, 3] {
        while domain
            .registry()
            .lookup(ServiceId::new(7000 + tag), Scope::Both, host)
            .is_none()
        {
            std::thread::yield_now();
        }
    }
    let reply = domain
        .client(host, move |ctx| {
            ctx.send_group(group, Message::request(RequestCode::Echo), Bytes::new())
        })
        .unwrap();
    assert_eq!(reply.msg.reply_code(), ReplyCode::Ok);
    assert!((1..=3).contains(&reply.msg.word(5)));
}

#[test]
fn group_send_with_no_members_errors() {
    let domain = Domain::new();
    let host = domain.add_host();
    let err = domain
        .client(host, |ctx| {
            let g = ctx.create_group();
            ctx.send_group(g, Message::request(RequestCode::Echo), Bytes::new())
        })
        .unwrap_err();
    assert_eq!(err, IpcError::NoReply);
}

#[test]
fn group_send_to_unknown_group_errors() {
    let domain = Domain::new();
    let host = domain.add_host();
    let err = domain
        .client(host, |ctx| {
            ctx.send_group(
                vkernel::GroupId(424242),
                Message::request(RequestCode::Echo),
                Bytes::new(),
            )
        })
        .unwrap_err();
    assert_eq!(err, IpcError::NoSuchGroup);
}

#[test]
fn many_concurrent_clients_are_all_served() {
    let domain = Domain::new();
    let host = domain.add_host();
    let server = domain.spawn(host, "echo", echo_server);
    let mut handles = Vec::new();
    for i in 0..32u32 {
        let d = domain.clone();
        handles.push(std::thread::spawn(move || {
            d.client(host, move |ctx| {
                let mut m = Message::request(RequestCode::Echo);
                m.set_word32(5, i);
                let r = ctx.send(server, m, Bytes::new(), 0).unwrap();
                r.msg.word32(5)
            })
        }));
    }
    let mut results: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.sort_unstable();
    assert_eq!(results, (0..32).collect::<Vec<_>>());
}

#[test]
fn shutdown_terminates_servers_cleanly() {
    let domain = Domain::new();
    let host = domain.add_host();
    for _ in 0..4 {
        domain.spawn(host, "echo", echo_server);
    }
    domain.shutdown(); // must not hang
}

#[test]
fn emulated_1984_mode_reproduces_transaction_times_in_wall_clock() {
    use std::time::Instant;
    let domain = Domain::emulated_1984(vnet::Params1984::ethernet_3mbit());
    let (a, b) = (domain.add_host(), domain.add_host());
    let local_server = domain.spawn(a, "echo-l", echo_server);
    let remote_server = domain.spawn(b, "echo-r", echo_server);
    let (local, remote) = domain.client(a, move |ctx| {
        let time = |server| {
            let t0 = Instant::now();
            for _ in 0..5 {
                ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                    .unwrap();
            }
            t0.elapsed() / 5
        };
        (time(local_server), time(remote_server))
    });
    // Sleeps only put lower bounds on wall time; scheduling adds jitter.
    assert!(local.as_micros() >= 770, "local {local:?}");
    assert!(remote.as_micros() >= 2560, "remote {remote:?}");
    assert!(remote > local);
    // Sanity: not wildly slower than the 1984 hardware either.
    assert!(remote.as_millis() < 30, "remote {remote:?}");
}

#[test]
fn emulated_mode_exposes_the_cost_model_to_servers() {
    let plain = Domain::new();
    let h1 = plain.add_host();
    assert!(plain.client(h1, |ctx| ctx.net().is_none()));
    let emulated = Domain::emulated_1984(vnet::Params1984::ethernet_3mbit());
    let h2 = emulated.add_host();
    assert!(emulated.client(h2, |ctx| ctx.net().is_some()));
}
