//! Property-based tests of the virtual-time kernel: for *any* randomly
//! generated workload, repeated runs must produce identical virtual
//! timings, and basic conservation properties must hold.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use vkernel::SimDomain;
use vnet::{FaultConfig, Params1984, Partition, SimTime};
use vproto::{LogicalHost, Message, RequestCode};

/// One step of a generated client script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Transact with server `s % n_servers`, with a payload of `len` bytes.
    Send { s: u8, len: u16 },
    /// Sleep for `ms` milliseconds.
    Sleep { ms: u8 },
    /// Charge local work.
    Charge { us: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u16..2048).prop_map(|(s, len)| Op::Send { s, len }),
        (0u8..20).prop_map(|ms| Op::Sleep { ms }),
        (0u16..5000).prop_map(|us| Op::Charge { us }),
    ]
}

#[derive(Debug, Clone)]
struct Workload {
    n_servers: usize,
    n_hosts: usize,
    scripts: Vec<Vec<Op>>,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        1usize..4,
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(arb_op(), 0..12), 1..5),
    )
        .prop_map(|(n_servers, n_hosts, scripts)| Workload {
            n_servers,
            n_hosts,
            scripts,
        })
}

/// Executes the workload and returns (final virtual time, per-client
/// elapsed times, total transactions completed).
fn execute(w: &Workload) -> (u64, Vec<u64>, u64) {
    execute_with(w, None).0
}

/// Executes the workload, optionally under a fault plane, and returns the
/// summary of [`execute`] plus the domain's event hash and fault stats.
fn execute_with(
    w: &Workload,
    faults: Option<FaultConfig>,
) -> ((u64, Vec<u64>, u64), u64, vnet::FaultStats) {
    let domain = match faults {
        Some(cfg) => SimDomain::with_faults(Params1984::ethernet_3mbit(), cfg),
        None => SimDomain::new(Params1984::ethernet_3mbit()),
    };
    let hosts: Vec<_> = (0..w.n_hosts).map(|_| domain.add_host()).collect();
    let servers: Vec<_> = (0..w.n_servers)
        .map(|i| {
            domain.spawn(hosts[i % hosts.len()], "echo", |ctx| {
                while let Ok(rx) = ctx.receive() {
                    let msg = rx.msg;
                    let payload = ctx.move_from(&rx).unwrap_or_default();
                    ctx.reply(rx, msg, payload).ok();
                }
            })
        })
        .collect();
    domain.run();

    let results: Vec<Arc<parking_lot::Mutex<(u64, u64)>>> = w
        .scripts
        .iter()
        .enumerate()
        .map(|(i, script)| {
            let slot = Arc::new(parking_lot::Mutex::new((0u64, 0u64)));
            let out = Arc::clone(&slot);
            let script = script.clone();
            let servers = servers.clone();
            domain.spawn(hosts[i % hosts.len()], "client", move |ctx| {
                let t0 = ctx.now();
                let mut txns = 0u64;
                for op in script {
                    match op {
                        Op::Send { s, len } => {
                            let target = servers[s as usize % servers.len()];
                            let payload = Bytes::from(vec![0u8; len as usize]);
                            if ctx
                                .send(
                                    target,
                                    Message::request(RequestCode::Echo),
                                    payload,
                                    len as usize,
                                )
                                .is_ok()
                            {
                                txns += 1;
                            }
                        }
                        Op::Sleep { ms } => ctx.sleep(Duration::from_millis(ms as u64)),
                        Op::Charge { us } => ctx.charge(Duration::from_micros(us as u64)),
                    }
                }
                *out.lock() = ((ctx.now() - t0).as_nanos() as u64, txns);
            });
            slot
        })
        .collect();
    let end = domain.run();
    let mut elapsed = Vec::new();
    let mut total_txns = 0;
    for slot in results {
        let (e, t) = *slot.lock();
        elapsed.push(e);
        total_txns += t;
    }
    (
        (end.as_nanos(), elapsed, total_txns),
        domain.event_hash(),
        domain.fault_stats(),
    )
}

/// An arbitrary partition window over the workload's possible hosts: a
/// cut naming a host the workload never created simply never matches.
fn arb_partition() -> impl Strategy<Value = Partition> {
    (1u16..4, 1u16..4, 0u64..100, 0u64..100, any::<bool>()).prop_map(
        |(a, b, start_ms, width_ms, symmetric)| {
            let start = SimTime::ZERO + Duration::from_millis(start_ms);
            let heal = Some(start + Duration::from_millis(width_ms));
            Partition {
                from: LogicalHost::new(a),
                to: LogicalHost::new(b),
                start,
                heal,
                symmetric,
            }
        },
    )
}

/// An arbitrary fault plane: seed, loss/duplication probabilities, jitter,
/// and up to two scheduled partitions.
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0.0f64..0.3,
        0.0f64..0.2,
        0u64..2000,
        proptest::collection::vec(arb_partition(), 0..3),
    )
        .prop_map(|(seed, loss, dup, jitter_us, partitions)| {
            let mut cfg = FaultConfig::lossless(seed)
                .with_loss(loss)
                .with_dup(dup)
                .with_jitter(Duration::from_micros(jitter_us));
            for p in partitions {
                cfg = cfg.with_partition(p);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Determinism: any workload produces bit-identical virtual timings on
    /// every run.
    #[test]
    fn arbitrary_workloads_are_deterministic(w in arb_workload()) {
        let a = execute(&w);
        let b = execute(&w);
        prop_assert_eq!(a, b);
    }

    /// Fault determinism: equal fault seeds (with equal workloads) produce
    /// bit-identical virtual timings, event hashes, and fault statistics.
    #[test]
    fn equal_fault_seeds_are_deterministic(w in arb_workload(), cfg in arb_faults()) {
        let a = execute_with(&w, Some(cfg.clone()));
        let b = execute_with(&w, Some(cfg));
        prop_assert_eq!(a, b);
    }

    /// Fault accounting is conserved: every lost attempt — dropped on the
    /// wire or severed by a partition — is either eventually retransmitted
    /// to success or part of an exhausted ladder of exactly `max_attempts`
    /// losses. No drop goes unaccounted, so no transaction can be silently
    /// swallowed by the plane, partitions included.
    #[test]
    fn fault_accounting_is_conserved(w in arb_workload(), cfg in arb_faults()) {
        let max = cfg.retransmit.max_attempts as u64;
        let (_, _, stats) = execute_with(&w, Some(cfg));
        prop_assert_eq!(
            stats.drops + stats.partition_drops,
            stats.retransmits + stats.exhausted * max
        );
    }

    /// Conservation: every send to a live echo server completes, and each
    /// client's elapsed time is at least the sum of its own sleeps/charges.
    #[test]
    fn time_is_monotone_and_work_completes(w in arb_workload()) {
        let (end, elapsed, txns) = execute(&w);
        let expected_txns: u64 = w
            .scripts
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count() as u64;
        prop_assert_eq!(txns, expected_txns);
        for (script, e) in w.scripts.iter().zip(&elapsed) {
            let floor: u64 = script
                .iter()
                .map(|op| match op {
                    Op::Sleep { ms } => *ms as u64 * 1_000_000,
                    Op::Charge { us } => *us as u64 * 1_000,
                    Op::Send { .. } => 770_000, // at least a local txn
                })
                .sum();
            prop_assert!(*e >= floor, "elapsed {} < floor {}", e, floor);
            prop_assert!(end >= *e);
        }
    }
}
