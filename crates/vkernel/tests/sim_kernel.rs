//! Behavioural and timing tests for the virtual-time kernel: the paper's
//! primitive measurements, determinism, concurrency in virtual time, and
//! failure modes.

use bytes::Bytes;
use std::time::Duration;
use vkernel::{Ipc, IpcError, SimDomain};
use vnet::Params1984;
use vproto::{Message, RequestCode, Scope, ServiceId};

fn echo_server(ctx: &dyn Ipc) {
    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        ctx.reply(rx, msg, Bytes::new()).ok();
    }
}

fn micros(d: Duration) -> u64 {
    d.as_micros() as u64
}

#[test]
fn local_transaction_is_770_us() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    let server = domain.spawn(host, "echo", echo_server);
    let elapsed = domain
        .client(host, move |ctx| {
            let t0 = ctx.now();
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .unwrap();
            ctx.now() - t0
        })
        .unwrap();
    assert_eq!(micros(elapsed), 770);
}

#[test]
fn remote_transaction_is_2560_us() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (a, b) = (domain.add_host(), domain.add_host());
    let server = domain.spawn(b, "echo", echo_server);
    let elapsed = domain
        .client(a, move |ctx| {
            let t0 = ctx.now();
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .unwrap();
            ctx.now() - t0
        })
        .unwrap();
    assert_eq!(micros(elapsed), 2560);
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    let run_once = || {
        let domain = SimDomain::new(Params1984::ethernet_3mbit());
        let (a, b) = (domain.add_host(), domain.add_host());
        let server = domain.spawn(b, "echo", echo_server);
        for _ in 0..3 {
            domain
                .client(a, move |ctx| {
                    ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                        .unwrap();
                })
                .unwrap();
        }
        domain.virtual_now().as_nanos()
    };
    let first = run_once();
    for _ in 0..5 {
        assert_eq!(run_once(), first);
    }
}

#[test]
fn sixty_four_kb_move_to_reproduces_program_load() {
    // Paper §3.1: 64 KB program load in 338 ms (data already in memory).
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (a, b) = (domain.add_host(), domain.add_host());
    let image = vec![0xABu8; 64 * 1024];
    let server = domain.spawn(b, "loader", move |ctx| {
        while let Ok(mut rx) = ctx.receive() {
            ctx.move_to(&mut rx, &image).unwrap();
            ctx.reply(rx, Message::ok(), Bytes::new()).ok();
        }
    });
    let elapsed = domain
        .client(a, move |ctx| {
            let t0 = ctx.now();
            let r = ctx
                .send(
                    server,
                    Message::request(RequestCode::Echo),
                    Bytes::new(),
                    64 * 1024,
                )
                .unwrap();
            assert_eq!(r.data.len(), 64 * 1024);
            ctx.now() - t0
        })
        .unwrap();
    let ms = elapsed.as_millis() as i64;
    assert!(
        (ms - 338).abs() <= 6,
        "program load took {ms} ms, paper reports 338 ms"
    );
}

#[test]
fn independent_pairs_overlap_in_virtual_time() {
    // Two disjoint client/server pairs each doing 10 remote transactions:
    // the domain finishes in ~the time of ONE pair, not the sum.
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (a, b, c, d) = (
        domain.add_host(),
        domain.add_host(),
        domain.add_host(),
        domain.add_host(),
    );
    let s1 = domain.spawn(b, "echo1", echo_server);
    let s2 = domain.spawn(d, "echo2", echo_server);
    for (client_host, server) in [(a, s1), (c, s2)] {
        domain.spawn(client_host, "driver", move |ctx| {
            for _ in 0..10 {
                ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                    .unwrap();
            }
        });
    }
    let end = domain.run();
    let ms = end.as_millis_f64();
    // One pair needs 10 × 2.56 = 25.6 ms; serialized would be 51.2 ms.
    assert!(
        (25.0..27.0).contains(&ms),
        "virtual completion {ms} ms — pairs did not overlap"
    );
}

#[test]
fn forward_charges_an_extra_hop() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    let backend = domain.spawn(host, "backend", echo_server);
    let front = domain.spawn(host, "front", move |ctx| {
        while let Ok(rx) = ctx.receive() {
            let msg = rx.msg;
            ctx.forward(rx, backend, msg).ok();
        }
    });
    let direct = domain
        .client(host, move |ctx| {
            let t0 = ctx.now();
            ctx.send(
                backend,
                Message::request(RequestCode::Echo),
                Bytes::new(),
                0,
            )
            .unwrap();
            ctx.now() - t0
        })
        .unwrap();
    let forwarded = domain
        .client(host, move |ctx| {
            let t0 = ctx.now();
            ctx.send(front, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .unwrap();
            ctx.now() - t0
        })
        .unwrap();
    // One extra local hop: 385 µs.
    assert_eq!(micros(forwarded) - micros(direct), 385);
}

#[test]
fn move_from_is_costlier_for_remote_senders() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (a, b) = (domain.add_host(), domain.add_host());
    let server = domain.spawn(b, "reader", |ctx| {
        while let Ok(rx) = ctx.receive() {
            let t0 = ctx.now();
            ctx.move_from(&rx).unwrap();
            let cost = ctx.now() - t0;
            let mut m = Message::ok();
            m.set_word32(5, cost.as_micros() as u32);
            ctx.reply(rx, m, Bytes::new()).ok();
        }
    });
    let cost_of = |client_host| {
        let domain = domain.clone();
        domain
            .client(client_host, move |ctx| {
                let r = ctx
                    .send(
                        server,
                        Message::request(RequestCode::Echo),
                        Bytes::from_static(b"0123456789abcdef"),
                        0,
                    )
                    .unwrap();
                r.msg.word32(5)
            })
            .unwrap()
    };
    let remote = cost_of(a);
    let local = cost_of(b);
    assert!(remote > local, "remote {remote} µs vs local {local} µs");
    // The remote fetch is the calibrated 700 µs plus the copy.
    assert!(remote >= 700, "remote fetch {remote} µs");
}

#[test]
fn get_pid_broadcast_costs_more_than_local_hit() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (a, b) = (domain.add_host(), domain.add_host());
    domain.spawn(a, "local-svc", |ctx| {
        ctx.set_pid(ServiceId::TIME_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    domain.spawn(b, "remote-svc", |ctx| {
        ctx.set_pid(ServiceId::PRINT_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    domain.run();
    let (t_local, t_remote) = domain
        .client(a, |ctx| {
            let t0 = ctx.now();
            ctx.get_pid(ServiceId::TIME_SERVER, Scope::Both).unwrap();
            let t1 = ctx.now();
            ctx.get_pid(ServiceId::PRINT_SERVER, Scope::Both).unwrap();
            let t2 = ctx.now();
            (t1 - t0, t2 - t1)
        })
        .unwrap();
    assert!(
        t_remote > t_local * 10,
        "broadcast {t_remote:?} should dwarf local probe {t_local:?}"
    );
}

#[test]
fn killed_server_fails_blocked_sender() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    // A server that receives but never replies.
    let server = domain.spawn(host, "sink", |ctx| {
        let mut held = Vec::new();
        while let Ok(rx) = ctx.receive() {
            held.push(rx);
        }
    });
    let result = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out = std::sync::Arc::clone(&result);
    domain.spawn(host, "victim", move |ctx| {
        let r = ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0);
        *out.lock() = Some(r);
    });
    domain.run(); // server holds the transaction; victim blocked
    domain.kill(server);
    domain.run();
    let got = result.lock().take();
    // Either the kill-path error or the Drop-path error is acceptable; the
    // sender must be unblocked with a failure.
    match got {
        Some(Err(IpcError::ProcessDied)) => {}
        other => panic!("expected ProcessDied, got {other:?}"),
    }
}

#[test]
fn group_send_first_reply_wins_and_costs_multicast() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let hosts: Vec<_> = (0..4).map(|_| domain.add_host()).collect();
    let group = {
        // Create group from a setup process.
        let (tx, rx) = crossbeam::channel::bounded(1);
        domain.spawn(hosts[0], "setup", move |ctx| {
            let _ = tx.send(ctx.create_group());
        });
        domain.run();
        rx.recv().unwrap()
    };
    for (i, &h) in hosts.iter().enumerate().skip(1) {
        let delay = Duration::from_millis(i as u64); // member i replies after i ms
        domain.spawn(h, "member", move |ctx| {
            ctx.join_group(group).unwrap();
            while let Ok(rx) = ctx.receive() {
                ctx.sleep(delay);
                let mut m = Message::ok();
                m.set_word(5, i as u16);
                ctx.reply(rx, m, Bytes::new()).ok();
            }
        });
    }
    domain.run();
    let winner = domain
        .client(hosts[0], move |ctx| {
            let r = ctx
                .send_group(group, Message::request(RequestCode::Echo), Bytes::new())
                .unwrap();
            r.msg.word(5)
        })
        .unwrap();
    // The fastest member (index 1, 1 ms think time) must win.
    assert_eq!(winner, 1);
}

#[test]
fn ten_mbit_network_is_faster_than_three() {
    let time_for = |params: Params1984| {
        let domain = SimDomain::new(params);
        let (a, b) = (domain.add_host(), domain.add_host());
        let server = domain.spawn(b, "echo", echo_server);
        domain
            .client(a, move |ctx| {
                let t0 = ctx.now();
                ctx.send(
                    server,
                    Message::request(RequestCode::Echo),
                    Bytes::from(vec![0u8; 1024]),
                    0,
                )
                .unwrap();
                ctx.now() - t0
            })
            .unwrap()
    };
    assert!(time_for(Params1984::ethernet_10mbit()) < time_for(Params1984::ethernet_3mbit()));
}

#[test]
fn sleep_orders_processes_by_wake_time() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    for (name, delay_ms) in [("slow", 30u64), ("fast", 10), ("mid", 20)] {
        let log = std::sync::Arc::clone(&log);
        domain.spawn(host, name, move |ctx| {
            ctx.sleep(Duration::from_millis(delay_ms));
            log.lock().push(delay_ms);
        });
    }
    domain.run();
    assert_eq!(*log.lock(), vec![10, 20, 30]);
}

#[test]
fn send_under_certain_loss_times_out_with_exact_ladder_cost() {
    // loss_p = 1.0: every remote transmission is lost; the kernel walks
    // its whole retransmission ladder and surfaces Timeout, charging the
    // sender exactly the ladder's give-up cost.
    use vnet::{FaultConfig, RetransmitPolicy};
    let cfg = FaultConfig::lossless(7).with_loss(1.0);
    let domain = SimDomain::with_faults(Params1984::ethernet_3mbit(), cfg);
    let (a, b) = (domain.add_host(), domain.add_host());
    let server = domain.spawn(b, "echo", echo_server);
    let (err, elapsed) = domain
        .client(a, move |ctx| {
            let t0 = ctx.now();
            let err = ctx
                .send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .unwrap_err();
            (err, ctx.now() - t0)
        })
        .unwrap();
    assert_eq!(err, IpcError::Timeout);
    assert_eq!(elapsed, RetransmitPolicy::default().give_up_cost());
    let stats = domain.fault_stats();
    assert_eq!(stats.exhausted, 1);
    assert_eq!(stats.retransmits, 0);
}

#[test]
fn local_sends_are_immune_to_loss() {
    // The fault plane models the network: same-host transactions never
    // traverse it and succeed even at loss_p = 1.0.
    use vnet::FaultConfig;
    let domain = SimDomain::with_faults(
        Params1984::ethernet_3mbit(),
        FaultConfig::lossless(7).with_loss(1.0),
    );
    let host = domain.add_host();
    let server = domain.spawn(host, "echo", echo_server);
    let elapsed = domain
        .client(host, move |ctx| {
            let t0 = ctx.now();
            ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .unwrap();
            ctx.now() - t0
        })
        .unwrap();
    assert_eq!(micros(elapsed), 770);
    assert_eq!(domain.fault_stats().drops, 0);
}

#[test]
fn scheduled_crash_fires_at_its_virtual_time() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    let server = domain.spawn(host, "echo", echo_server);
    let t0 = domain.run();
    domain.schedule_crash(server, t0 + Duration::from_millis(50));
    let (before, after) = domain
        .client(host, move |ctx| {
            // Before the crash time the server answers...
            let before = ctx
                .send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                .is_ok();
            // ...after it, the pid is gone.
            ctx.sleep(Duration::from_millis(100));
            let after = ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0);
            (before, after)
        })
        .unwrap();
    assert!(before, "server must be alive before its crash time");
    assert!(
        matches!(after, Err(IpcError::NoProcess | IpcError::ProcessDied)),
        "server must be dead after its crash time: {after:?}"
    );
}

#[test]
fn group_send_fails_over_when_a_member_crashes_mid_transaction() {
    // Two group members: the fast one receives the multicast and then
    // crashes (at a scheduled virtual time) while holding the transaction;
    // the surviving member's reply must still resolve the sender — the
    // deliver()/dead-target path masks the death (paper §7).
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let hosts: Vec<_> = (0..3).map(|_| domain.add_host()).collect();
    let group = {
        let (tx, rx) = crossbeam::channel::bounded(1);
        domain.spawn(hosts[0], "setup", move |ctx| {
            let _ = tx.send(ctx.create_group());
        });
        domain.run();
        rx.recv().unwrap()
    };
    // Member 1 ("doomed"): replies only after a 1 s think time — it will
    // be crashed long before that while the transaction is outstanding.
    let doomed = domain.spawn(hosts[1], "doomed", move |ctx| {
        ctx.join_group(group).unwrap();
        while let Ok(rx) = ctx.receive() {
            ctx.sleep(Duration::from_secs(1));
            let mut m = Message::ok();
            m.set_word(5, 1);
            ctx.reply(rx, m, Bytes::new()).ok();
        }
    });
    // Member 2 ("survivor"): replies after 50 ms.
    domain.spawn(hosts[2], "survivor", move |ctx| {
        ctx.join_group(group).unwrap();
        while let Ok(rx) = ctx.receive() {
            ctx.sleep(Duration::from_millis(50));
            let mut m = Message::ok();
            m.set_word(5, 2);
            ctx.reply(rx, m, Bytes::new()).ok();
        }
    });
    let t0 = domain.run();
    domain.schedule_crash(doomed, t0 + Duration::from_millis(20));
    let winner = domain
        .client(hosts[0], move |ctx| {
            ctx.send_group(group, Message::request(RequestCode::Echo), Bytes::new())
                .map(|r| r.msg.word(5))
        })
        .unwrap();
    assert_eq!(winner, Ok(2), "the surviving member must answer");
}

#[test]
fn group_send_fails_cleanly_when_every_member_crashes_mid_transaction() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let hosts: Vec<_> = (0..2).map(|_| domain.add_host()).collect();
    let group = {
        let (tx, rx) = crossbeam::channel::bounded(1);
        domain.spawn(hosts[0], "setup", move |ctx| {
            let _ = tx.send(ctx.create_group());
        });
        domain.run();
        rx.recv().unwrap()
    };
    let member = domain.spawn(hosts[1], "member", move |ctx| {
        ctx.join_group(group).unwrap();
        while let Ok(rx) = ctx.receive() {
            ctx.sleep(Duration::from_secs(1));
            ctx.reply(rx, Message::ok(), Bytes::new()).ok();
        }
    });
    let t0 = domain.run();
    domain.schedule_crash(member, t0 + Duration::from_millis(20));
    let res = domain
        .client(hosts[0], move |ctx| {
            ctx.send_group(group, Message::request(RequestCode::Echo), Bytes::new())
                .map(|r| r.msg.word(5))
        })
        .unwrap();
    assert!(res.is_err(), "no member left to answer: {res:?}");
}

#[test]
fn send_to_self_is_rejected() {
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let host = domain.add_host();
    let err = domain
        .client(host, |ctx| {
            ctx.send(
                ctx.my_pid(),
                Message::request(RequestCode::Echo),
                Bytes::new(),
                0,
            )
        })
        .unwrap()
        .unwrap_err();
    assert_eq!(err, IpcError::BadOperation("send to self would deadlock"));
}
