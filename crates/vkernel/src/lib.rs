//! The distributed V kernel substrate (paper §3, §4).
//!
//! The V kernel provides uniform local and network interprocess
//! communication by messages: a synchronous `Send`-`Receive`-`Reply`
//! rendezvous (Figure 1), `Forward`, bulk `MoveTo`/`MoveFrom`, service
//! naming via `SetPid`/`GetPid` (§4.2), and process groups for multicast
//! send (§2.3, §7). Software above the kernel is written identically whether
//! its peers are local or remote — the property the whole naming design
//! rides on.
//!
//! Two interchangeable kernels implement the same [`Ipc`] interface:
//!
//! * [`Domain`] — real OS threads and channels; wall-clock time; used for
//!   stress tests and Criterion benchmarks.
//! * [`SimDomain`] — a deterministic virtual-time kernel charging the
//!   calibrated 1984 hardware costs from [`vnet`]; used to regenerate the
//!   paper's measurements.
//!
//! Servers and client stubs (see the `vservers` and `vruntime` crates) are
//! written once against `&dyn Ipc` and run unchanged on either kernel.
//!
//! # Examples
//!
//! A time server and client on the thread kernel:
//!
//! ```
//! use vkernel::{Domain, Ipc};
//! use vproto::{fields, Message, RequestCode, ReplyCode, Scope, ServiceId};
//! use bytes::Bytes;
//!
//! let domain = Domain::new();
//! let host = domain.add_host();
//! domain.spawn(host, "time", |ctx| {
//!     ctx.set_pid(ServiceId::TIME_SERVER, Scope::Both);
//!     while let Ok(rx) = ctx.receive() {
//!         let mut reply = Message::ok();
//!         reply.set_word32(fields::W_TIME_LO, 42);
//!         ctx.reply(rx, reply, Bytes::new()).ok();
//!     }
//! });
//! let seconds = domain.client(host, |ctx| {
//!     let server = ctx.get_pid(ServiceId::TIME_SERVER, Scope::Both)?;
//!     let reply = ctx
//!         .send(server, Message::request(RequestCode::GetTime), Bytes::new(), 0)
//!         .ok()?;
//!     Some(reply.msg.word32(fields::W_TIME_LO))
//! });
//! assert_eq!(seconds, Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod error;
mod group;
pub mod invariants;
mod registry;
mod sim;
mod thread;

pub use api::{GroupId, Ipc, Received, Reply};
pub use error::IpcError;
pub use invariants::InvariantLedger;
pub use registry::{LookupPath, Registry};
pub use sim::SimDomain;
pub use thread::Domain;
