//! Process groups for multicast send (paper §2.3 and §7).
//!
//! The paper's planned future work replaces `GetPid`/`SetPid`-based service
//! naming with a multicast `Send` to a group of servers that together
//! implement a context. This module provides the group membership table;
//! delivery semantics (first reply unblocks the sender) live in the kernels.

use crate::api::GroupId;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use vproto::Pid;

/// Membership table for process groups.
#[derive(Debug, Default)]
pub struct GroupTable {
    next: AtomicU32,
    groups: RwLock<HashMap<GroupId, BTreeSet<Pid>>>,
}

impl GroupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroupTable {
            next: AtomicU32::new(1),
            groups: RwLock::new(HashMap::new()),
        }
    }

    /// Creates a new empty group and returns its id.
    pub fn create(&self) -> GroupId {
        let id = GroupId(self.next.fetch_add(1, Ordering::Relaxed));
        self.groups.write().insert(id, BTreeSet::new());
        id
    }

    /// Adds `pid` to `group`. Returns `false` if the group does not exist.
    pub fn join(&self, group: GroupId, pid: Pid) -> bool {
        match self.groups.write().get_mut(&group) {
            Some(members) => {
                members.insert(pid);
                true
            }
            None => false,
        }
    }

    /// Removes `pid` from `group`. Returns `false` if the group does not
    /// exist.
    pub fn leave(&self, group: GroupId, pid: Pid) -> bool {
        match self.groups.write().get_mut(&group) {
            Some(members) => {
                members.remove(&pid);
                true
            }
            None => false,
        }
    }

    /// Removes `pid` from every group (process death).
    pub fn remove_everywhere(&self, pid: Pid) {
        for members in self.groups.write().values_mut() {
            members.remove(&pid);
        }
    }

    /// Returns `true` if `pid` belongs to any group. Used by the
    /// shutdown-time invariant checks (a dead process must not remain a
    /// multicast destination).
    pub fn member_anywhere(&self, pid: Pid) -> bool {
        self.groups
            .read()
            .values()
            .any(|members| members.contains(&pid))
    }

    /// Returns the members of `group` in deterministic (pid) order, or
    /// `None` if the group does not exist.
    pub fn members(&self, group: GroupId) -> Option<Vec<Pid>> {
        self.groups
            .read()
            .get(&group)
            .map(|m| m.iter().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproto::LogicalHost;

    fn pid(n: u16) -> Pid {
        Pid::new(LogicalHost::new(1), n)
    }

    #[test]
    fn create_join_leave() {
        let t = GroupTable::new();
        let g = t.create();
        assert!(t.join(g, pid(1)));
        assert!(t.join(g, pid(2)));
        assert_eq!(t.members(g).unwrap(), vec![pid(1), pid(2)]);
        assert!(t.leave(g, pid(1)));
        assert_eq!(t.members(g).unwrap(), vec![pid(2)]);
    }

    #[test]
    fn unknown_group_operations_fail() {
        let t = GroupTable::new();
        assert!(!t.join(GroupId(99), pid(1)));
        assert!(!t.leave(GroupId(99), pid(1)));
        assert!(t.members(GroupId(99)).is_none());
    }

    #[test]
    fn joining_twice_is_idempotent() {
        let t = GroupTable::new();
        let g = t.create();
        t.join(g, pid(1));
        t.join(g, pid(1));
        assert_eq!(t.members(g).unwrap().len(), 1);
    }

    #[test]
    fn death_removes_from_all_groups() {
        let t = GroupTable::new();
        let (a, b) = (t.create(), t.create());
        t.join(a, pid(1));
        t.join(b, pid(1));
        t.join(b, pid(2));
        t.remove_everywhere(pid(1));
        assert!(t.members(a).unwrap().is_empty());
        assert_eq!(t.members(b).unwrap(), vec![pid(2)]);
    }

    #[test]
    fn ids_are_unique() {
        let t = GroupTable::new();
        let a = t.create();
        let b = t.create();
        assert_ne!(a, b);
    }
}
