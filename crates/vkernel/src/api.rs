//! The kernel IPC interface shared by every process, on either kernel
//! (paper §3.1, Figure 1).
//!
//! V interprocess communication is a synchronous rendezvous: a sender
//! `Send`s a 32-byte message and blocks until the receiver `Reply`s. The
//! receiver may `Forward` the message to a third process, in which case it
//! appears as though the sender originally sent to that process. While the
//! sender is blocked, the recipient can read the sender's memory with
//! `MoveFrom` and write it with `MoveTo` — modeled here as the request
//! payload and a bounded reply buffer.

use crate::error::IpcError;
use bytes::Bytes;
use std::fmt;
use std::time::Duration;
use vnet::NetModel;
use vproto::{LogicalHost, Message, Pid, Scope, ServiceId};

/// Identifier of a process group (multicast destination, paper §2.3/§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

/// The outcome of a completed message transaction: the 32-byte reply message
/// plus any data the replier moved into the sender's receive buffer.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The reply message (reply code in word 0).
    pub msg: Message,
    /// Data written via `MoveTo`/reply data, in order.
    pub data: Bytes,
}

/// A received request: the message, the sender, and the (private) reply
/// path.
///
/// `Received` is a *linear* token: every transaction must end in exactly one
/// [`Ipc::reply`] or [`Ipc::forward`]. Dropping it unreplied unblocks the
/// sender with [`IpcError::ProcessDied`] — mirroring what the real kernel
/// does when a receiver vanishes mid-transaction.
pub struct Received {
    /// The blocked sender's pid.
    pub from: Pid,
    /// The request message. Servers may inspect it freely; to rewrite it
    /// (e.g. updating the name-index field before forwarding, paper §5.4)
    /// pass a modified copy to [`Ipc::forward`] or [`Ipc::reply`].
    pub msg: Message,
    pub(crate) payload: Bytes,
    pub(crate) path: PathInner,
}

impl Received {
    /// Length in bytes of the request payload (the sender's segment).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Debug for Received {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Received")
            .field("from", &self.from)
            .field("msg", &self.msg)
            .field("payload_len", &self.payload.len())
            .finish()
    }
}

pub(crate) enum PathInner {
    Thread(crate::thread::ThreadPath),
    Sim(crate::sim::SimPath),
}

/// The kernel interface available to every V process.
///
/// Implemented by the real-thread kernel ([`crate::Domain`]) and the
/// virtual-time kernel ([`crate::SimDomain`]); servers and client stubs are
/// written once against `&dyn Ipc` and run unchanged on both.
///
/// # Examples
///
/// An echo server and a client (the paper's Figure 1 transaction):
///
/// ```
/// use vkernel::{Domain, Ipc};
/// use vproto::{LogicalHost, Message, RequestCode, ReplyCode};
/// use bytes::Bytes;
///
/// let domain = Domain::new();
/// let host = domain.add_host();
/// let server = domain.spawn(host, "echo", |ctx| {
///     while let Ok(rx) = ctx.receive() {
///         let msg = rx.msg;
///         ctx.reply(rx, msg, Bytes::new()).ok();
///     }
/// });
/// let reply = domain.client(host, move |ctx| {
///     ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
/// })?;
/// assert_eq!(reply.msg.request_code(), Some(RequestCode::Echo));
/// # Ok::<(), vkernel::IpcError>(())
/// ```
pub trait Ipc {
    /// Returns the pid of the calling process.
    fn my_pid(&self) -> Pid;

    /// Returns the logical host the calling process runs on.
    fn host(&self) -> LogicalHost;

    /// Sends `msg` (plus `payload`, the sender's readable segment) to `to`
    /// and blocks until a reply arrives. `recv_cap` bounds how many bytes
    /// the replier may move back.
    ///
    /// # Errors
    ///
    /// * [`IpcError::NoProcess`] — `to` names no live process.
    /// * [`IpcError::ProcessDied`] — the receiver died mid-transaction.
    /// * [`IpcError::BufferOverflow`] — the replier exceeded `recv_cap`.
    /// * [`IpcError::Shutdown`] — the domain is shutting down.
    fn send(
        &self,
        to: Pid,
        msg: Message,
        payload: Bytes,
        recv_cap: usize,
    ) -> Result<Reply, IpcError>;

    /// Multicasts `msg` to every member of `group` and blocks until the
    /// *first* reply; later replies are discarded (paper §7's group send).
    /// The sender itself never receives the multicast. Reply data is not
    /// supported on group sends.
    ///
    /// # Errors
    ///
    /// * [`IpcError::NoSuchGroup`] — the group does not exist.
    /// * [`IpcError::NoReply`] — no member replied (all dead or dropped).
    fn send_group(&self, group: GroupId, msg: Message, payload: Bytes) -> Result<Reply, IpcError>;

    /// Blocks until a request arrives.
    ///
    /// # Errors
    ///
    /// * [`IpcError::Killed`] — the process was killed.
    /// * [`IpcError::Shutdown`] — the domain is shutting down.
    fn receive(&self) -> Result<Received, IpcError>;

    /// Non-blocking variant of [`Ipc::receive`]: returns `Ok(None)`
    /// immediately when no request is waiting, instead of blocking.
    ///
    /// Servers use this to drain a burst of already-queued requests (e.g.
    /// to batch resolutions against one table snapshot) before blocking
    /// for the next arrival. The default implementation always reports an
    /// empty mailbox, which is always correct — a kernel without a
    /// non-blocking probe simply never batches. The virtual-time kernel
    /// keeps this default so event schedules (and their hashes) are
    /// identical with or without batching.
    ///
    /// # Errors
    ///
    /// * [`IpcError::Killed`] — the process was killed.
    /// * [`IpcError::Shutdown`] — the domain is shutting down.
    fn try_receive(&self) -> Result<Option<Received>, IpcError> {
        Ok(None)
    }

    /// Completes a transaction: moves `data` into the sender's receive
    /// buffer (after any earlier [`Ipc::move_to`] bytes) and unblocks the
    /// sender with `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::BufferOverflow`] (and delivers the same error to
    /// the sender) if the accumulated data exceeds the sender's capacity.
    fn reply(&self, rx: Received, msg: Message, data: Bytes) -> Result<(), IpcError>;

    /// Forwards the transaction to `to` carrying (a possibly rewritten)
    /// `msg`; the original sender stays blocked and `to` will reply directly
    /// to it, exactly as if the sender had sent there originally (§3.1).
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::NoProcess`] if `to` names no live process; the
    /// blocked sender then receives [`IpcError::ProcessDied`].
    fn forward(&self, rx: Received, to: Pid, msg: Message) -> Result<(), IpcError>;

    /// Reads the sender's segment (`MoveFrom`, §3.1). On the virtual-time
    /// kernel this charges the calibrated transfer cost — cheap locally,
    /// a real network fetch when the sender is remote.
    fn move_from(&self, rx: &Received) -> Result<Bytes, IpcError>;

    /// Appends `data` to the sender's receive buffer (`MoveTo`, §3.1) ahead
    /// of the eventual reply.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::BufferOverflow`] if the buffer would exceed the
    /// sender's declared capacity (the transaction stays open).
    fn move_to(&self, rx: &mut Received, data: &[u8]) -> Result<(), IpcError>;

    /// Registers the calling process as providing `service` within `scope`
    /// (`SetPid`, paper §4.2).
    fn set_pid(&self, service: ServiceId, scope: Scope);

    /// Looks up the pid registered for `service` within `scope` (`GetPid`,
    /// paper §4.2): the local kernel table first, then — if the scope allows
    /// — a broadcast to other kernels.
    fn get_pid(&self, service: ServiceId, scope: Scope) -> Option<Pid>;

    /// Creates a new, empty process group.
    fn create_group(&self) -> GroupId;

    /// Adds the calling process to `group`.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::NoSuchGroup`] if the group does not exist.
    fn join_group(&self, group: GroupId) -> Result<(), IpcError>;

    /// Removes the calling process from `group`.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::NoSuchGroup`] if the group does not exist.
    fn leave_group(&self, group: GroupId) -> Result<(), IpcError>;

    /// Accounts `work` of processing time to the calling process. A no-op
    /// on the real-thread kernel; advances the local virtual clock on the
    /// simulation kernel.
    fn charge(&self, work: Duration);

    /// Sleeps for `d`: wall-clock on the thread kernel, virtual time (with a
    /// scheduling yield) on the simulation kernel.
    fn sleep(&self, d: Duration);

    /// Time elapsed since the domain started (wall or virtual).
    fn now(&self) -> Duration;

    /// The network cost model, when running under the simulation kernel.
    /// Servers use this to charge protocol-specific processing costs.
    fn net(&self) -> Option<NetModel>;
}

/// Convenience helpers layered on [`Ipc`].
impl dyn Ipc + '_ {
    /// Sends with no payload and no receive buffer.
    pub fn send_simple(&self, to: Pid, msg: Message) -> Result<Reply, IpcError> {
        self.send(to, msg, Bytes::new(), 0)
    }

    /// Replies with a bare message and no data.
    pub fn reply_simple(&self, rx: Received, msg: Message) -> Result<(), IpcError> {
        self.reply(rx, msg, Bytes::new())
    }
}
