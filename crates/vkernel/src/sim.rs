//! The virtual-time kernel: a deterministic discrete-event simulation of a V
//! domain on 1984 hardware.
//!
//! Every process is still an OS thread running ordinary blocking code, but a
//! baton-passing scheduler ensures exactly one runs at a time, in increasing
//! virtual-time order. Each process carries a *local clock*; IPC primitives
//! charge the calibrated costs from [`vnet::NetModel`] and deliver messages
//! at the resulting virtual arrival times. Independent client/server pairs
//! therefore overlap in virtual time even though execution is serialized,
//! and repeated runs produce identical timings — which is what lets the
//! `vsim` experiments regenerate the paper's milliseconds.
//!
//! Cost accounting rules (see DESIGN.md §4):
//!
//! * `Send`/`Forward`: one hop (CPU + wire + payload copy), arrival at the
//!   target's kernel; local hops cost CPU only.
//! * `Reply`: one hop priced by the accumulated `MoveTo` data plus reply
//!   data — bulk results ride the reply, packetized.
//! * `MoveFrom`: a memory copy locally; the calibrated short-segment fetch
//!   (or a packetized bulk transfer) when the sender is remote.
//! * `GetPid`: a kernel-table probe locally, a network broadcast otherwise.

use crate::api::{GroupId, Ipc, PathInner, Received, Reply};
use crate::error::IpcError;
use crate::group::GroupTable;
use crate::invariants::{InvariantLedger, TxnKind};
use crate::registry::{LookupPath, Registry};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::{Arc, Weak};
use std::time::Duration;
use vnet::{
    Exhausted, FaultConfig, FaultPlane, FaultStats, NetModel, Params1984, Partition, SimTime,
    Transmit,
};
use vproto::{LogicalHost, Message, Pid, Scope, ServiceId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    BlockedRecv,
    BlockedSend,
}

struct SimEnvelope {
    from: Pid,
    msg: Message,
    payload: Bytes,
    txn_id: u64,
}

struct TxnState {
    sender: Pid,
    cap: usize,
    buf: Vec<u8>,
    outstanding: usize,
    done: bool,
}

struct ProcState {
    status: Status,
    host: LogicalHost,
    local_time: u64,
    mailbox: BTreeMap<(u64, u64), SimEnvelope>,
    resume: Option<Result<Reply, IpcError>>,
    /// Transactions received but not yet replied/forwarded — failed over to
    /// the blocked senders if this process dies while holding them.
    holding: Vec<u64>,
}

struct SimState {
    current: Option<Pid>,
    ready: BinaryHeap<Reverse<(u64, u64, u32)>>,
    procs: HashMap<Pid, ProcState>,
    txns: HashMap<u64, TxnState>,
    hosts: HashSet<LogicalHost>,
    next_host: u16,
    next_local: HashMap<LogicalHost, u16>,
    next_seq: u64,
    next_txn: u64,
    clock_max: u64,
    /// FNV-1a hash over the ordered stream of scheduler events (deliveries,
    /// sender resumptions, and every fault-plane event: retransmissions,
    /// suppressed duplicates, scheduled crashes, timeouts,
    /// partition-severed attempts). Two runs of the same workload must
    /// produce the same hash — the determinism gate `vcheck` enforces this.
    event_hash: u64,
    /// The seeded fault plane; `None` (the default) is a perfectly
    /// reliable network, bit-identical to the pre-fault-plane kernel.
    faults: Option<FaultPlane>,
    /// Scheduled transient crashes, ordered by virtual time: executed at
    /// the next scheduling point not preceded by an earlier ready process.
    crashes: BinaryHeap<Reverse<(u64, u64, u32)>>,
    shutdown: bool,
}

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl SimState {
    fn seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Folds one scheduler event into the domain's event-stream hash.
    fn note_event(&mut self, tag: u64, a: u64, b: u64, c: u64) {
        for word in [tag, a, b, c] {
            for byte in word.to_le_bytes() {
                self.event_hash ^= u64::from(byte);
                self.event_hash = self.event_hash.wrapping_mul(FNV_PRIME);
            }
        }
    }

    /// Picks the ready process with the smallest resume time and makes it
    /// current; clears `current` when nothing is ready.
    fn schedule_next(&mut self, cv: &Condvar) {
        loop {
            match self.ready.pop() {
                Some(Reverse((t, _, pid_raw))) => {
                    let pid = Pid::from_raw(pid_raw);
                    match self.procs.get_mut(&pid) {
                        Some(p) if p.status == Status::Ready => {
                            p.status = Status::Running;
                            p.local_time = p.local_time.max(t);
                            self.clock_max = self.clock_max.max(p.local_time);
                            self.current = Some(pid);
                            cv.notify_all();
                            return;
                        }
                        // Stale entry (process died); keep popping.
                        _ => continue,
                    }
                }
                None => {
                    self.current = None;
                    cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Completes a transaction, waking the blocked sender at `at`.
    fn resume_sender(&mut self, txn_id: u64, result: Result<Reply, IpcError>, at: u64) {
        let sender = match self.txns.get_mut(&txn_id) {
            Some(txn) if !txn.done => {
                txn.done = true;
                txn.sender
            }
            _ => return,
        };
        self.note_event(1, at, u64::from(sender.raw()), txn_id);
        if let Some(p) = self.procs.get_mut(&sender) {
            if p.status == Status::BlockedSend {
                p.resume = Some(result);
                p.status = Status::Ready;
                let t = at.max(p.local_time);
                let seq = self.seq();
                self.ready.push(Reverse((t, seq, sender.raw())));
            }
        }
    }

    /// Delivers an envelope to `to` at virtual time `arrival`; on a dead
    /// target, fails the transaction if no other member can still answer.
    fn deliver(&mut self, to: Pid, env: SimEnvelope, arrival: u64) -> bool {
        let alive = self.procs.contains_key(&to);
        if !alive {
            let txn_id = env.txn_id;
            if let Some(txn) = self.txns.get_mut(&txn_id) {
                txn.outstanding = txn.outstanding.saturating_sub(1);
                if txn.outstanding == 0 && !txn.done {
                    self.resume_sender(txn_id, Err(IpcError::ProcessDied), arrival);
                }
            }
            return false;
        }
        self.note_event(
            2,
            arrival,
            u64::from(env.from.raw()) << 32 | u64::from(to.raw()),
            env.txn_id,
        );
        let seq = self.seq();
        let seq2 = self.seq();
        let p = self.procs.get_mut(&to).expect("checked alive");
        p.mailbox.insert((arrival, seq), env);
        if p.status == Status::BlockedRecv {
            let t = arrival.max(p.local_time);
            p.status = Status::Ready;
            self.ready.push(Reverse((t, seq2, to.raw())));
        }
        true
    }

    fn quiescent(&self) -> bool {
        self.current.is_none() && self.ready.is_empty()
    }

    /// Runs the fault-plane trials for one remote transmission `from → to`
    /// starting at virtual time `at` (partitions are checked per attempt
    /// against that clock). Local hops (and fault-free domains) always
    /// deliver cleanly and consume no randomness.
    fn fault_transmit(
        &mut self,
        local: bool,
        from: LogicalHost,
        to: LogicalHost,
        at: u64,
    ) -> Result<Transmit, Exhausted> {
        if local {
            return Ok(Transmit::default());
        }
        match self.faults.as_mut() {
            Some(plane) => plane.transmit(from, to, SimTime::from_nanos(at)),
            None => Ok(Transmit::default()),
        }
    }

    /// Folds a successful transmission's fault events (retransmissions,
    /// partition-severed attempts, suppressed duplicate) into the event
    /// stream.
    fn note_transmit(&mut self, at: u64, who: Pid, txn_id: u64, trial: Transmit) {
        if trial.retransmits > 0 {
            self.note_event(3, at, u64::from(who.raw()), u64::from(trial.retransmits));
        }
        if trial.duplicate {
            self.note_event(4, at, u64::from(who.raw()), txn_id);
        }
        if trial.partition_drops > 0 {
            self.note_partition(at, who, trial.partition_drops);
        }
    }

    /// Folds partition-severed transmission attempts into the event stream
    /// (tag 8: the deterministic record that a link was cut).
    fn note_partition(&mut self, at: u64, who: Pid, drops: u32) {
        self.note_event(8, at, u64::from(who.raw()), u64::from(drops));
    }

    /// Feeds a round trip measured to destination host `to` into that
    /// destination's adaptive RTT estimator, if the plane is adaptive.
    /// Called under the state lock in scheduler order, so every
    /// estimator's trajectory is deterministic.
    fn observe_rtt(&mut self, to: LogicalHost, rtt: Duration, retransmitted: bool) {
        if let Some(plane) = self.faults.as_mut() {
            plane.observe_rtt(to, rtt, retransmitted);
        }
    }
}

struct SimCore {
    net: NetModel,
    state: Mutex<SimState>,
    cv: Condvar,
    registry: Registry,
    groups: GroupTable,
    ledger: InvariantLedger,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SimCore {
    /// Removes `pid` at virtual time `at`: registrations and group
    /// memberships are dropped, pending transactions fail over to their
    /// blocked senders. Shared by `SimDomain::kill` and scheduled crashes.
    /// The caller holds the state lock; registry/group/ledger locks are
    /// independent and never re-enter the scheduler.
    fn execute_kill(&self, st: &mut SimState, pid: Pid, at: u64) {
        self.registry.unregister_pid(pid);
        self.groups.remove_everywhere(pid);
        self.ledger.on_process_exit(
            pid,
            self.registry.registered_anywhere(pid),
            self.groups.member_anywhere(pid),
        );
        st.clock_max = st.clock_max.max(at);
        st.note_event(5, at, u64::from(pid.raw()), 0);
        if let Some(proc_state) = st.procs.remove(&pid) {
            let pending: Vec<u64> = proc_state
                .mailbox
                .into_values()
                .map(|e| e.txn_id)
                .chain(proc_state.holding)
                .collect();
            for txn_id in pending {
                if let Some(txn) = st.txns.get_mut(&txn_id) {
                    txn.outstanding = txn.outstanding.saturating_sub(1);
                    if txn.outstanding == 0 && !txn.done {
                        st.resume_sender(txn_id, Err(IpcError::ProcessDied), at);
                    }
                }
            }
        }
    }

    /// Executes every scheduled crash that precedes the next ready
    /// process (crashes happen in virtual-time order, like any other
    /// event), then picks the next process to run.
    fn schedule(&self, st: &mut SimState) {
        loop {
            let due = match (st.crashes.peek(), st.ready.peek()) {
                (Some(&Reverse((ct, _, _))), Some(&Reverse((rt, _, _)))) => ct <= rt,
                (Some(_), None) => true,
                _ => false,
            };
            if !due {
                break;
            }
            let Reverse((at, _, pid_raw)) = st.crashes.pop().expect("peeked above");
            self.execute_kill(st, Pid::from_raw(pid_raw), at);
        }
        st.schedule_next(&self.cv);
    }

    fn shutdown_and_join(&self) {
        {
            let mut st = self.state.lock();
            st.shutdown = true;
            self.cv.notify_all();
        }
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
        self.ledger.assert_all_resolved();
    }
}

struct OwnerToken {
    core: Weak<SimCore>,
}

impl Drop for OwnerToken {
    fn drop(&mut self) {
        if let Some(core) = self.core.upgrade() {
            core.shutdown_and_join();
        }
    }
}

pub(crate) struct SimPath {
    core: Weak<SimCore>,
    txn_id: u64,
    sender_host: LogicalHost,
    holder: Pid,
    consumed: bool,
}

impl Drop for SimPath {
    fn drop(&mut self) {
        if self.consumed {
            return;
        }
        if let Some(core) = self.core.upgrade() {
            let mut st = core.state.lock();
            if let Some(p) = st.procs.get_mut(&self.holder) {
                p.holding.retain(|&t| t != self.txn_id);
            }
            if let Some(txn) = st.txns.get_mut(&self.txn_id) {
                txn.outstanding = txn.outstanding.saturating_sub(1);
                if txn.outstanding == 0 && !txn.done {
                    let at = st.clock_max;
                    st.resume_sender(self.txn_id, Err(IpcError::ProcessDied), at);
                }
            }
            core.cv.notify_all();
        }
    }
}

/// A V domain under deterministic virtual time.
///
/// Spawn servers and clients exactly as on [`crate::Domain`]; then call
/// [`SimDomain::run`] to drive the event loop until quiescence (only
/// processes blocked in `Receive` remain). Virtual time persists across
/// `run` calls, so an experiment can interleave setup, measurement, and
/// fault injection.
///
/// # Examples
///
/// Reproduce the paper's §3.1 message transaction (2.56 ms remote):
///
/// ```
/// use vkernel::{SimDomain, Ipc};
/// use vnet::Params1984;
/// use vproto::{Message, RequestCode};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let domain = SimDomain::new(Params1984::ethernet_3mbit());
/// let (a, b) = (domain.add_host(), domain.add_host());
/// let server = domain.spawn(b, "echo", |ctx| {
///     while let Ok(rx) = ctx.receive() {
///         let msg = rx.msg;
///         ctx.reply(rx, msg, Bytes::new()).ok();
///     }
/// });
/// let elapsed = domain
///     .client(a, move |ctx| {
///         let t0 = ctx.now();
///         ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
///             .unwrap();
///         ctx.now() - t0
///     })
///     .unwrap();
/// assert_eq!(elapsed, Duration::from_micros(2560));
/// ```
#[derive(Clone)]
pub struct SimDomain {
    core: Arc<SimCore>,
    _owner: Arc<OwnerToken>,
}

impl SimDomain {
    /// Creates a virtual-time domain with the given hardware parameters
    /// and a perfectly reliable network.
    pub fn new(params: Params1984) -> Self {
        Self::build(params, None)
    }

    /// Creates a virtual-time domain whose remote links run the seeded
    /// fault plane: message loss behind the kernel's bounded
    /// retransmission ladder, duplicate suppression, and delivery jitter.
    /// Local (same-host) IPC stays reliable. Equal seeds with equal
    /// workloads produce equal event hashes.
    pub fn with_faults(params: Params1984, faults: FaultConfig) -> Self {
        Self::build(params, Some(FaultPlane::new(faults)))
    }

    fn build(params: Params1984, faults: Option<FaultPlane>) -> Self {
        let core = Arc::new(SimCore {
            net: NetModel::new(params),
            state: Mutex::new(SimState {
                current: None,
                ready: BinaryHeap::new(),
                procs: HashMap::new(),
                txns: HashMap::new(),
                hosts: HashSet::new(),
                next_host: 0,
                next_local: HashMap::new(),
                next_seq: 0,
                next_txn: 0,
                clock_max: 0,
                event_hash: FNV_OFFSET,
                faults,
                crashes: BinaryHeap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            registry: Registry::new(),
            groups: GroupTable::new(),
            ledger: InvariantLedger::new(),
            threads: Mutex::new(Vec::new()),
        });
        let owner = Arc::new(OwnerToken {
            core: Arc::downgrade(&core),
        });
        SimDomain {
            core,
            _owner: owner,
        }
    }

    /// Adds a logical host (a simulated workstation) to the domain.
    pub fn add_host(&self) -> LogicalHost {
        let mut st = self.core.state.lock();
        st.next_host += 1;
        let host = LogicalHost::new(st.next_host);
        st.hosts.insert(host);
        host
    }

    /// Spawns a V process on `host`; it becomes runnable at the spawner's
    /// virtual time (time zero when spawned from outside the simulation).
    pub fn spawn<F>(&self, host: LogicalHost, name: &str, f: F) -> Pid
    where
        F: FnOnce(&dyn Ipc) + Send + 'static,
    {
        let mut st = self.core.state.lock();
        let counter = st.next_local.entry(host).or_insert(0);
        *counter += 1;
        let pid = Pid::new(host, *counter);
        self.core.ledger.on_pid_alloc(pid);
        st.hosts.insert(host);
        // A process spawned by a running process starts at the spawner's
        // time; one spawned from outside the simulation starts "now" (the
        // high-water clock), never in the past of running servers.
        let spawn_time = st
            .current
            .and_then(|cur| st.procs.get(&cur))
            .map(|p| p.local_time)
            .unwrap_or(st.clock_max);
        st.procs.insert(
            pid,
            ProcState {
                status: Status::Ready,
                host,
                local_time: spawn_time,
                mailbox: BTreeMap::new(),
                resume: None,
                holding: Vec::new(),
            },
        );
        let seq = st.seq();
        st.ready.push(Reverse((spawn_time, seq, pid.raw())));
        drop(st);

        let weak = Arc::downgrade(&self.core);
        let thread_name = format!("vsim-{name}-{pid}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let Some(core) = weak.upgrade() else { return };
                let ctx = SimCtx {
                    core: Arc::clone(&core),
                    pid,
                    host,
                };
                // Wait until scheduled for the first time.
                {
                    let mut st = core.state.lock();
                    while st.current != Some(pid) && !st.shutdown {
                        core.cv.wait(&mut st);
                    }
                    if st.shutdown {
                        return;
                    }
                }
                f(&ctx);
                ctx.exit();
            })
            .expect("spawn sim process thread");
        self.core.threads.lock().push(handle);
        pid
    }

    /// Runs the simulation until quiescence (no runnable process remains)
    /// and returns the high-water virtual clock.
    pub fn run(&self) -> SimTime {
        let mut st = self.core.state.lock();
        loop {
            if st.current.is_none() {
                self.core.schedule(&mut st);
            }
            if st.shutdown || (st.quiescent() && st.crashes.is_empty()) {
                break;
            }
            self.core.cv.wait(&mut st);
        }
        let procs_max = st.procs.values().map(|p| p.local_time).max().unwrap_or(0);
        st.clock_max = st.clock_max.max(procs_max);
        SimTime::from_nanos(st.clock_max)
    }

    /// Spawns `f` as a client on `host`, runs the simulation to quiescence,
    /// and returns `f`'s result (`None` if the client did not complete).
    pub fn client<T, F>(&self, host: LogicalHost, f: F) -> Option<T>
    where
        T: Send + 'static,
        F: FnOnce(&dyn Ipc) -> T + Send + 'static,
    {
        let slot = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        self.spawn(host, "client", move |ctx| {
            *out.lock() = Some(f(ctx));
        });
        self.run();
        let mut guard = slot.lock();
        guard.take()
    }

    /// Kills `pid` immediately: it disappears from the domain, its pending
    /// transactions fail, and its registrations are removed.
    pub fn kill(&self, pid: Pid) {
        let mut st = self.core.state.lock();
        let at = st.clock_max;
        self.core.execute_kill(&mut st, pid, at);
        self.core.cv.notify_all();
    }

    /// Schedules a transient crash: `pid` is killed when virtual time
    /// reaches `at`, interleaved deterministically with ordinary events
    /// (the crash executes at the first scheduling point with no earlier
    /// ready process). Model restart by spawning a supervisor process that
    /// sleeps past `at` and re-runs the server body — its fresh `SetPid`
    /// registration is what clients re-discover by broadcast re-query.
    pub fn schedule_crash(&self, pid: Pid, at: SimTime) {
        let mut st = self.core.state.lock();
        let seq = st.seq();
        st.crashes.push(Reverse((at.as_nanos(), seq, pid.raw())));
        self.core.cv.notify_all();
    }

    /// Schedules a network partition: a directed (or symmetric) host-pair
    /// cut over a virtual-time window, interleaved deterministically with
    /// ordinary events. A domain built without faults gets a lossless
    /// plane holding only the partition schedule, so `schedule_partition`
    /// on a fault-free domain changes nothing but the severed links.
    pub fn schedule_partition(&self, p: Partition) {
        let mut st = self.core.state.lock();
        st.faults
            .get_or_insert_with(|| FaultPlane::new(FaultConfig::lossless(0)))
            .add_partition(p);
    }

    /// The largest smoothed round-trip estimate across all destinations
    /// the adaptive fault plane has sampled (the RTT picture is kept per
    /// destination host; see [`srtt_to`](Self::srtt_to) for one link).
    pub fn srtt(&self) -> Option<Duration> {
        self.core
            .state
            .lock()
            .faults
            .as_ref()
            .and_then(|p| p.rtt_estimators().filter_map(|(_, e)| e.srtt()).max())
    }

    /// The largest per-destination retransmission timeout across all
    /// destinations the adaptive fault plane has sampled.
    pub fn rto(&self) -> Option<Duration> {
        self.core
            .state
            .lock()
            .faults
            .as_ref()
            .and_then(|p| p.rtt_estimators().map(|(_, e)| e.rto()).max())
    }

    /// The smoothed round-trip estimate towards one destination host, if
    /// the adaptive plane has accepted a sample for that destination.
    pub fn srtt_to(&self, to: LogicalHost) -> Option<Duration> {
        self.core
            .state
            .lock()
            .faults
            .as_ref()
            .and_then(|p| p.rtt_to(to).and_then(|e| e.srtt()))
    }

    /// The current retransmission timeout towards one destination host,
    /// if the adaptive plane has state for that destination.
    pub fn rto_to(&self, to: LogicalHost) -> Option<Duration> {
        self.core
            .state
            .lock()
            .faults
            .as_ref()
            .and_then(|p| p.rtt_to(to).map(|e| e.rto()))
    }

    /// The sorted, deduplicated heal times of every partition scheduled on
    /// the fault plane (unhealed cuts contribute nothing). Experiment
    /// wiring uses this with [`notify_at`](Self::notify_at) to trigger an
    /// anti-entropy round as soon as connectivity returns.
    pub fn heal_times(&self) -> Vec<SimTime> {
        let st = self.core.state.lock();
        let mut out: Vec<SimTime> = st
            .faults
            .as_ref()
            .map(|p| {
                p.config()
                    .partitions
                    .iter()
                    .filter_map(|c| c.heal)
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out.dedup();
        out
    }

    /// The sorted, deduplicated *start* times of every partition scheduled
    /// on the fault plane — the mirror of [`heal_times`](Self::heal_times).
    /// Experiment wiring uses this with [`notify_at`](Self::notify_at) to
    /// schedule replica↔replica gossip rounds *inside* the cut window,
    /// when the authority is unreachable and peer reconciliation is the
    /// only anti-entropy left.
    pub fn cut_times(&self) -> Vec<SimTime> {
        let st = self.core.state.lock();
        let mut out: Vec<SimTime> = st
            .faults
            .as_ref()
            .map(|p| p.config().partitions.iter().map(|c| c.start).collect())
            .unwrap_or_default();
        out.sort();
        out.dedup();
        out
    }

    /// Spawns a notifier process on `to`'s host that sleeps until virtual
    /// time `at` and then sends `msg` (no payload) to `to`, ignoring the
    /// outcome. The notification is an ordinary simulated send, so it is
    /// folded into the event hash and priced by the cost model like any
    /// other message. Used to schedule heal-triggered or periodic
    /// anti-entropy rounds without breaking determinism.
    pub fn notify_at(&self, at: SimTime, to: Pid, msg: Message) {
        let host = {
            let st = self.core.state.lock();
            st.procs
                .get(&to)
                .map(|p| p.host)
                .unwrap_or_else(|| to.logical_host())
        };
        self.spawn(host, "notify", move |ctx| {
            let target = Duration::from_nanos(at.as_nanos());
            let now = ctx.now();
            if target > now {
                ctx.sleep(target - now);
            }
            let _ = ctx.send(to, msg, Bytes::new(), 256);
        });
    }

    /// Like [`notify_at`](Self::notify_at), but multicasts `msg` to a
    /// process group from a notifier spawned on `host`.
    pub fn notify_group_at(&self, host: LogicalHost, at: SimTime, group: GroupId, msg: Message) {
        self.spawn(host, "notify-group", move |ctx| {
            let target = Duration::from_nanos(at.as_nanos());
            let now = ctx.now();
            if target > now {
                ctx.sleep(target - now);
            }
            let _ = ctx.send_group(group, msg, Bytes::new());
        });
    }

    /// A snapshot of the fault-plane counters (all zero for a fault-free
    /// domain).
    pub fn fault_stats(&self) -> FaultStats {
        self.core
            .state
            .lock()
            .faults
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// Returns the high-water virtual clock reached so far.
    pub fn virtual_now(&self) -> SimTime {
        SimTime::from_nanos(self.core.state.lock().clock_max)
    }

    /// Returns the FNV-1a hash of the ordered scheduler event stream so
    /// far (every message delivery and sender resumption, with its virtual
    /// time and transaction id).
    ///
    /// Two runs of the same deterministic workload must yield identical
    /// hashes; `vcheck`'s determinism gate runs workloads twice and fails
    /// on divergence.
    pub fn event_hash(&self) -> u64 {
        self.core.state.lock().event_hash
    }

    /// Returns the domain's service registry (for inspection in tests).
    pub fn registry(&self) -> &Registry {
        &self.core.registry
    }

    /// Returns the network cost model used by this domain.
    pub fn net(&self) -> NetModel {
        self.core.net.clone()
    }
}

/// Kernel interface handed to each process on the simulation kernel.
struct SimCtx {
    core: Arc<SimCore>,
    pid: Pid,
    host: LogicalHost,
}

impl SimCtx {
    fn exit(&self) {
        self.core.registry.unregister_pid(self.pid);
        self.core.groups.remove_everywhere(self.pid);
        self.core.ledger.on_process_exit(
            self.pid,
            self.core.registry.registered_anywhere(self.pid),
            self.core.groups.member_anywhere(self.pid),
        );
        let mut st = self.core.state.lock();
        if let Some(proc_state) = st.procs.remove(&self.pid) {
            let at = proc_state.local_time;
            let pending: Vec<u64> = proc_state
                .mailbox
                .into_values()
                .map(|e| e.txn_id)
                .chain(proc_state.holding)
                .collect();
            for txn_id in pending {
                if let Some(txn) = st.txns.get_mut(&txn_id) {
                    txn.outstanding = txn.outstanding.saturating_sub(1);
                    if txn.outstanding == 0 && !txn.done {
                        st.resume_sender(txn_id, Err(IpcError::ProcessDied), at);
                    }
                }
            }
        }
        if st.current == Some(self.pid) {
            self.core.schedule(&mut st);
        }
        self.core.cv.notify_all();
    }

    /// Blocks the calling thread until this process is scheduled again.
    fn wait_scheduled(
        &self,
        st: &mut parking_lot::MutexGuard<'_, SimState>,
    ) -> Result<(), IpcError> {
        while st.current != Some(self.pid) && !st.shutdown {
            self.core.cv.wait(st);
        }
        if st.shutdown {
            Err(IpcError::Shutdown)
        } else {
            Ok(())
        }
    }

    fn my_time(&self, st: &SimState) -> u64 {
        st.procs.get(&self.pid).map(|p| p.local_time).unwrap_or(0)
    }

    fn advance(&self, st: &mut SimState, d: Duration) -> u64 {
        match st.procs.get_mut(&self.pid) {
            Some(p) => {
                p.local_time += d.as_nanos() as u64;
                let t = p.local_time;
                st.clock_max = st.clock_max.max(t);
                t
            }
            // The process was killed out from under us; keep going until the
            // next blocking operation observes it.
            None => st.clock_max,
        }
    }

    fn host_of(&self, st: &SimState, pid: Pid) -> LogicalHost {
        st.procs
            .get(&pid)
            .map(|p| p.host)
            .unwrap_or_else(|| pid.logical_host())
    }
}

impl Ipc for SimCtx {
    fn my_pid(&self) -> Pid {
        self.pid
    }

    fn host(&self) -> LogicalHost {
        self.host
    }

    fn send(
        &self,
        to: Pid,
        msg: Message,
        payload: Bytes,
        recv_cap: usize,
    ) -> Result<Reply, IpcError> {
        if to == self.pid {
            return Err(IpcError::BadOperation("send to self would deadlock"));
        }
        let mut st = self.core.state.lock();
        if st.shutdown {
            return Err(IpcError::Shutdown);
        }
        if !st.procs.contains_key(&to) {
            return Err(IpcError::NoProcess);
        }
        let local = self.host_of(&st, to) == self.host;
        let hop = self.core.net.hop_cost(local, payload.len());

        st.next_txn += 1;
        let txn_id = st.next_txn;
        self.core.ledger.on_send_open(txn_id, TxnKind::Single);
        let t_send = self.my_time(&st);
        let to_host = self.host_of(&st, to);
        let trial = match st.fault_transmit(local, self.host, to_host, t_send) {
            Ok(t) => t,
            Err(e) => {
                // Every transmission of the request was lost — to the wire
                // or to a partition: the sender sat out the whole
                // retransmission ladder and the kernel reports a timeout.
                // A partitioned receiver is alive yet unreachable, but the
                // sender cannot tell (that is the point of the model).
                // Nothing was delivered, so the transaction resolves right
                // here — still exactly once.
                let now = self.advance(&mut st, e.wasted);
                if e.partition_drops > 0 {
                    st.note_partition(now, self.pid, e.partition_drops);
                }
                st.note_event(6, now, u64::from(self.pid.raw()), txn_id);
                self.core.ledger.on_sender_resolved(txn_id);
                return Err(IpcError::Timeout);
            }
        };
        let arrival = self.my_time(&st) + (hop + trial.delay).as_nanos() as u64;
        st.note_transmit(arrival, self.pid, txn_id, trial);
        st.txns.insert(
            txn_id,
            TxnState {
                sender: self.pid,
                cap: recv_cap,
                buf: Vec::new(),
                outstanding: 1,
                done: false,
            },
        );
        let env = SimEnvelope {
            from: self.pid,
            msg,
            payload,
            txn_id,
        };
        st.deliver(to, env, arrival);
        if let Some(p) = st.procs.get_mut(&self.pid) {
            p.status = Status::BlockedSend;
        }
        self.core.schedule(&mut st);
        let waited = self.wait_scheduled(&mut st);
        // The transaction is over for the sender either way — normally, or
        // because the whole domain is shutting down.
        self.core.ledger.on_sender_resolved(txn_id);
        st.txns.remove(&txn_id);
        waited?;
        let result = st
            .procs
            .get_mut(&self.pid)
            .and_then(|p| p.resume.take())
            .unwrap_or(Err(IpcError::ProcessDied));
        if !local && result.is_ok() {
            // A completed remote transaction is a round-trip sample for
            // the adaptive RTT estimator; per Karn's rule a sample from a
            // retransmitted exchange is flagged (and discarded there).
            let rtt = Duration::from_nanos(self.my_time(&st).saturating_sub(t_send));
            st.observe_rtt(
                to_host,
                rtt,
                trial.retransmits > 0 || trial.partition_drops > 0,
            );
        }
        result
    }

    fn send_group(&self, group: GroupId, msg: Message, payload: Bytes) -> Result<Reply, IpcError> {
        let members = self
            .core
            .groups
            .members(group)
            .ok_or(IpcError::NoSuchGroup)?;
        let members: Vec<Pid> = members.into_iter().filter(|&m| m != self.pid).collect();
        if members.is_empty() {
            return Err(IpcError::NoReply);
        }
        let mut st = self.core.state.lock();
        if st.shutdown {
            return Err(IpcError::Shutdown);
        }
        let other_hosts = st.hosts.len().saturating_sub(1);
        let cost = self.core.net.multicast_send_cost(other_hosts);
        let arrival = self.my_time(&st) + cost.as_nanos() as u64;

        st.next_txn += 1;
        let txn_id = st.next_txn;
        self.core.ledger.on_send_open(txn_id, TxnKind::Group);
        st.txns.insert(
            txn_id,
            TxnState {
                sender: self.pid,
                cap: 0,
                buf: Vec::new(),
                outstanding: members.len(),
                done: false,
            },
        );
        let mut delivered = 0usize;
        for member in &members {
            // Multicast is best-effort (one datagram, no retransmission):
            // each remote member's copy is lost independently — to the
            // wire or to a partition; a lost member simply never answers,
            // like a dead one.
            let member_host = self.host_of(&st, *member);
            let local = member_host == self.host;
            let send_at = SimTime::from_nanos(self.my_time(&st));
            let from = self.host;
            let lost = !local
                && st
                    .faults
                    .as_mut()
                    .is_some_and(|plane| !plane.multicast_delivered(from, member_host, send_at));
            if lost {
                st.note_event(7, arrival, u64::from(member.raw()), txn_id);
                if let Some(txn) = st.txns.get_mut(&txn_id) {
                    txn.outstanding = txn.outstanding.saturating_sub(1);
                }
                continue;
            }
            let env = SimEnvelope {
                from: self.pid,
                msg,
                payload: payload.clone(),
                txn_id,
            };
            if st.deliver(*member, env, arrival) {
                delivered += 1;
            }
        }
        if delivered == 0 {
            st.txns.remove(&txn_id);
            self.core.ledger.on_sender_resolved(txn_id);
            return Err(IpcError::NoReply);
        }
        if let Some(p) = st.procs.get_mut(&self.pid) {
            p.status = Status::BlockedSend;
        }
        self.core.schedule(&mut st);
        let waited = self.wait_scheduled(&mut st);
        self.core.ledger.on_sender_resolved(txn_id);
        let result = st
            .procs
            .get_mut(&self.pid)
            .and_then(|p| p.resume.take())
            .unwrap_or(Err(IpcError::NoReply));
        st.txns.remove(&txn_id);
        waited?;
        result.map_err(|e| {
            if e == IpcError::ProcessDied {
                IpcError::NoReply
            } else {
                e
            }
        })
    }

    fn receive(&self) -> Result<Received, IpcError> {
        let mut st = self.core.state.lock();
        loop {
            if st.shutdown {
                return Err(IpcError::Shutdown);
            }
            let popped = {
                let p = st.procs.get_mut(&self.pid).ok_or(IpcError::Killed)?;
                match p.mailbox.first_key_value().map(|(k, _)| *k) {
                    Some(key) => {
                        let env = p.mailbox.remove(&key).expect("key just seen");
                        p.local_time = p.local_time.max(key.0);
                        p.holding.push(env.txn_id);
                        Some(env)
                    }
                    None => None,
                }
            };
            match popped {
                Some(env) => {
                    let sender_host = self.host_of(&st, env.from);
                    st.clock_max = st.clock_max.max(self.my_time(&st));
                    return Ok(Received {
                        from: env.from,
                        msg: env.msg,
                        payload: env.payload,
                        path: PathInner::Sim(SimPath {
                            core: Arc::downgrade(&self.core),
                            txn_id: env.txn_id,
                            sender_host,
                            holder: self.pid,
                            consumed: false,
                        }),
                    });
                }
                None => {
                    if let Some(p) = st.procs.get_mut(&self.pid) {
                        p.status = Status::BlockedRecv;
                    }
                    self.core.schedule(&mut st);
                    self.wait_scheduled(&mut st)?;
                }
            }
        }
    }

    fn reply(&self, rx: Received, msg: Message, data: Bytes) -> Result<(), IpcError> {
        let mut path = match rx.path {
            PathInner::Sim(p) => p,
            PathInner::Thread(_) => {
                return Err(IpcError::BadOperation("thread token on sim kernel"))
            }
        };
        let mut st = self.core.state.lock();
        path.consumed = true;
        let txn_id = path.txn_id;
        self.core.ledger.on_reply(txn_id);
        if let Some(p) = st.procs.get_mut(&self.pid) {
            p.holding.retain(|&t| t != txn_id);
        }
        let (sender, cap, buf_len, done) = match st.txns.get(&txn_id) {
            Some(t) => (t.sender, t.cap, t.buf.len(), t.done),
            None => return Ok(()), // sender gone; discard like the real kernel
        };
        let sender_host = self.host_of(&st, sender);
        let local = sender_host == self.host;
        let total = buf_len + data.len();
        let hop = self.core.net.hop_cost(local, total);
        let t_reply = self.my_time(&st);
        let trial = match st.fault_transmit(local, self.host, sender_host, t_reply) {
            Ok(t) => t,
            Err(e) => {
                // The reply never got through — lost on the wire or severed
                // by a partition (the asymmetric case: the request arrived,
                // the answer cannot): the replier's kernel burned its
                // ladder, and the sender's own retransmissions cannot
                // recover a lost *reply* (the server already answered).
                // Fail the blocked sender with a timeout — exactly one
                // resolution, as the ledger demands.
                let now = self.advance(&mut st, e.wasted);
                if e.partition_drops > 0 {
                    st.note_partition(now, self.pid, e.partition_drops);
                }
                st.note_event(6, now, u64::from(self.pid.raw()), txn_id);
                if let Some(t) = st.txns.get_mut(&txn_id) {
                    t.outstanding = t.outstanding.saturating_sub(1);
                }
                if !done {
                    st.resume_sender(txn_id, Err(IpcError::Timeout), now);
                }
                return Err(IpcError::Timeout);
            }
        };
        let now = self.advance(&mut st, hop + trial.delay);
        st.note_transmit(now, self.pid, txn_id, trial);
        if let Some(t) = st.txns.get_mut(&txn_id) {
            t.outstanding = t.outstanding.saturating_sub(1);
        }
        if done {
            return Ok(()); // group transaction already answered
        }
        let result = if total > cap {
            Err(IpcError::BufferOverflow)
        } else {
            let mut buf = match st.txns.get_mut(&txn_id) {
                Some(t) => std::mem::take(&mut t.buf),
                None => Vec::new(),
            };
            buf.extend_from_slice(&data);
            Ok(Reply {
                msg,
                data: Bytes::from(buf),
            })
        };
        let failed = result.is_err();
        st.resume_sender(txn_id, result, now);
        if failed {
            Err(IpcError::BufferOverflow)
        } else {
            Ok(())
        }
    }

    fn forward(&self, rx: Received, to: Pid, msg: Message) -> Result<(), IpcError> {
        let mut path = match rx.path {
            PathInner::Sim(p) => p,
            PathInner::Thread(_) => {
                return Err(IpcError::BadOperation("thread token on sim kernel"))
            }
        };
        let mut st = self.core.state.lock();
        path.consumed = true;
        let txn_id = path.txn_id;
        self.core.ledger.on_forward(txn_id);
        if let Some(p) = st.procs.get_mut(&self.pid) {
            p.holding.retain(|&t| t != txn_id);
        }
        let to_host = self.host_of(&st, to);
        let local = to_host == self.host;
        let hop = self.core.net.hop_cost(local, rx.payload.len());
        let t_fwd = self.my_time(&st);
        let trial = match st.fault_transmit(local, self.host, to_host, t_fwd) {
            Ok(t) => t,
            Err(e) => {
                // The forwarded request never arrived (lost or severed by a
                // partition); with no other outstanding delivery the
                // blocked sender times out.
                let now = self.advance(&mut st, e.wasted);
                if e.partition_drops > 0 {
                    st.note_partition(now, self.pid, e.partition_drops);
                }
                st.note_event(6, now, u64::from(self.pid.raw()), txn_id);
                if let Some(txn) = st.txns.get_mut(&txn_id) {
                    txn.outstanding = txn.outstanding.saturating_sub(1);
                    if txn.outstanding == 0 && !txn.done {
                        st.resume_sender(txn_id, Err(IpcError::Timeout), now);
                    }
                }
                return Err(IpcError::Timeout);
            }
        };
        let now = self.advance(&mut st, hop + trial.delay);
        st.note_transmit(now, self.pid, txn_id, trial);
        let env = SimEnvelope {
            from: rx.from,
            msg,
            payload: rx.payload,
            txn_id,
        };
        if st.deliver(to, env, now) {
            Ok(())
        } else {
            Err(IpcError::NoProcess)
        }
    }

    fn move_from(&self, rx: &Received) -> Result<Bytes, IpcError> {
        let path = match &rx.path {
            PathInner::Sim(p) => p,
            PathInner::Thread(_) => {
                return Err(IpcError::BadOperation("thread token on sim kernel"))
            }
        };
        let mut st = self.core.state.lock();
        let len = rx.payload.len();
        let cost = if path.sender_host == self.host {
            self.core.net.copy_cost(len)
        } else if len <= self.core.net.params().max_data_per_packet {
            self.core.net.params().t_remote_name_fetch + self.core.net.copy_cost(len)
        } else {
            self.core.net.bulk_cost(false, len)
        };
        self.advance(&mut st, cost);
        Ok(rx.payload.clone())
    }

    fn move_to(&self, rx: &mut Received, data: &[u8]) -> Result<(), IpcError> {
        let path = match &mut rx.path {
            PathInner::Sim(p) => p,
            PathInner::Thread(_) => {
                return Err(IpcError::BadOperation("thread token on sim kernel"))
            }
        };
        let mut st = self.core.state.lock();
        match st.txns.get_mut(&path.txn_id) {
            Some(t) => {
                if t.buf.len() + data.len() > t.cap {
                    return Err(IpcError::BufferOverflow);
                }
                t.buf.extend_from_slice(data);
                Ok(())
            }
            None => Err(IpcError::ProcessDied),
        }
    }

    fn set_pid(&self, service: ServiceId, scope: Scope) {
        self.core.registry.register(service, self.pid, scope);
        let mut st = self.core.state.lock();
        let cost = self.core.net.params().t_getpid_local;
        self.advance(&mut st, cost);
    }

    fn get_pid(&self, service: ServiceId, scope: Scope) -> Option<Pid> {
        let found = self.core.registry.lookup(service, scope, self.host);
        let mut st = self.core.state.lock();
        let params = self.core.net.params().clone();
        let other_hosts = st.hosts.len().saturating_sub(1);
        let broadcast = matches!(found, Some((_, LookupPath::Broadcast)))
            || (found.is_none() && scope.searches_remote());
        let cost = if broadcast {
            params.t_getpid_local + self.core.net.broadcast_query_cost(other_hosts)
        } else {
            params.t_getpid_local
        };
        // A broadcast query is a remote transmission like any other: under
        // the fault plane it can be retransmitted, severed by a partition,
        // or (rarely) time out — in each case the caller sees a miss and
        // must re-query.
        if broadcast {
            let responder = found.map(|(pid, _)| self.host_of(&st, pid));
            let to_host = responder.unwrap_or(self.host);
            let t_query = self.my_time(&st);
            match st.fault_transmit(false, self.host, to_host, t_query) {
                Ok(trial) => {
                    let now = self.advance(&mut st, cost + trial.delay);
                    st.note_transmit(now, self.pid, 0, trial);
                    // The answer travels the reverse direction: under an
                    // asymmetric cut the responder hears the query but its
                    // answer never arrives, so the querier still sees a
                    // miss after sitting out its ladder.
                    if let Some(resp) = responder {
                        let answer_cut = resp != self.host
                            && st.faults.as_ref().is_some_and(|p| {
                                p.severed(resp, self.host, SimTime::from_nanos(now))
                            });
                        if answer_cut {
                            let wait = st
                                .faults
                                .as_ref()
                                .map(|p| p.give_up_cost(resp))
                                .unwrap_or_default();
                            let at = self.advance(&mut st, wait);
                            st.note_event(6, at, u64::from(self.pid.raw()), 0);
                            return None;
                        }
                    }
                }
                Err(e) => {
                    let now = self.advance(&mut st, cost + e.wasted);
                    if e.partition_drops > 0 {
                        st.note_partition(now, self.pid, e.partition_drops);
                    }
                    st.note_event(6, now, u64::from(self.pid.raw()), 0);
                    return None;
                }
            }
        } else {
            self.advance(&mut st, cost);
        }
        found.map(|(pid, _)| pid)
    }

    fn create_group(&self) -> GroupId {
        self.core.groups.create()
    }

    fn join_group(&self, group: GroupId) -> Result<(), IpcError> {
        if self.core.groups.join(group, self.pid) {
            Ok(())
        } else {
            Err(IpcError::NoSuchGroup)
        }
    }

    fn leave_group(&self, group: GroupId) -> Result<(), IpcError> {
        if self.core.groups.leave(group, self.pid) {
            Ok(())
        } else {
            Err(IpcError::NoSuchGroup)
        }
    }

    fn charge(&self, work: Duration) {
        let mut st = self.core.state.lock();
        self.advance(&mut st, work);
    }

    fn sleep(&self, d: Duration) {
        let mut st = self.core.state.lock();
        if st.shutdown {
            return;
        }
        let t = self.advance(&mut st, d);
        if let Some(p) = st.procs.get_mut(&self.pid) {
            p.status = Status::Ready;
        }
        let seq = st.seq();
        st.ready.push(Reverse((t, seq, self.pid.raw())));
        self.core.schedule(&mut st);
        let _ = self.wait_scheduled(&mut st);
    }

    fn now(&self) -> Duration {
        let st = self.core.state.lock();
        Duration::from_nanos(self.my_time(&st))
    }

    fn net(&self) -> Option<NetModel> {
        Some(self.core.net.clone())
    }
}
