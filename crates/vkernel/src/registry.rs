//! The domain-wide service registry behind `SetPid`/`GetPid` (paper §4.2).
//!
//! Conceptually each kernel keeps a local table; a `GetPid` whose scope
//! allows it queries other kernels by broadcast when the local table misses.
//! In this reproduction the tables live in one shared structure, but lookup
//! semantics (and, on the simulation kernel, costs) follow the distributed
//! procedure: local table first, then the remote search.

use parking_lot::RwLock;
use std::collections::HashMap;
use vproto::{LogicalHost, Pid, Scope, ServiceId};

#[derive(Debug, Clone, Copy)]
struct RegEntry {
    pid: Pid,
    scope: Scope,
}

/// How a successful `GetPid` was satisfied — drives cost accounting on the
/// simulation kernel and EXP-8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupPath {
    /// Found in the querying host's own kernel table.
    LocalTable,
    /// Found by broadcasting to the other kernels.
    Broadcast,
}

/// The service-name table (paper §4.2).
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<RegMap>,
}

/// The registry's two views: the shared per-service lists, and a per-host
/// "local kernel table" holding the winning local-serving pid per
/// `(service, host)`. A `GetPid` local hit touches only the local table —
/// one hash probe — instead of re-walking the shared service list the way
/// the broadcast search must.
#[derive(Debug, Default)]
struct RegMap {
    by_service: HashMap<ServiceId, Vec<RegEntry>>,
    local: HashMap<(ServiceId, LogicalHost), Pid>,
}

impl RegMap {
    /// Rebuilds the local-table rows for `service` from its entry list.
    /// Registration-path only; lookups never call this.
    fn reindex_service(&mut self, service: ServiceId) {
        self.local.retain(|&(s, _), _| s != service);
        let Some(list) = self.by_service.get(&service) else {
            return;
        };
        for e in list.iter().filter(|e| e.scope.serves_local()) {
            let host = e.pid.logical_host();
            let slot = self.local.entry((service, host)).or_insert(e.pid);
            if e.pid < *slot {
                *slot = e.pid;
            }
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `pid` as providing `service` within `scope`. A process
    /// re-registering the same service replaces its earlier entry.
    pub fn register(&self, service: ServiceId, pid: Pid, scope: Scope) {
        let mut map = self.entries.write();
        let list = map.by_service.entry(service).or_default();
        if let Some(e) = list.iter_mut().find(|e| e.pid == pid) {
            e.scope = scope;
        } else {
            list.push(RegEntry { pid, scope });
        }
        map.reindex_service(service);
    }

    /// Removes every registration held by `pid` (on process death — the
    /// rebinding situation of paper §4.2).
    pub fn unregister_pid(&self, pid: Pid) {
        let mut map = self.entries.write();
        let mut touched = Vec::new();
        for (&service, list) in map.by_service.iter_mut() {
            let before = list.len();
            list.retain(|e| e.pid != pid);
            if list.len() != before {
                touched.push(service);
            }
        }
        for service in touched {
            map.reindex_service(service);
        }
    }

    /// Returns `true` if `pid` holds any registration, for any service.
    /// Used by the shutdown-time invariant checks (a dead process must not
    /// remain registered).
    pub fn registered_anywhere(&self, pid: Pid) -> bool {
        self.entries
            .read()
            .by_service
            .values()
            .any(|list| list.iter().any(|e| e.pid == pid))
    }

    /// Looks up `service` on behalf of a client on `from`, within `scope`.
    ///
    /// The local kernel table is consulted first (one probe of the per-host
    /// index — a local hit never walks the shared service list); on a miss,
    /// and if the lookup scope permits, other hosts are searched (entries
    /// whose registration scope serves remote clients). Ties break toward
    /// the lowest pid for determinism.
    pub fn lookup(
        &self,
        service: ServiceId,
        scope: Scope,
        from: LogicalHost,
    ) -> Option<(Pid, LookupPath)> {
        let map = self.entries.read();
        if scope.searches_local() {
            if let Some(&pid) = map.local.get(&(service, from)) {
                return Some((pid, LookupPath::LocalTable));
            }
        }
        let list = map.by_service.get(&service)?;
        if scope.searches_remote() {
            let hit = list
                .iter()
                .filter(|e| !e.pid.is_on(from) && e.scope.serves_remote())
                .map(|e| e.pid)
                .min();
            if let Some(pid) = hit {
                return Some((pid, LookupPath::Broadcast));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LogicalHost = LogicalHost::new(1);
    const B: LogicalHost = LogicalHost::new(2);

    fn pid(host: LogicalHost, n: u16) -> Pid {
        Pid::new(host, n)
    }

    #[test]
    fn local_hit_preferred_over_remote() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(A, 1), Scope::Both);
        r.register(ServiceId::FILE_SERVER, pid(B, 2), Scope::Both);
        let (p, path) = r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).unwrap();
        assert_eq!(p, pid(A, 1));
        assert_eq!(path, LookupPath::LocalTable);
    }

    #[test]
    fn remote_found_by_broadcast() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(B, 2), Scope::Both);
        let (p, path) = r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).unwrap();
        assert_eq!(p, pid(B, 2));
        assert_eq!(path, LookupPath::Broadcast);
    }

    #[test]
    fn local_only_registration_invisible_remotely() {
        // Paper §4.2: "simple local servers" vs "public servers".
        let r = Registry::new();
        r.register(ServiceId::CONTEXT_PREFIX, pid(A, 3), Scope::Local);
        assert!(r
            .lookup(ServiceId::CONTEXT_PREFIX, Scope::Both, B)
            .is_none());
        assert!(r
            .lookup(ServiceId::CONTEXT_PREFIX, Scope::Both, A)
            .is_some());
    }

    #[test]
    fn remote_only_registration_invisible_locally() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(A, 3), Scope::Remote);
        assert!(r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).is_none());
        assert_eq!(
            r.lookup(ServiceId::FILE_SERVER, Scope::Both, B).unwrap().0,
            pid(A, 3)
        );
    }

    #[test]
    fn lookup_scope_restricts_search() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(B, 2), Scope::Both);
        // Client insists on a local server: miss.
        assert!(r.lookup(ServiceId::FILE_SERVER, Scope::Local, A).is_none());
        // Client insists on a remote server from B's own host: miss.
        assert!(r.lookup(ServiceId::FILE_SERVER, Scope::Remote, B).is_none());
    }

    #[test]
    fn reregistration_replaces_scope() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(A, 1), Scope::Local);
        r.register(ServiceId::FILE_SERVER, pid(A, 1), Scope::Remote);
        assert!(r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).is_none());
        assert_eq!(
            r.lookup(ServiceId::FILE_SERVER, Scope::Both, B).unwrap().0,
            pid(A, 1)
        );
    }

    #[test]
    fn unregister_pid_removes_all_services() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(A, 1), Scope::Both);
        r.register(ServiceId::TIME_SERVER, pid(A, 1), Scope::Both);
        r.unregister_pid(pid(A, 1));
        assert!(r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).is_none());
        assert!(r.lookup(ServiceId::TIME_SERVER, Scope::Both, A).is_none());
    }

    #[test]
    fn deterministic_tiebreak_by_lowest_pid() {
        let r = Registry::new();
        r.register(ServiceId::FILE_SERVER, pid(B, 9), Scope::Both);
        r.register(ServiceId::FILE_SERVER, pid(B, 2), Scope::Both);
        assert_eq!(
            r.lookup(ServiceId::FILE_SERVER, Scope::Both, A).unwrap().0,
            pid(B, 2)
        );
    }
}
