//! Kernel-level error reporting.

use std::fmt;

/// Errors surfaced by the kernel IPC primitives.
///
/// The V primitives themselves had few failure modes — a blocked `Send`
/// either completes or the kernel discovers the receiver is gone. The
/// variants below cover process death, domain shutdown, and the small number
/// of argument errors the primitives can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpcError {
    /// The destination pid names no live process.
    NoProcess,
    /// The receiver (or forwardee) died while holding the transaction.
    ProcessDied,
    /// A group send completed with no member replying.
    NoReply,
    /// `MoveTo`/reply data exceeded the sender's receive buffer capacity.
    BufferOverflow,
    /// The process was killed (its `Receive` was interrupted).
    Killed,
    /// The domain is shutting down.
    Shutdown,
    /// The group id names no group.
    NoSuchGroup,
    /// The kernel's retransmission ladder was exhausted without the packet
    /// getting through — fault-plane message loss or an active network
    /// partition. The kernel deliberately cannot distinguish a dead host
    /// from an alive-but-unreachable one (the paper's failure model);
    /// degraded-mode resolution above the kernel is what tells them apart.
    Timeout,
    /// The operation is invalid in the current transaction state.
    BadOperation(&'static str),
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::NoProcess => write!(f, "no such process"),
            IpcError::ProcessDied => write!(f, "process died during transaction"),
            IpcError::NoReply => write!(f, "no group member replied"),
            IpcError::BufferOverflow => write!(f, "reply data exceeded receive buffer capacity"),
            IpcError::Killed => write!(f, "process killed"),
            IpcError::Shutdown => write!(f, "domain shut down"),
            IpcError::NoSuchGroup => write!(f, "no such process group"),
            IpcError::Timeout => write!(f, "retransmission budget exhausted"),
            IpcError::BadOperation(what) => write!(f, "invalid operation: {what}"),
        }
    }
}

impl std::error::Error for IpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        for e in [
            IpcError::NoProcess,
            IpcError::ProcessDied,
            IpcError::NoReply,
            IpcError::BufferOverflow,
            IpcError::Killed,
            IpcError::Shutdown,
            IpcError::NoSuchGroup,
            IpcError::Timeout,
            IpcError::BadOperation("x"),
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
            assert_eq!(s, s.to_lowercase());
        }
    }
}
