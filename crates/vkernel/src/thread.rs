//! The real-thread kernel: every V process is an OS thread, IPC is a
//! blocking rendezvous over channels.
//!
//! This kernel gives real parallelism and wall-clock performance (used by
//! the Criterion benches and stress tests). Virtual-time experiments use
//! [`crate::SimDomain`] instead; both implement [`Ipc`], so all servers and
//! stubs run unchanged on either.

use crate::api::{GroupId, Ipc, PathInner, Received, Reply};
use crate::error::IpcError;
use crate::group::GroupTable;
use crate::invariants::{InvariantLedger, TxnKind};
use crate::registry::Registry;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use vnet::NetModel;
use vproto::{LogicalHost, Message, Pid, Scope, ServiceId};

enum MailItem {
    Env(Envelope),
    Poison,
}

struct Envelope {
    from: Pid,
    msg: Message,
    payload: Bytes,
    reply_tx: Sender<Result<Reply, IpcError>>,
    cap: usize,
    prebuf: Vec<u8>,
    /// Transaction id, unique for the domain's lifetime (invariant checks).
    txn: u64,
}

#[derive(Clone)]
struct ProcEntry {
    tx: Sender<MailItem>,
}

struct JoinEntry {
    thread_id: std::thread::ThreadId,
    handle: std::thread::JoinHandle<()>,
}

struct DomainCore {
    processes: RwLock<HashMap<Pid, ProcEntry>>,
    registry: Registry,
    groups: GroupTable,
    alloc: Mutex<Alloc>,
    threads: Mutex<Vec<JoinEntry>>,
    next_txn: AtomicU64,
    /// Debug-build rendezvous invariant checks; shared (strongly) with every
    /// process context so resolutions recorded during teardown still land.
    ledger: Arc<InvariantLedger>,
    start: Instant,
    /// When set, IPC primitives sleep the calibrated 1984 costs in real
    /// time — the thread kernel becomes a wall-clock emulator of the
    /// paper's hardware.
    emulate: Option<NetModel>,
}

impl DomainCore {
    fn poison_all(&self) {
        let entries: Vec<ProcEntry> = self.processes.write().drain().map(|(_, e)| e).collect();
        for e in entries {
            let _ = e.tx.send(MailItem::Poison);
        }
    }

    fn join_all(&self) {
        let me = std::thread::current().id();
        let handles: Vec<JoinEntry> = self.threads.lock().drain(..).collect();
        for entry in handles {
            if entry.thread_id != me {
                let _ = entry.handle.join();
            }
        }
    }
}

impl Drop for DomainCore {
    fn drop(&mut self) {
        self.poison_all();
        self.join_all();
        self.ledger.assert_all_resolved();
    }
}

#[derive(Default)]
struct Alloc {
    next_host: u16,
    next_local: HashMap<LogicalHost, u16>,
}

pub(crate) struct ThreadPath {
    reply_tx: Option<Sender<Result<Reply, IpcError>>>,
    cap: usize,
    buf: Vec<u8>,
    txn: u64,
}

/// A V domain running on real OS threads.
///
/// A domain is a set of logical hosts over which kernel operations are
/// transparent — "basically one V-System installation" (paper §4.1). Create
/// hosts with [`Domain::add_host`], processes with [`Domain::spawn`], and
/// drive request/response work from tests with [`Domain::client`].
///
/// Dropping the last `Domain` handle (process threads hold only weak
/// references) poisons every process and joins their threads; server loops
/// written as `while let Ok(rx) = ctx.receive()` exit cleanly. Call
/// [`Domain::shutdown`] for explicit teardown.
///
/// # Examples
///
/// See [`Ipc`] for a complete echo transaction.
#[derive(Clone)]
pub struct Domain {
    core: Arc<DomainCore>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Domain::build(None)
    }

    /// Creates a domain that **emulates the 1984 hardware in real time**:
    /// every IPC primitive sleeps its calibrated cost, so wall-clock
    /// measurements approximate the paper's milliseconds on the real
    /// (threaded) implementation.
    pub fn emulated_1984(params: vnet::Params1984) -> Self {
        Domain::build(Some(NetModel::new(params)))
    }

    fn build(emulate: Option<NetModel>) -> Self {
        Domain {
            core: Arc::new(DomainCore {
                processes: RwLock::new(HashMap::new()),
                registry: Registry::new(),
                groups: GroupTable::new(),
                alloc: Mutex::new(Alloc::default()),
                threads: Mutex::new(Vec::new()),
                next_txn: AtomicU64::new(0),
                ledger: Arc::new(InvariantLedger::new()),
                start: Instant::now(),
                emulate,
            }),
        }
    }

    /// Adds a logical host to the domain and returns its identifier.
    pub fn add_host(&self) -> LogicalHost {
        let mut alloc = self.core.alloc.lock();
        alloc.next_host += 1;
        LogicalHost::new(alloc.next_host)
    }

    fn alloc_pid(&self, host: LogicalHost) -> Pid {
        let mut alloc = self.core.alloc.lock();
        let counter = alloc.next_local.entry(host).or_insert(0);
        *counter += 1;
        let pid = Pid::new(host, *counter);
        self.core.ledger.on_pid_alloc(pid);
        pid
    }

    /// Spawns a V process on `host` running `f`. The process's kernel
    /// interface is the `&dyn Ipc` passed to the closure.
    pub fn spawn<F>(&self, host: LogicalHost, name: &str, f: F) -> Pid
    where
        F: FnOnce(&dyn Ipc) + Send + 'static,
    {
        let pid = self.alloc_pid(host);
        let (tx, rx) = unbounded();
        self.core.processes.write().insert(pid, ProcEntry { tx });
        let weak = Arc::downgrade(&self.core);
        let ledger = Arc::clone(&self.core.ledger);
        let thread_name = format!("v-{name}-{pid}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let ctx = ProcessCtx {
                    core: weak.clone(),
                    pid,
                    host,
                    mailbox: rx,
                    ledger,
                };
                f(&ctx);
                if let Some(core) = weak.upgrade() {
                    core.processes.write().remove(&pid);
                    core.registry.unregister_pid(pid);
                    core.groups.remove_everywhere(pid);
                    core.ledger.on_process_exit(
                        pid,
                        core.registry.registered_anywhere(pid),
                        core.groups.member_anywhere(pid),
                    );
                }
            })
            .expect("spawn V process thread");
        self.core.threads.lock().push(JoinEntry {
            thread_id: handle.thread().id(),
            handle,
        });
        pid
    }

    /// Runs `f` as a short-lived client process on `host` and returns its
    /// result. Convenient for tests and benchmarks.
    pub fn client<T, F>(&self, host: LogicalHost, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&dyn Ipc) -> T + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        self.spawn(host, "client", move |ctx| {
            let _ = tx.send(f(ctx));
        });
        rx.recv().expect("client process completed")
    }

    /// Kills `pid`: new sends to it fail immediately; the process itself
    /// observes [`IpcError::Killed`] at its next `Receive`. Used to inject
    /// server-crash faults (paper §2.2's consistency discussion, §4.2's
    /// rebinding).
    pub fn kill(&self, pid: Pid) {
        let entry = self.core.processes.write().remove(&pid);
        self.core.registry.unregister_pid(pid);
        self.core.groups.remove_everywhere(pid);
        self.core.ledger.on_process_exit(
            pid,
            self.core.registry.registered_anywhere(pid),
            self.core.groups.member_anywhere(pid),
        );
        if let Some(entry) = entry {
            let _ = entry.tx.send(MailItem::Poison);
        }
    }

    /// Returns the domain's service registry (for inspection in tests).
    pub fn registry(&self) -> &Registry {
        &self.core.registry
    }

    /// Poisons every process and joins all threads. Must not be called from
    /// inside a V process of this domain.
    pub fn shutdown(&self) {
        self.core.poison_all();
        self.core.join_all();
        self.core.ledger.assert_all_resolved();
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::new()
    }
}

/// Kernel interface handed to each process on the thread kernel.
struct ProcessCtx {
    core: Weak<DomainCore>,
    pid: Pid,
    host: LogicalHost,
    mailbox: Receiver<MailItem>,
    /// Strong handle so invariant resolutions recorded while the domain is
    /// tearing down (core no longer upgradable) are not lost.
    ledger: Arc<InvariantLedger>,
}

impl ProcessCtx {
    fn core(&self) -> Result<Arc<DomainCore>, IpcError> {
        self.core.upgrade().ok_or(IpcError::Shutdown)
    }

    fn entry_for(core: &DomainCore, to: Pid) -> Result<ProcEntry, IpcError> {
        core.processes
            .read()
            .get(&to)
            .cloned()
            .ok_or(IpcError::NoProcess)
    }
}

impl Ipc for ProcessCtx {
    fn my_pid(&self) -> Pid {
        self.pid
    }

    fn host(&self) -> LogicalHost {
        self.host
    }

    fn send(
        &self,
        to: Pid,
        msg: Message,
        payload: Bytes,
        recv_cap: usize,
    ) -> Result<Reply, IpcError> {
        let core = self.core()?;
        let entry = Self::entry_for(&core, to)?;
        let txn = core.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        self.ledger.on_send_open(txn, TxnKind::Single);
        let (reply_tx, reply_rx) = bounded(1);
        let env = Envelope {
            from: self.pid,
            msg,
            payload,
            reply_tx,
            cap: recv_cap,
            prebuf: Vec::new(),
            txn,
        };
        if let Some(net) = &core.emulate {
            let local = to.is_on(self.host);
            std::thread::sleep(net.hop_cost(local, env.payload.len()));
        }
        if entry.tx.send(MailItem::Env(env)).is_err() {
            self.ledger.on_sender_resolved(txn);
            return Err(IpcError::NoProcess);
        }
        drop(core);
        let result = match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => Err(IpcError::ProcessDied),
        };
        self.ledger.on_sender_resolved(txn);
        result
    }

    fn send_group(&self, group: GroupId, msg: Message, payload: Bytes) -> Result<Reply, IpcError> {
        let core = self.core()?;
        let members = core.groups.members(group).ok_or(IpcError::NoSuchGroup)?;
        let members: Vec<Pid> = members.into_iter().filter(|&m| m != self.pid).collect();
        if members.is_empty() {
            return Err(IpcError::NoReply);
        }
        let (reply_tx, reply_rx) = bounded(1);
        let txn = core.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        self.ledger.on_send_open(txn, TxnKind::Group);
        let mut delivered = 0usize;
        for member in members {
            if let Ok(entry) = Self::entry_for(&core, member) {
                let env = Envelope {
                    from: self.pid,
                    msg,
                    payload: payload.clone(),
                    reply_tx: reply_tx.clone(),
                    cap: 0,
                    prebuf: Vec::new(),
                    txn,
                };
                if entry.tx.send(MailItem::Env(env)).is_ok() {
                    delivered += 1;
                }
            }
        }
        drop(reply_tx);
        drop(core);
        let result = if delivered == 0 {
            Err(IpcError::NoReply)
        } else {
            match reply_rx.recv() {
                Ok(result) => result,
                Err(_) => Err(IpcError::NoReply),
            }
        };
        self.ledger.on_sender_resolved(txn);
        result
    }

    fn receive(&self) -> Result<Received, IpcError> {
        match self.mailbox.recv() {
            Ok(MailItem::Env(env)) => Ok(Received {
                from: env.from,
                msg: env.msg,
                payload: env.payload,
                path: PathInner::Thread(ThreadPath {
                    reply_tx: Some(env.reply_tx),
                    cap: env.cap,
                    buf: env.prebuf,
                    txn: env.txn,
                }),
            }),
            Ok(MailItem::Poison) => Err(IpcError::Killed),
            Err(_) => Err(IpcError::Shutdown),
        }
    }

    fn try_receive(&self) -> Result<Option<Received>, IpcError> {
        use crossbeam::channel::TryRecvError;
        match self.mailbox.try_recv() {
            Ok(MailItem::Env(env)) => Ok(Some(Received {
                from: env.from,
                msg: env.msg,
                payload: env.payload,
                path: PathInner::Thread(ThreadPath {
                    reply_tx: Some(env.reply_tx),
                    cap: env.cap,
                    buf: env.prebuf,
                    txn: env.txn,
                }),
            })),
            Ok(MailItem::Poison) => Err(IpcError::Killed),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(IpcError::Shutdown),
        }
    }

    fn reply(&self, rx: Received, msg: Message, data: Bytes) -> Result<(), IpcError> {
        if let Ok(core) = self.core() {
            if let Some(net) = &core.emulate {
                let local = rx.from.is_on(self.host);
                let total = match &rx.path {
                    PathInner::Thread(p) => p.buf.len() + data.len(),
                    PathInner::Sim(_) => data.len(),
                };
                std::thread::sleep(net.hop_cost(local, total));
            }
        }
        let mut path = match rx.path {
            PathInner::Thread(p) => p,
            PathInner::Sim(_) => return Err(IpcError::BadOperation("sim token on thread kernel")),
        };
        let tx = path
            .reply_tx
            .take()
            .ok_or(IpcError::BadOperation("transaction already completed"))?;
        let total = path.buf.len() + data.len();
        let result = if total > path.cap {
            Err(IpcError::BufferOverflow)
        } else {
            let mut buf = std::mem::take(&mut path.buf);
            buf.extend_from_slice(&data);
            Ok(Reply {
                msg,
                data: Bytes::from(buf),
            })
        };
        let failed = result.is_err();
        self.ledger.on_reply(path.txn);
        // A full or disconnected channel means a group transaction already
        // answered, or the sender died — the reply is simply discarded, as
        // in the real kernel.
        match tx.try_send(result) {
            Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                if failed {
                    Err(IpcError::BufferOverflow)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn forward(&self, rx: Received, to: Pid, msg: Message) -> Result<(), IpcError> {
        if let Ok(core) = self.core() {
            if let Some(net) = &core.emulate {
                let local = to.is_on(self.host);
                std::thread::sleep(net.hop_cost(local, rx.payload.len()));
            }
        }
        let mut path = match rx.path {
            PathInner::Thread(p) => p,
            PathInner::Sim(_) => return Err(IpcError::BadOperation("sim token on thread kernel")),
        };
        let reply_tx = path
            .reply_tx
            .take()
            .ok_or(IpcError::BadOperation("transaction already completed"))?;
        let core = self.core()?;
        let entry = match Self::entry_for(&core, to) {
            Ok(e) => e,
            Err(e) => {
                // Target is gone: dropping reply_tx disconnects the blocked
                // sender, which observes ProcessDied.
                drop(reply_tx);
                return Err(e);
            }
        };
        self.ledger.on_forward(path.txn);
        let env = Envelope {
            from: rx.from,
            msg,
            payload: rx.payload,
            reply_tx,
            cap: path.cap,
            prebuf: std::mem::take(&mut path.buf),
            txn: path.txn,
        };
        entry
            .tx
            .send(MailItem::Env(env))
            .map_err(|_| IpcError::NoProcess)
    }

    fn move_from(&self, rx: &Received) -> Result<Bytes, IpcError> {
        if let Ok(core) = self.core() {
            if let Some(net) = &core.emulate {
                let len = rx.payload.len();
                let local = rx.from.is_on(self.host);
                let cost = if local {
                    net.copy_cost(len)
                } else if len <= net.params().max_data_per_packet {
                    net.params().t_remote_name_fetch + net.copy_cost(len)
                } else {
                    net.bulk_cost(false, len)
                };
                std::thread::sleep(cost);
            }
        }
        Ok(rx.payload.clone())
    }

    fn move_to(&self, rx: &mut Received, data: &[u8]) -> Result<(), IpcError> {
        let path = match &mut rx.path {
            PathInner::Thread(p) => p,
            PathInner::Sim(_) => return Err(IpcError::BadOperation("sim token on thread kernel")),
        };
        if path.reply_tx.is_none() {
            return Err(IpcError::BadOperation("transaction already completed"));
        }
        if path.buf.len() + data.len() > path.cap {
            return Err(IpcError::BufferOverflow);
        }
        path.buf.extend_from_slice(data);
        Ok(())
    }

    fn set_pid(&self, service: ServiceId, scope: Scope) {
        if let Ok(core) = self.core() {
            core.registry.register(service, self.pid, scope);
        }
    }

    fn get_pid(&self, service: ServiceId, scope: Scope) -> Option<Pid> {
        self.core()
            .ok()?
            .registry
            .lookup(service, scope, self.host)
            .map(|(pid, _)| pid)
    }

    fn create_group(&self) -> GroupId {
        self.core().map(|c| c.groups.create()).unwrap_or(GroupId(0))
    }

    fn join_group(&self, group: GroupId) -> Result<(), IpcError> {
        if self.core()?.groups.join(group, self.pid) {
            Ok(())
        } else {
            Err(IpcError::NoSuchGroup)
        }
    }

    fn leave_group(&self, group: GroupId) -> Result<(), IpcError> {
        if self.core()?.groups.leave(group, self.pid) {
            Ok(())
        } else {
            Err(IpcError::NoSuchGroup)
        }
    }

    fn charge(&self, work: Duration) {
        if let Ok(core) = self.core() {
            if core.emulate.is_some() {
                std::thread::sleep(work);
            }
        }
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn now(&self) -> Duration {
        self.core
            .upgrade()
            .map(|c| c.start.elapsed())
            .unwrap_or_default()
    }

    fn net(&self) -> Option<NetModel> {
        // Present only in 1984-emulation mode, where charge() sleeps — so
        // servers and stubs apply their calibrated processing costs in
        // real time, exactly as on the virtual-time kernel.
        self.core.upgrade().and_then(|c| c.emulate.clone())
    }
}
