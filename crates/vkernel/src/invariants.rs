//! Dynamic checks of the rendezvous state machine (debug builds only).
//!
//! The synchronous `Send`-`Receive`-`Reply` protocol (paper §3.1) has a
//! small number of global invariants that the type system cannot express
//! across threads:
//!
//! * every `Send` opens exactly one transaction, and that transaction is
//!   resolved exactly once — by a `Reply`, by the final `Reply` at the end
//!   of a `Forward` chain, or by a failure delivered to the sender;
//! * no reply path survives past domain shutdown (a leaked path would leave
//!   a sender blocked forever);
//! * a single-destination transaction is answered at most once (group
//!   transactions take the first of many answers by design, §2.3/§7);
//! * pids are never reused while the domain lives — the paper's §4.1 relies
//!   on a delay before pid reuse so that stale pids fail cleanly instead of
//!   naming an unrelated new process;
//! * a dead process holds no registry entries and no group memberships.
//!
//! Both kernels report their transitions to an [`InvariantLedger`]. In
//! release builds every method is an empty inline function; with
//! `debug_assertions` the ledger keeps real state and panics the moment an
//! invariant breaks, naming the transaction or pid involved. The `vcheck`
//! binary drives both kernels through IPC scenarios under this ledger as
//! its dynamic-invariant pass.

#[cfg(debug_assertions)]
use parking_lot::Mutex;
#[cfg(debug_assertions)]
use std::collections::{HashMap, HashSet};
use vproto::Pid;

/// Whether a transaction expects one answer or the first of many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Ordinary `Send` to one process: exactly one answer.
    Single,
    /// Group `Send` (multicast): the first answer wins, later ones are
    /// discarded by the kernel.
    Group,
}

#[cfg(debug_assertions)]
#[derive(Debug)]
struct TxnRecord {
    kind: TxnKind,
    answered: bool,
}

#[cfg(debug_assertions)]
#[derive(Debug, Default)]
struct LedgerState {
    /// Transactions opened by a `Send` and not yet resolved to the sender.
    open: HashMap<u64, TxnRecord>,
    /// Every pid ever allocated by this domain (reuse detection, §4.1).
    pids: HashSet<u32>,
}

/// Debug-build ledger of rendezvous state; see the module docs.
///
/// All methods are no-ops unless the crate is compiled with
/// `debug_assertions`.
#[derive(Debug, Default)]
pub struct InvariantLedger {
    #[cfg(debug_assertions)]
    state: Mutex<LedgerState>,
}

impl InvariantLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        InvariantLedger::default()
    }

    /// Records that a `Send` opened transaction `txn`.
    ///
    /// # Panics
    ///
    /// If `txn` is already open — transaction ids must be unique for the
    /// life of the domain.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_send_open(&self, txn: u64, kind: TxnKind) {
        #[cfg(debug_assertions)]
        {
            let prev = self.state.lock().open.insert(
                txn,
                TxnRecord {
                    kind,
                    answered: false,
                },
            );
            assert!(
                prev.is_none(),
                "invariant violated: transaction id {txn} reused while still open"
            );
        }
    }

    /// Records that a receiver answered transaction `txn` (`Reply`, or the
    /// failure reply the kernel synthesizes).
    ///
    /// A missing transaction is tolerated: the sender may already have been
    /// resolved (it died, or a racing group member answered first and the
    /// sender moved on) — the kernel discards such replies, as the real V
    /// kernel does.
    ///
    /// # Panics
    ///
    /// If a [`TxnKind::Single`] transaction is answered a second time while
    /// the sender is still waiting.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_reply(&self, txn: u64) {
        #[cfg(debug_assertions)]
        {
            if let Some(rec) = self.state.lock().open.get_mut(&txn) {
                assert!(
                    rec.kind == TxnKind::Group || !rec.answered,
                    "invariant violated: transaction {txn} answered twice \
                     (one Send must be matched by exactly one Reply)"
                );
                rec.answered = true;
            }
        }
    }

    /// Records that a receiver forwarded transaction `txn` onward. The
    /// transaction stays open; the eventual answer comes from the new
    /// target.
    ///
    /// # Panics
    ///
    /// If the transaction was already answered — a `Forward` after the
    /// `Reply` would duplicate the rendezvous.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_forward(&self, txn: u64) {
        #[cfg(debug_assertions)]
        {
            if let Some(rec) = self.state.lock().open.get_mut(&txn) {
                assert!(
                    !rec.answered,
                    "invariant violated: transaction {txn} forwarded after being answered"
                );
            }
        }
    }

    /// Records that the blocked sender of `txn` resumed (with a reply or an
    /// error) and the transaction is closed.
    ///
    /// # Panics
    ///
    /// If `txn` is not open — a sender resuming twice, or resuming a
    /// transaction it never opened.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_sender_resolved(&self, txn: u64) {
        #[cfg(debug_assertions)]
        {
            let removed = self.state.lock().open.remove(&txn);
            assert!(
                removed.is_some(),
                "invariant violated: sender resolved transaction {txn} which was not open"
            );
        }
    }

    /// Records the allocation of `pid`.
    ///
    /// # Panics
    ///
    /// If `pid` was ever allocated before in this domain (paper §4.1: pids
    /// must not be reused while stale references may exist).
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_pid_alloc(&self, pid: Pid) {
        #[cfg(debug_assertions)]
        {
            let fresh = self.state.lock().pids.insert(pid.raw());
            assert!(
                fresh,
                "invariant violated: pid {pid} reused (§4.1 pid-reuse delay)"
            );
        }
    }

    /// Records that `pid` exited or was killed, *after* the kernel removed
    /// its registrations and group memberships.
    ///
    /// # Panics
    ///
    /// If the process is still registered as a service or still a member of
    /// any group — the registry and group table would then hand out a dead
    /// pid.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn on_process_exit(&self, pid: Pid, still_registered: bool, still_in_group: bool) {
        #[cfg(debug_assertions)]
        {
            assert!(
                !still_registered,
                "invariant violated: dead process {pid} still has registry entries"
            );
            assert!(
                !still_in_group,
                "invariant violated: dead process {pid} still belongs to a process group"
            );
        }
    }

    /// Number of transactions currently open (0 in release builds).
    pub fn open_transactions(&self) -> usize {
        #[cfg(debug_assertions)]
        {
            self.state.lock().open.len()
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Asserts that every opened transaction has been resolved. Called at
    /// domain shutdown, after all process threads have been joined.
    ///
    /// # Panics
    ///
    /// If any transaction is still open — some sender's reply path leaked.
    pub fn assert_all_resolved(&self) {
        #[cfg(debug_assertions)]
        {
            let st = self.state.lock();
            if !st.open.is_empty() {
                let mut ids: Vec<u64> = st.open.keys().copied().collect();
                ids.sort_unstable();
                panic!(
                    "invariant violated: {} transaction(s) never resolved at shutdown \
                     (leaked reply path): {ids:?}",
                    ids.len()
                );
            }
        }
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use vproto::LogicalHost;

    #[test]
    fn clean_transaction_lifecycle() {
        let l = InvariantLedger::new();
        l.on_send_open(1, TxnKind::Single);
        l.on_reply(1);
        l.on_sender_resolved(1);
        l.assert_all_resolved();
    }

    #[test]
    fn forward_chain_then_reply() {
        let l = InvariantLedger::new();
        l.on_send_open(7, TxnKind::Single);
        l.on_forward(7);
        l.on_forward(7);
        l.on_reply(7);
        l.on_sender_resolved(7);
        l.assert_all_resolved();
    }

    #[test]
    fn group_transaction_tolerates_many_answers() {
        let l = InvariantLedger::new();
        l.on_send_open(3, TxnKind::Group);
        l.on_reply(3);
        l.on_reply(3);
        l.on_sender_resolved(3);
        l.assert_all_resolved();
    }

    #[test]
    #[should_panic(expected = "answered twice")]
    fn double_reply_panics() {
        let l = InvariantLedger::new();
        l.on_send_open(2, TxnKind::Single);
        l.on_reply(2);
        l.on_reply(2);
    }

    #[test]
    #[should_panic(expected = "never resolved")]
    fn unmatched_send_panics_at_shutdown() {
        let l = InvariantLedger::new();
        l.on_send_open(9, TxnKind::Single);
        l.assert_all_resolved();
    }

    #[test]
    #[should_panic(expected = "pid")]
    fn pid_reuse_panics() {
        let l = InvariantLedger::new();
        let pid = Pid::new(LogicalHost::new(1), 1);
        l.on_pid_alloc(pid);
        l.on_pid_alloc(pid);
    }

    #[test]
    #[should_panic(expected = "registry entries")]
    fn exit_while_registered_panics() {
        let l = InvariantLedger::new();
        l.on_process_exit(Pid::new(LogicalHost::new(1), 2), true, false);
    }
}
