//! Property tests for the Jacobson/Karn RTT estimator — the adaptive half
//! of the shared retry machinery.
//!
//! Three laws, each for arbitrary sample streams:
//!
//! * feeding a constant RTT converges SRTT to that RTT (and RTTVAR to 0),
//!   so the adaptive RTO approaches the true round trip;
//! * the RTO never leaves the configured `[min_rto, max_rto]` corridor,
//!   whatever the samples do;
//! * Karn's rule: samples flagged as retransmitted leave the estimator
//!   state bit-identical (they are ambiguous and must be discarded).

use proptest::prelude::*;
use std::time::Duration;
use vnet::{FaultConfig, FaultPlane, RttConfig, RttEstimator};
use vproto::LogicalHost;

fn arb_sample() -> impl Strategy<Value = Duration> {
    // Microseconds to tens of milliseconds — the simulator's RTT range.
    (10u64..50_000).prop_map(Duration::from_micros)
}

proptest! {
    #[test]
    fn constant_rtt_converges_srtt_to_it(
        rtt_us in 100u64..20_000,
        warmup in proptest::collection::vec(arb_sample(), 0..8),
    ) {
        let mut e = RttEstimator::new(RttConfig::default());
        for s in warmup {
            e.observe(s, false);
        }
        let rtt = Duration::from_micros(rtt_us);
        // SRTT's error shrinks by 1/8 per sample: 128 clean samples decay
        // any warmup residue (≤ 50 ms) by (7/8)^128 ≈ 4e-8 — nanoseconds.
        for _ in 0..128 {
            e.observe(rtt, false);
        }
        let srtt = e.srtt().expect("sampled");
        let err = srtt.abs_diff(rtt);
        prop_assert!(err <= Duration::from_micros(2), "srtt {srtt:?} vs rtt {rtt:?}");
        prop_assert!(e.rttvar() <= Duration::from_micros(2), "rttvar {:?}", e.rttvar());
    }

    #[test]
    fn rto_stays_inside_the_configured_corridor(
        samples in proptest::collection::vec((arb_sample(), any::<bool>()), 1..64),
        timeouts in proptest::collection::vec(any::<bool>(), 0..16),
    ) {
        let cfg = RttConfig::default();
        let mut e = RttEstimator::new(cfg);
        prop_assert!(e.rto() >= cfg.min_rto && e.rto() <= cfg.max_rto);
        let mut t = timeouts.into_iter();
        for (s, retransmitted) in samples {
            e.observe(s, retransmitted);
            if t.next() == Some(true) {
                e.on_timeout();
            }
            prop_assert!(
                e.rto() >= cfg.min_rto && e.rto() <= cfg.max_rto,
                "rto {:?} outside [{:?}, {:?}]",
                e.rto(),
                cfg.min_rto,
                cfg.max_rto
            );
            // The backed-off ladder is clamped by the same ceiling.
            for attempt in 1..=6u32 {
                prop_assert!(e.ladder(attempt) <= cfg.max_rto);
            }
        }
    }

    #[test]
    fn karn_discards_retransmitted_samples(
        clean in proptest::collection::vec(arb_sample(), 1..32),
        ambiguous in proptest::collection::vec(arb_sample(), 1..16),
    ) {
        let mut with = RttEstimator::new(RttConfig::default());
        let mut without = RttEstimator::new(RttConfig::default());
        let mut amb = ambiguous.iter().cycle();
        for s in &clean {
            with.observe(*s, false);
            without.observe(*s, false);
            // Interleave ambiguous samples into one estimator only: if
            // Karn's rule holds they change nothing.
            with.observe(*amb.next().expect("cycle"), true);
        }
        prop_assert_eq!(with, without);
    }

    /// Per-destination estimation (asymmetric links): feeding a fault
    /// plane consistently small samples towards one destination and larger
    /// ones towards another must leave the two destinations with diverged
    /// RTOs — and the fast destination's RTO must never be dragged up by
    /// the slow one's samples.
    #[test]
    fn asymmetric_links_converge_to_per_destination_rtos(
        fast_us in 100u64..2_000,
        gap_us in 5_000u64..40_000,
        rounds in 8usize..48,
        interleave in proptest::collection::vec(any::<bool>(), 8..48),
    ) {
        let fast_dst = LogicalHost::new(2);
        let slow_dst = LogicalHost::new(3);
        let mut plane = FaultPlane::new(
            FaultConfig::lossless(1).with_adaptive(RttConfig::default()),
        );
        let fast = Duration::from_micros(fast_us);
        let slow = Duration::from_micros(fast_us + gap_us);
        let mut order = interleave.iter().cycle();
        for _ in 0..rounds {
            // Arbitrary interleaving: per-destination state must not care.
            if *order.next().expect("cycle") {
                plane.observe_rtt(fast_dst, fast, false);
                plane.observe_rtt(slow_dst, slow, false);
            } else {
                plane.observe_rtt(slow_dst, slow, false);
                plane.observe_rtt(fast_dst, fast, false);
            }
        }
        let rto_fast = plane.rtt_to(fast_dst).expect("observed").rto();
        let rto_slow = plane.rtt_to(slow_dst).expect("observed").rto();
        let cfg = RttConfig::default();
        // Unless both hit the same corridor wall, the estimates diverge.
        if rto_slow < cfg.max_rto && rto_fast > cfg.min_rto {
            prop_assert!(
                rto_fast < rto_slow,
                "fast {rto_fast:?} !< slow {rto_slow:?}"
            );
        }
        // The fast destination's RTO is what a lone fast-only estimator
        // would compute: the slow link's samples never bled into it.
        let mut lone = RttEstimator::new(cfg);
        for _ in 0..rounds {
            lone.observe(fast, false);
        }
        prop_assert_eq!(rto_fast, lone.rto());
        prop_assert!(plane.give_up_cost(fast_dst) <= plane.give_up_cost(slow_dst));
    }
}
