//! Virtual time for the discrete-event kernel.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and advances only when the virtual-time
/// kernel charges costs; it never reads the wall clock, which is what makes
/// simulation runs deterministic.
///
/// # Examples
///
/// ```
/// use vnet::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(2);
/// assert_eq!(t.as_duration(), Duration::from_millis(2));
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as a [`Duration`] since simulation start.
    pub const fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns elapsed milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_subtract() {
        let a = SimTime::ZERO + Duration::from_micros(500);
        let b = a + Duration::from_micros(250);
        assert_eq!(b - a, Duration::from_micros(250));
        assert_eq!(b - SimTime::ZERO, Duration::from_micros(750));
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a - b, Duration::ZERO);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_in_millis() {
        let t = SimTime::ZERO + Duration::from_micros(1210);
        assert_eq!(t.to_string(), "1.210ms");
    }
}
