//! The deterministic fault plane: seeded message loss, duplication, and
//! delay jitter for remote links, plus the kernel's bounded retransmission
//! policy.
//!
//! The paper leans on the V kernel's *reliable* `Send`: "the kernel
//! retransmits the request until it receives a reply or decides the
//! receiver has failed" — loss on the wire is hidden from processes behind
//! a bounded retransmit/timeout ladder, and clients recover from server
//! crashes by re-querying (stale context bindings, §2.2/§5.4). This module
//! supplies the missing half of that story for the simulation: every fault
//! decision is drawn from a seeded [SplitMix64] generator, so a fault
//! schedule is a pure function of `(seed, event order)` and two runs of the
//! same workload produce identical drops, duplicates, and jitter — which
//! lets the vcheck determinism gate cover the failure paths too.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::time::Duration;

/// The kernel's bounded retransmission ladder for lost remote packets.
///
/// Attempt `k` (1-based) that goes unanswered costs the sender
/// [`RetransmitPolicy::timeout`]`(k)` of virtual time before the next
/// transmission; after `max_attempts` consecutive losses the kernel gives
/// up and the operation fails with a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Total transmissions allowed per packet (first send + retries).
    pub max_attempts: u32,
    /// Timeout charged for the first unanswered transmission.
    pub base_timeout: Duration,
    /// Multiplier applied to the timeout after each loss (exponential
    /// backoff).
    pub backoff_factor: u32,
    /// Ceiling on any single retransmission timeout.
    pub max_timeout: Duration,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            max_attempts: 5,
            base_timeout: Duration::from_millis(5),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(80),
        }
    }
}

impl RetransmitPolicy {
    /// The timeout charged when transmission `attempt` (1-based) is lost:
    /// `base_timeout * backoff_factor^(attempt-1)`, capped at
    /// `max_timeout`.
    pub fn timeout(&self, attempt: u32) -> Duration {
        let mut t = self.base_timeout;
        for _ in 1..attempt {
            t = t.saturating_mul(self.backoff_factor).min(self.max_timeout);
        }
        t.min(self.max_timeout)
    }

    /// Virtual time spent before the kernel declares a timeout: the sum of
    /// every per-attempt timeout. This bounds how long any single `Send`
    /// can stall on a dead link.
    pub fn give_up_cost(&self) -> Duration {
        (1..=self.max_attempts).map(|k| self.timeout(k)).sum()
    }
}

/// Configuration of the fault plane for one simulated domain.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule. Equal seeds (with equal workloads)
    /// produce equal fault schedules and equal event hashes.
    pub seed: u64,
    /// Probability that a remote transmission is lost.
    pub loss_p: f64,
    /// Probability that a delivered remote packet arrives twice (the
    /// kernel suppresses the duplicate; it still shows up in the event
    /// stream and stats).
    pub dup_p: f64,
    /// Upper bound on uniformly drawn extra delivery delay for remote
    /// packets; `Duration::ZERO` disables jitter.
    pub jitter_max: Duration,
    /// The kernel's retransmission ladder for lost packets.
    pub retransmit: RetransmitPolicy,
}

impl FaultConfig {
    /// A fault plane that injects nothing: useful as a baseline that keeps
    /// the RNG plumbing in place (`p = 0` rows of EXP-11).
    pub fn lossless(seed: u64) -> Self {
        FaultConfig {
            seed,
            loss_p: 0.0,
            dup_p: 0.0,
            jitter_max: Duration::ZERO,
            retransmit: RetransmitPolicy::default(),
        }
    }

    /// Sets the loss probability (builder style).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_p = p;
        self
    }

    /// Sets the duplication probability (builder style).
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the jitter bound (builder style).
    pub fn with_jitter(mut self, max: Duration) -> Self {
        self.jitter_max = max;
        self
    }

    /// Sets the retransmission policy (builder style).
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retransmit = policy;
        self
    }
}

/// Counters describing what the fault plane actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Remote transmissions lost (including the final loss of an exhausted
    /// ladder).
    pub drops: u64,
    /// Kernel retransmissions that eventually delivered the packet.
    pub retransmits: u64,
    /// Packets whose retransmission ladder was exhausted (the operation
    /// timed out).
    pub exhausted: u64,
    /// Duplicate deliveries suppressed by the kernel.
    pub duplicates: u64,
    /// Multicast datagram copies lost (multicast is best-effort: no
    /// retransmission, per-member independent loss).
    pub multicast_drops: u64,
}

/// The outcome of one successfully delivered remote transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Transmit {
    /// Extra virtual delay before arrival: retransmission timeouts for
    /// lost attempts plus drawn jitter.
    pub delay: Duration,
    /// Retransmissions it took to get the packet through.
    pub retransmits: u32,
    /// Whether a duplicate copy also arrived (to be suppressed).
    pub duplicate: bool,
}

/// A seeded fault schedule bound to one simulated domain.
///
/// All draws happen in scheduler order under the domain's state lock, so
/// the schedule is deterministic for a deterministic workload.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng_state: u64,
    stats: FaultStats,
}

impl FaultPlane {
    /// Creates a fault plane from its configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlane {
            rng_state: cfg.seed,
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this plane was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// SplitMix64 — the same generator the vendored proptest uses; chosen
    /// for determinism and statelessness, not cryptography.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 mantissa bits).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial; consumes no randomness when `p` is zero so a
    /// lossless plane draws exactly like no plane at all.
    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Runs the loss/duplication/jitter trials for one remote unicast
    /// transmission. `Ok` carries the extra delay and duplicate flag;
    /// `Err` carries the virtual time wasted before the kernel declared a
    /// timeout (the full ladder was lost).
    pub fn transmit(&mut self) -> Result<Transmit, Duration> {
        let mut waited = Duration::ZERO;
        for attempt in 1..=self.cfg.retransmit.max_attempts {
            if !self.chance(self.cfg.loss_p) {
                let retransmits = attempt - 1;
                self.stats.retransmits += u64::from(retransmits);
                let duplicate = self.chance(self.cfg.dup_p);
                if duplicate {
                    self.stats.duplicates += 1;
                }
                let jitter = if self.cfg.jitter_max > Duration::ZERO {
                    let span = self.cfg.jitter_max.as_nanos() as u64;
                    Duration::from_nanos(self.next_u64() % (span + 1))
                } else {
                    Duration::ZERO
                };
                return Ok(Transmit {
                    delay: waited + jitter,
                    retransmits,
                    duplicate,
                });
            }
            self.stats.drops += 1;
            waited += self.cfg.retransmit.timeout(attempt);
        }
        self.stats.exhausted += 1;
        Err(waited)
    }

    /// One best-effort multicast datagram copy to one remote member:
    /// returns whether it arrives (no retransmission for multicast).
    pub fn multicast_delivered(&mut self) -> bool {
        if self.chance(self.cfg.loss_p) {
            self.stats.multicast_drops += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_ladder_doubles_and_caps() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.timeout(1), Duration::from_millis(5));
        assert_eq!(p.timeout(2), Duration::from_millis(10));
        assert_eq!(p.timeout(3), Duration::from_millis(20));
        assert_eq!(p.timeout(4), Duration::from_millis(40));
        assert_eq!(p.timeout(5), Duration::from_millis(80));
        assert_eq!(p.timeout(6), Duration::from_millis(80)); // capped
        assert_eq!(p.give_up_cost(), Duration::from_millis(155));
    }

    #[test]
    fn lossless_plane_never_delays_or_draws() {
        let mut plane = FaultPlane::new(FaultConfig::lossless(42));
        for _ in 0..100 {
            let t = plane.transmit().expect("lossless");
            assert_eq!(t, Transmit::default());
            assert!(plane.multicast_delivered());
        }
        assert_eq!(plane.stats(), FaultStats::default());
        // `chance(0.0)` consumes no randomness: state untouched.
        assert_eq!(plane.rng_state, 42);
    }

    #[test]
    fn certain_loss_exhausts_the_ladder() {
        let cfg = FaultConfig::lossless(7).with_loss(1.0);
        let mut plane = FaultPlane::new(cfg.clone());
        let wasted = plane.transmit().expect_err("always lost");
        assert_eq!(wasted, cfg.retransmit.give_up_cost());
        let s = plane.stats();
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.drops, u64::from(cfg.retransmit.max_attempts));
        assert_eq!(s.retransmits, 0);
    }

    #[test]
    fn equal_seeds_produce_equal_schedules() {
        let cfg = FaultConfig::lossless(0xDEAD)
            .with_loss(0.3)
            .with_dup(0.2)
            .with_jitter(Duration::from_micros(500));
        let mut a = FaultPlane::new(cfg.clone());
        let mut b = FaultPlane::new(cfg);
        for _ in 0..200 {
            assert_eq!(a.transmit(), b.transmit());
            assert_eq!(a.multicast_delivered(), b.multicast_delivered());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = FaultConfig::lossless(1).with_loss(0.5);
        let mut a = FaultPlane::new(cfg.clone());
        let mut b = FaultPlane::new(FaultConfig { seed: 2, ..cfg });
        let outcomes_a: Vec<_> = (0..64).map(|_| a.transmit().is_ok()).collect();
        let outcomes_b: Vec<_> = (0..64).map(|_| b.transmit().is_ok()).collect();
        assert_ne!(outcomes_a, outcomes_b);
    }

    #[test]
    fn jitter_stays_within_bound() {
        let bound = Duration::from_micros(300);
        let cfg = FaultConfig::lossless(9).with_jitter(bound);
        let mut plane = FaultPlane::new(cfg);
        for _ in 0..500 {
            let t = plane.transmit().expect("no loss configured");
            assert!(t.delay <= bound, "{:?} exceeds bound", t.delay);
        }
    }

    #[test]
    fn retransmits_counted_when_a_loss_recovers() {
        // loss_p = 0.5: over 400 transmissions some must be lost-then-
        // delivered with this seed; pin that the counters line up.
        let cfg = FaultConfig::lossless(0xBEEF).with_loss(0.5);
        let mut plane = FaultPlane::new(cfg);
        let mut ok = 0u64;
        for _ in 0..400 {
            if plane.transmit().is_ok() {
                ok += 1;
            }
        }
        let s = plane.stats();
        assert!(ok > 0);
        assert!(s.retransmits > 0);
        assert_eq!(
            s.drops,
            s.retransmits + s.exhausted * u64::from(RetransmitPolicy::default().max_attempts)
        );
    }
}
