//! The deterministic fault plane: seeded message loss, duplication, and
//! delay jitter for remote links, scheduled network partitions (symmetric
//! or one-way, with heal times), per-direction link overrides, and the
//! kernel's bounded retransmission policy — static ladder or adaptive
//! RTT-estimated ([`RttEstimator`]).
//!
//! The paper leans on the V kernel's *reliable* `Send`: "the kernel
//! retransmits the request until it receives a reply or decides the
//! receiver has failed" — loss on the wire is hidden from processes behind
//! a bounded retransmit/timeout ladder, and clients recover from server
//! crashes by re-querying (stale context bindings, §2.2/§5.4). This module
//! supplies the missing half of that story for the simulation: every fault
//! decision is drawn from a seeded [SplitMix64] generator, so a fault
//! schedule is a pure function of `(seed, event order)` and two runs of the
//! same workload produce identical drops, duplicates, and jitter — which
//! lets the vcheck determinism gate cover the failure paths too.
//!
//! Partitions are the deliberate exception to randomness: a [`Partition`]
//! severs a directed host pair over a virtual-time window *without
//! consuming any randomness*, so the interesting failure the paper's
//! protocol cannot distinguish — a host that is alive yet unreachable —
//! is modelled exactly, and an asymmetric link (A→B cut while B→A
//! delivers) falls out of the same schedule.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::retry::{ExpBackoff, RetryTimer};
use crate::rtt::{RttConfig, RttEstimator};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::time::Duration;
use vproto::LogicalHost;

/// The kernel's bounded retransmission ladder for lost remote packets.
///
/// Attempt `k` (1-based) that goes unanswered costs the sender
/// [`RetransmitPolicy::timeout`]`(k)` of virtual time before the next
/// transmission; after `max_attempts` consecutive losses the kernel gives
/// up and the operation fails with a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Total transmissions allowed per packet (first send + retries).
    pub max_attempts: u32,
    /// Timeout charged for the first unanswered transmission.
    pub base_timeout: Duration,
    /// Multiplier applied to the timeout after each loss (exponential
    /// backoff).
    pub backoff_factor: u32,
    /// Ceiling on any single retransmission timeout.
    pub max_timeout: Duration,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            max_attempts: 5,
            base_timeout: Duration::from_millis(5),
            backoff_factor: 2,
            max_timeout: Duration::from_millis(80),
        }
    }
}

impl RetransmitPolicy {
    /// The ladder this policy climbs, as shared backoff math.
    pub const fn ladder(&self) -> ExpBackoff {
        ExpBackoff::new(self.base_timeout, self.backoff_factor, self.max_timeout)
    }

    /// The timeout charged when transmission `attempt` (1-based) is lost:
    /// `base_timeout * backoff_factor^(attempt-1)`, capped at
    /// `max_timeout`.
    pub fn timeout(&self, attempt: u32) -> Duration {
        self.ladder().nth(attempt)
    }

    /// Virtual time spent before the kernel declares a timeout: the sum of
    /// every per-attempt timeout. This bounds how long any single `Send`
    /// can stall on a dead link.
    pub fn give_up_cost(&self) -> Duration {
        self.ladder().total(self.max_attempts)
    }
}

impl RetryTimer for RetransmitPolicy {
    /// Kernel budget convention: every lost transmission — including the
    /// last — costs its timeout, so `failure_delay(max_attempts)` is still
    /// `Some` and the budget runs out only *after* it.
    fn failure_delay(&self, failed_attempts: u32) -> Option<Duration> {
        (failed_attempts <= self.max_attempts).then(|| self.timeout(failed_attempts))
    }
}

/// A scheduled cut of a directed host pair: from `start` until `heal`
/// (forever if `None`), transmissions `from → to` are dropped — and
/// `to → from` too when `symmetric`. No randomness is involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Source side of the severed direction.
    pub from: LogicalHost,
    /// Destination side of the severed direction.
    pub to: LogicalHost,
    /// Virtual time the cut begins (inclusive).
    pub start: SimTime,
    /// Virtual time the cut heals (exclusive); `None` never heals.
    pub heal: Option<SimTime>,
    /// Whether the reverse direction is severed too.
    pub symmetric: bool,
}

impl Partition {
    /// A symmetric partition: neither direction delivers during the window.
    pub const fn between(
        a: LogicalHost,
        b: LogicalHost,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> Self {
        Partition {
            from: a,
            to: b,
            start,
            heal,
            symmetric: true,
        }
    }

    /// An asymmetric link fault: only `from → to` is severed; the reverse
    /// direction keeps delivering.
    pub const fn one_way(
        from: LogicalHost,
        to: LogicalHost,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> Self {
        Partition {
            from,
            to,
            start,
            heal,
            symmetric: false,
        }
    }

    /// Whether this partition severs a `from → to` transmission at `at`.
    pub fn cuts(&self, from: LogicalHost, to: LogicalHost, at: SimTime) -> bool {
        let active = at >= self.start && self.heal.is_none_or(|h| at < h);
        let forward = self.from == from && self.to == to;
        let reverse = self.symmetric && self.from == to && self.to == from;
        active && (forward || reverse)
    }
}

/// Per-direction probabilistic overrides: faults for the directed link
/// `from → to` that differ from the plane-wide defaults (e.g. a noisy
/// uplink with a clean downlink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Source host of the overridden direction.
    pub from: LogicalHost,
    /// Destination host of the overridden direction.
    pub to: LogicalHost,
    /// Loss probability on this direction.
    pub loss_p: f64,
    /// Duplication probability on this direction.
    pub dup_p: f64,
    /// Jitter bound on this direction.
    pub jitter_max: Duration,
}

/// Configuration of the fault plane for one simulated domain.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule. Equal seeds (with equal workloads)
    /// produce equal fault schedules and equal event hashes.
    pub seed: u64,
    /// Probability that a remote transmission is lost.
    pub loss_p: f64,
    /// Probability that a delivered remote packet arrives twice (the
    /// kernel suppresses the duplicate; it still shows up in the event
    /// stream and stats).
    pub dup_p: f64,
    /// Upper bound on uniformly drawn extra delivery delay for remote
    /// packets; `Duration::ZERO` disables jitter.
    pub jitter_max: Duration,
    /// The kernel's retransmission ladder for lost packets.
    pub retransmit: RetransmitPolicy,
    /// Scheduled partitions (symmetric or one-way host-pair cuts).
    pub partitions: Vec<Partition>,
    /// Per-direction overrides of the probabilistic fault parameters.
    pub links: Vec<LinkFaults>,
    /// When set, the retransmission timeouts come from an adaptive
    /// SRTT/RTTVAR estimator (fed by the kernel's measured round trips)
    /// instead of the static ladder; `max_attempts` still bounds the
    /// budget.
    pub adaptive: Option<RttConfig>,
}

impl FaultConfig {
    /// A fault plane that injects nothing: useful as a baseline that keeps
    /// the RNG plumbing in place (`p = 0` rows of EXP-11).
    pub fn lossless(seed: u64) -> Self {
        FaultConfig {
            seed,
            loss_p: 0.0,
            dup_p: 0.0,
            jitter_max: Duration::ZERO,
            retransmit: RetransmitPolicy::default(),
            partitions: Vec::new(),
            links: Vec::new(),
            adaptive: None,
        }
    }

    /// Sets the loss probability (builder style).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_p = p;
        self
    }

    /// Sets the duplication probability (builder style).
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the jitter bound (builder style).
    pub fn with_jitter(mut self, max: Duration) -> Self {
        self.jitter_max = max;
        self
    }

    /// Sets the retransmission policy (builder style).
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retransmit = policy;
        self
    }

    /// Adds a scheduled partition (builder style).
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Adds a per-direction link override (builder style).
    pub fn with_link(mut self, l: LinkFaults) -> Self {
        self.links.push(l);
        self
    }

    /// Drives retransmission timeouts from an adaptive RTT estimator
    /// (builder style).
    pub fn with_adaptive(mut self, cfg: RttConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }
}

/// Counters describing what the fault plane actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Remote transmissions lost probabilistically (including the final
    /// loss of an exhausted ladder).
    pub drops: u64,
    /// Remote transmissions severed by an active partition (no randomness
    /// consumed).
    pub partition_drops: u64,
    /// Kernel retransmissions of packets that eventually delivered —
    /// counting attempts lost to probabilistic drops *and* to partitions
    /// (a ladder can straddle a heal).
    pub retransmits: u64,
    /// Packets whose retransmission ladder was exhausted (the operation
    /// timed out).
    pub exhausted: u64,
    /// Duplicate deliveries suppressed by the kernel.
    pub duplicates: u64,
    /// Multicast datagram copies lost (best-effort: no retransmission,
    /// per-member independent loss; partition cuts count here too).
    pub multicast_drops: u64,
}

/// The outcome of one successfully delivered remote transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Transmit {
    /// Extra virtual delay before arrival: retransmission timeouts for
    /// lost attempts plus drawn jitter.
    pub delay: Duration,
    /// Retransmissions it took to get the packet through.
    pub retransmits: u32,
    /// Whether a duplicate copy also arrived (to be suppressed).
    pub duplicate: bool,
    /// How many of the lost attempts were severed by a partition (the
    /// rest were probabilistic losses).
    pub partition_drops: u32,
}

/// The outcome of a transmission whose retransmission ladder was
/// exhausted: the kernel declares a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Exhausted {
    /// Virtual time wasted climbing the full ladder.
    pub wasted: Duration,
    /// How many of the lost attempts were severed by a partition.
    pub partition_drops: u32,
}

/// A seeded fault schedule bound to one simulated domain.
///
/// All draws happen in scheduler order under the domain's state lock, so
/// the schedule is deterministic for a deterministic workload.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng_state: u64,
    stats: FaultStats,
    /// Adaptive RTT estimators, keyed by *destination* logical host so
    /// asymmetric links converge to per-destination RTOs. Populated lazily
    /// (first sample or first exhaustion towards a destination); always
    /// empty on a static plane.
    ests: BTreeMap<LogicalHost, RttEstimator>,
}

impl FaultPlane {
    /// Creates a fault plane from its configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlane {
            rng_state: cfg.seed,
            ests: BTreeMap::new(),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this plane was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The adaptive RTT estimator for destination `to`, when the plane is
    /// adaptive and has observed that destination.
    pub fn rtt_to(&self, to: LogicalHost) -> Option<&RttEstimator> {
        self.ests.get(&to)
    }

    /// All per-destination estimators, for aggregate reporting.
    pub fn rtt_estimators(&self) -> impl Iterator<Item = (LogicalHost, &RttEstimator)> {
        self.ests.iter().map(|(h, e)| (*h, e))
    }

    /// Injects a partition into the schedule at runtime (experiments
    /// compute cut/heal times only after boot).
    pub fn add_partition(&mut self, p: Partition) {
        self.cfg.partitions.push(p);
    }

    /// Whether any scheduled partition severs `from → to` at `at`.
    pub fn severed(&self, from: LogicalHost, to: LogicalHost, at: SimTime) -> bool {
        self.cfg.partitions.iter().any(|p| p.cuts(from, to, at))
    }

    /// Feeds a round trip measured *to destination `to`* into that
    /// destination's adaptive estimator (no-op on a static plane).
    /// `retransmitted` applies Karn's rule.
    pub fn observe_rtt(&mut self, to: LogicalHost, rtt: Duration, retransmitted: bool) {
        let Some(rc) = self.cfg.adaptive else {
            return;
        };
        self.ests
            .entry(to)
            .or_insert_with(|| RttEstimator::new(rc))
            .observe(rtt, retransmitted);
    }

    /// SplitMix64 — the same generator the vendored proptest uses; chosen
    /// for determinism and statelessness, not cryptography.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 mantissa bits).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial; consumes no randomness when `p` is zero so a
    /// lossless plane draws exactly like no plane at all.
    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// The probabilistic parameters governing the directed link
    /// `from → to`: a [`LinkFaults`] override if one matches, else the
    /// plane-wide defaults.
    fn link_params(&self, from: LogicalHost, to: LogicalHost) -> (f64, f64, Duration) {
        match self.cfg.links.iter().find(|l| l.from == from && l.to == to) {
            Some(l) => (l.loss_p, l.dup_p, l.jitter_max),
            None => (self.cfg.loss_p, self.cfg.dup_p, self.cfg.jitter_max),
        }
    }

    /// The timeout the kernel charges for lost transmission `attempt`
    /// towards `to`: the destination's adaptive backed-off RTO when
    /// configured (an unobserved destination uses a fresh estimator's
    /// initial RTO), else the static ladder.
    fn attempt_timeout(&self, to: LogicalHost, attempt: u32) -> Duration {
        match self.cfg.adaptive {
            Some(rc) => match self.ests.get(&to) {
                Some(est) => est.ladder(attempt),
                None => RttEstimator::new(rc).ladder(attempt),
            },
            None => self.cfg.retransmit.timeout(attempt),
        }
    }

    /// Virtual time an exhausted ladder towards `to` costs right now
    /// (adaptive planes change this per destination as estimates move).
    pub fn give_up_cost(&self, to: LogicalHost) -> Duration {
        (1..=self.cfg.retransmit.max_attempts)
            .map(|k| self.attempt_timeout(to, k))
            .sum()
    }

    /// Runs one remote unicast transmission `from → to` starting at
    /// virtual time `at`: each attempt is first checked against the
    /// partition schedule (at the attempt's own start time, so a ladder
    /// can ride through a heal), then against the link's probabilistic
    /// loss. `Ok` carries the extra delay, duplicate flag, and how many
    /// attempts a partition severed; `Err` carries the virtual time
    /// wasted before the kernel declared a timeout.
    pub fn transmit(
        &mut self,
        from: LogicalHost,
        to: LogicalHost,
        at: SimTime,
    ) -> Result<Transmit, Exhausted> {
        let (loss_p, dup_p, jitter_max) = self.link_params(from, to);
        let mut waited = Duration::ZERO;
        let mut partition_drops = 0u32;
        for attempt in 1..=self.cfg.retransmit.max_attempts {
            if self.severed(from, to, at + waited) {
                partition_drops += 1;
                self.stats.partition_drops += 1;
            } else if !self.chance(loss_p) {
                let retransmits = attempt - 1;
                self.stats.retransmits += u64::from(retransmits);
                let duplicate = self.chance(dup_p);
                if duplicate {
                    self.stats.duplicates += 1;
                }
                let jitter = if jitter_max > Duration::ZERO {
                    let span = jitter_max.as_nanos() as u64;
                    Duration::from_nanos(self.next_u64() % (span + 1))
                } else {
                    Duration::ZERO
                };
                return Ok(Transmit {
                    delay: waited + jitter,
                    retransmits,
                    duplicate,
                    partition_drops,
                });
            } else {
                self.stats.drops += 1;
            }
            waited += self.attempt_timeout(to, attempt);
        }
        self.stats.exhausted += 1;
        if let Some(rc) = self.cfg.adaptive {
            self.ests
                .entry(to)
                .or_insert_with(|| RttEstimator::new(rc))
                .on_timeout();
        }
        Err(Exhausted {
            wasted: waited,
            partition_drops,
        })
    }

    /// One best-effort multicast datagram copy to one remote member:
    /// returns whether it arrives (no retransmission for multicast; an
    /// active partition severs the copy without consuming randomness).
    pub fn multicast_delivered(&mut self, from: LogicalHost, to: LogicalHost, at: SimTime) -> bool {
        if self.severed(from, to, at) {
            self.stats.multicast_drops += 1;
            return false;
        }
        let (loss_p, _, _) = self.link_params(from, to);
        if self.chance(loss_p) {
            self.stats.multicast_drops += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LogicalHost = LogicalHost::new(1);
    const B: LogicalHost = LogicalHost::new(2);

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn timeout_ladder_doubles_and_caps() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.timeout(1), Duration::from_millis(5));
        assert_eq!(p.timeout(2), Duration::from_millis(10));
        assert_eq!(p.timeout(3), Duration::from_millis(20));
        assert_eq!(p.timeout(4), Duration::from_millis(40));
        assert_eq!(p.timeout(5), Duration::from_millis(80));
        assert_eq!(p.timeout(6), Duration::from_millis(80)); // capped
        assert_eq!(p.give_up_cost(), Duration::from_millis(155));
    }

    #[test]
    fn kernel_budget_charges_the_final_loss_too() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.failure_delay(5), Some(Duration::from_millis(80)));
        assert_eq!(p.failure_delay(6), None);
    }

    #[test]
    fn lossless_plane_never_delays_or_draws() {
        let mut plane = FaultPlane::new(FaultConfig::lossless(42));
        for _ in 0..100 {
            let t = plane.transmit(A, B, SimTime::ZERO).expect("lossless");
            assert_eq!(t, Transmit::default());
            assert!(plane.multicast_delivered(A, B, SimTime::ZERO));
        }
        assert_eq!(plane.stats(), FaultStats::default());
        // `chance(0.0)` consumes no randomness: state untouched.
        assert_eq!(plane.rng_state, 42);
    }

    #[test]
    fn certain_loss_exhausts_the_ladder() {
        let cfg = FaultConfig::lossless(7).with_loss(1.0);
        let mut plane = FaultPlane::new(cfg.clone());
        let e = plane
            .transmit(A, B, SimTime::ZERO)
            .expect_err("always lost");
        assert_eq!(e.wasted, cfg.retransmit.give_up_cost());
        assert_eq!(e.partition_drops, 0);
        let s = plane.stats();
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.drops, u64::from(cfg.retransmit.max_attempts));
        assert_eq!(s.retransmits, 0);
    }

    #[test]
    fn equal_seeds_produce_equal_schedules() {
        let cfg = FaultConfig::lossless(0xDEAD)
            .with_loss(0.3)
            .with_dup(0.2)
            .with_jitter(Duration::from_micros(500));
        let mut a = FaultPlane::new(cfg.clone());
        let mut b = FaultPlane::new(cfg);
        for _ in 0..200 {
            assert_eq!(
                a.transmit(A, B, SimTime::ZERO),
                b.transmit(A, B, SimTime::ZERO)
            );
            assert_eq!(
                a.multicast_delivered(A, B, SimTime::ZERO),
                b.multicast_delivered(A, B, SimTime::ZERO)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = FaultConfig::lossless(1).with_loss(0.5);
        let mut a = FaultPlane::new(cfg.clone());
        let mut b = FaultPlane::new(FaultConfig { seed: 2, ..cfg });
        let outcomes_a: Vec<_> = (0..64)
            .map(|_| a.transmit(A, B, SimTime::ZERO).is_ok())
            .collect();
        let outcomes_b: Vec<_> = (0..64)
            .map(|_| b.transmit(A, B, SimTime::ZERO).is_ok())
            .collect();
        assert_ne!(outcomes_a, outcomes_b);
    }

    #[test]
    fn jitter_stays_within_bound() {
        let bound = Duration::from_micros(300);
        let cfg = FaultConfig::lossless(9).with_jitter(bound);
        let mut plane = FaultPlane::new(cfg);
        for _ in 0..500 {
            let t = plane
                .transmit(A, B, SimTime::ZERO)
                .expect("no loss configured");
            assert!(t.delay <= bound, "{:?} exceeds bound", t.delay);
        }
    }

    #[test]
    fn retransmits_counted_when_a_loss_recovers() {
        // loss_p = 0.5: over 400 transmissions some must be lost-then-
        // delivered with this seed; pin that the counters line up.
        let cfg = FaultConfig::lossless(0xBEEF).with_loss(0.5);
        let mut plane = FaultPlane::new(cfg);
        let mut ok = 0u64;
        for _ in 0..400 {
            if plane.transmit(A, B, SimTime::ZERO).is_ok() {
                ok += 1;
            }
        }
        let s = plane.stats();
        assert!(ok > 0);
        assert!(s.retransmits > 0);
        assert_eq!(
            s.drops + s.partition_drops,
            s.retransmits + s.exhausted * u64::from(RetransmitPolicy::default().max_attempts)
        );
    }

    #[test]
    fn symmetric_partition_cuts_both_directions_until_heal() {
        let cut = Partition::between(A, B, at_ms(10), Some(at_ms(20)));
        let cfg = FaultConfig::lossless(3).with_partition(cut);
        let mut plane = FaultPlane::new(cfg);
        // Before the window: clean.
        assert!(plane.transmit(A, B, at_ms(0)).is_ok());
        assert!(plane.transmit(B, A, at_ms(0)).is_ok());
        // Inside: both directions sever; the full ladder is partition
        // drops, no RNG consumed, and the wasted time is the ladder cost.
        // (The window is wide enough that every rung lands inside it only
        // for the first rungs — the ladder rides out of a 10 ms window, so
        // use severed() for the pure directional check.)
        assert!(plane.severed(A, B, at_ms(10)));
        assert!(plane.severed(B, A, at_ms(15)));
        assert!(!plane.severed(A, B, at_ms(20)), "heal is exclusive");
        // After the heal: clean again.
        assert!(plane.transmit(A, B, at_ms(25)).is_ok());
        assert_eq!(plane.rng_state, 3, "partitions must not consume randomness");
    }

    #[test]
    fn one_way_partition_is_direction_aware() {
        let cut = Partition::one_way(A, B, SimTime::ZERO, None);
        let cfg = FaultConfig::lossless(4).with_partition(cut);
        let mut plane = FaultPlane::new(cfg);
        let e = plane.transmit(A, B, SimTime::ZERO).expect_err("severed");
        assert_eq!(e.partition_drops, RetransmitPolicy::default().max_attempts);
        assert!(
            plane.transmit(B, A, SimTime::ZERO).is_ok(),
            "reverse delivers"
        );
        assert!(!plane.multicast_delivered(A, B, SimTime::ZERO));
        assert!(plane.multicast_delivered(B, A, SimTime::ZERO));
        let s = plane.stats();
        assert_eq!(s.partition_drops, 5);
        assert_eq!(s.multicast_drops, 1);
        assert_eq!(s.drops, 0);
    }

    #[test]
    fn ladder_rides_through_a_heal() {
        // Cut heals 7 ms in: attempt 1 (t=0) and attempt 2 (t=5ms) are
        // severed, attempt 3 (t=15ms) delivers. The invariant still
        // balances because retransmits counts partition-dropped attempts.
        let cut = Partition::between(A, B, SimTime::ZERO, Some(at_ms(7)));
        let cfg = FaultConfig::lossless(5).with_partition(cut);
        let mut plane = FaultPlane::new(cfg);
        let t = plane
            .transmit(A, B, SimTime::ZERO)
            .expect("heals mid-ladder");
        assert_eq!(t.partition_drops, 2);
        assert_eq!(t.retransmits, 2);
        assert_eq!(t.delay, Duration::from_millis(15)); // 5 + 10
        let s = plane.stats();
        assert_eq!(s.partition_drops + s.drops, s.retransmits);
    }

    #[test]
    fn link_overrides_apply_per_direction() {
        let cfg = FaultConfig::lossless(6).with_link(LinkFaults {
            from: A,
            to: B,
            loss_p: 1.0,
            dup_p: 0.0,
            jitter_max: Duration::ZERO,
        });
        let mut plane = FaultPlane::new(cfg);
        assert!(
            plane.transmit(A, B, SimTime::ZERO).is_err(),
            "overridden lossy"
        );
        assert!(
            plane.transmit(B, A, SimTime::ZERO).is_ok(),
            "default lossless"
        );
    }

    #[test]
    fn adaptive_ladder_tracks_the_estimator() {
        let cfg = FaultConfig::lossless(8)
            .with_loss(1.0)
            .with_adaptive(RttConfig::default());
        let mut plane = FaultPlane::new(cfg);
        plane.observe_rtt(B, Duration::from_millis(2), false); // rto = 2 + 4*1 = 6ms
        let e = plane
            .transmit(A, B, SimTime::ZERO)
            .expect_err("always lost");
        // 6 + 12 + 24 + 48 + 80(capped) = 170 ms
        assert_eq!(e.wasted, Duration::from_millis(170));
        // The exhaustion backed the estimator off for the next exchange.
        let e2 = plane
            .transmit(A, B, SimTime::ZERO)
            .expect_err("always lost");
        assert!(e2.wasted > e.wasted);
        // Karn: a retransmitted sample must not reset the backoff.
        plane.observe_rtt(B, Duration::from_millis(2), true);
        let e3 = plane
            .transmit(A, B, SimTime::ZERO)
            .expect_err("always lost");
        assert!(e3.wasted >= e2.wasted);
    }

    #[test]
    fn give_up_cost_matches_exhausted_wait() {
        let cfg = FaultConfig::lossless(11).with_loss(1.0);
        let mut plane = FaultPlane::new(cfg);
        let expected = plane.give_up_cost(B);
        let e = plane
            .transmit(A, B, SimTime::ZERO)
            .expect_err("always lost");
        assert_eq!(e.wasted, expected);
    }

    #[test]
    fn estimators_are_kept_per_destination() {
        const C: LogicalHost = LogicalHost::new(3);
        let cfg = FaultConfig::lossless(12).with_adaptive(RttConfig::default());
        let mut plane = FaultPlane::new(cfg);
        // A fast link to B, a slow link to C: samples must not bleed.
        for _ in 0..16 {
            plane.observe_rtt(B, Duration::from_millis(2), false);
            plane.observe_rtt(C, Duration::from_millis(40), false);
        }
        let rto_b = plane.rtt_to(B).expect("B observed").rto();
        let rto_c = plane.rtt_to(C).expect("C observed").rto();
        assert!(rto_b < rto_c, "rto_b={rto_b:?} rto_c={rto_c:?}");
        assert!(plane.give_up_cost(B) < plane.give_up_cost(C));
        // An unobserved destination falls back to the fresh initial RTO.
        const D: LogicalHost = LogicalHost::new(4);
        assert!(plane.rtt_to(D).is_none());
        let fresh: Duration = (1..=5)
            .map(|k| RttEstimator::new(RttConfig::default()).ladder(k))
            .sum();
        assert_eq!(plane.give_up_cost(D), fresh);
    }
}
