//! Adaptive round-trip-time estimation: SRTT/RTTVAR smoothing with Karn's
//! rule and exponential backoff, in the style of period BSD TCP
//! (Jacobson's 1988 gains, Karn & Partridge 1987 sample discipline).
//!
//! The paper's kernel retransmits on a fixed ladder; ROADMAP lists
//! "adaptive retry (paper-era BSD-style RTT estimation)" as the open
//! refinement. This module supplies it for both retransmission layers:
//! the kernel's packet ladder (via [`FaultConfig::with_adaptive`]) and
//! the client's transaction backoff (via [`AdaptiveTimer`]).
//!
//! All arithmetic is integer nanoseconds with shift-based gains
//! (`err/8`, `|err|/4`), so the estimator is bit-deterministic and safe
//! to fold into the simulation's event hash.
//!
//! [`FaultConfig::with_adaptive`]: crate::FaultConfig::with_adaptive

use crate::retry::RetryTimer;
use std::time::Duration;

/// Bounds and initial value for the adaptive retransmission timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttConfig {
    /// RTO used before the first accepted sample.
    pub initial_rto: Duration,
    /// Floor under the computed RTO (a zero-variance estimator must not
    /// spin-retransmit).
    pub min_rto: Duration,
    /// Ceiling over the computed RTO, shared with the static ladder's cap.
    pub max_rto: Duration,
}

impl Default for RttConfig {
    fn default() -> Self {
        // Matches the static ladder's base/cap so the two policies are
        // comparable: an adaptive timer with no samples behaves like the
        // static ladder's first rung.
        RttConfig {
            initial_rto: Duration::from_millis(5),
            min_rto: Duration::from_millis(1),
            max_rto: Duration::from_millis(80),
        }
    }
}

/// SRTT/RTTVAR estimator with Karn's rule.
///
/// * `observe(sample, retransmitted=false)`: first sample sets
///   `SRTT = R`, `RTTVAR = R/2`; later samples apply Jacobson's gains
///   `SRTT += err/8`, `RTTVAR += (|err| - RTTVAR)/4`.
/// * `observe(_, retransmitted=true)`: discarded (Karn's rule — the
///   sample is ambiguous: it may time the retransmission, not the
///   original).
/// * `on_timeout()`: doubles the effective RTO (exponential backoff),
///   undone by the next accepted sample.
/// * `rto()`: `SRTT + 4*RTTVAR`, clamped to `[min_rto, max_rto]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttEstimator {
    cfg: RttConfig,
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    /// Consecutive-timeout backoff exponent (Karn: keep the backed-off
    /// RTO until a sample from an unretransmitted exchange arrives).
    backoff: u32,
}

/// Cap on the backoff exponent: `80 ms << 6` already saturates any
/// plausible `max_rto`, and bounding the shift keeps the arithmetic total.
const MAX_BACKOFF: u32 = 6;

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new(cfg: RttConfig) -> Self {
        RttEstimator {
            cfg,
            srtt_ns: None,
            rttvar_ns: 0,
            backoff: 0,
        }
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &RttConfig {
        &self.cfg
    }

    /// Feeds one round-trip sample. Samples from retransmitted exchanges
    /// are discarded per Karn's rule.
    pub fn observe(&mut self, sample: Duration, retransmitted: bool) {
        if retransmitted {
            return;
        }
        self.backoff = 0;
        let s = sample.as_nanos().min(u128::from(u64::MAX)) as u64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(s);
                self.rttvar_ns = s / 2;
            }
            Some(m) => {
                let err = s as i64 - m as i64;
                let srtt = (m as i64 + err / 8).max(0) as u64;
                let var = self.rttvar_ns as i64;
                self.rttvar_ns = (var + (err.abs() - var) / 4).max(0) as u64;
                self.srtt_ns = Some(srtt);
            }
        }
    }

    /// Signals an exhausted exchange: the next ladder starts from a
    /// doubled RTO.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF);
    }

    /// The smoothed round-trip estimate, if any sample was accepted yet.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt_ns.map(Duration::from_nanos)
    }

    /// The mean-deviation estimate.
    pub fn rttvar(&self) -> Duration {
        Duration::from_nanos(self.rttvar_ns)
    }

    /// The base retransmission timeout `SRTT + 4*RTTVAR`, clamped to the
    /// configured bounds; `initial_rto` before the first sample. The
    /// timeout-backoff exponent is *not* applied here — see
    /// [`ladder`](Self::ladder).
    pub fn rto(&self) -> Duration {
        let raw = match self.srtt_ns {
            Some(m) => Duration::from_nanos(m.saturating_add(self.rttvar_ns.saturating_mul(4))),
            None => self.cfg.initial_rto,
        };
        raw.clamp(self.cfg.min_rto, self.cfg.max_rto)
    }

    /// The timeout for transmission `attempt` (1-based) of one exchange:
    /// the current RTO shifted left by the accumulated timeout backoff
    /// plus the in-exchange attempt index, capped at `max_rto` — the
    /// adaptive replacement for the static ladder's `timeout(attempt)`.
    pub fn ladder(&self, attempt: u32) -> Duration {
        let shift = (self.backoff + attempt.saturating_sub(1)).min(MAX_BACKOFF);
        let rto = self.rto();
        rto.saturating_mul(1u32 << shift).min(self.cfg.max_rto)
    }
}

/// A client-level [`RetryTimer`] driven by an [`RttEstimator`]: the pause
/// after the `n`-th failure is the estimator's backed-off RTO for attempt
/// `n`, and the budget convention matches the static client policy (no
/// pause after the final failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveTimer {
    /// Total attempts allowed (first try + retries).
    pub max_attempts: u32,
    est: RttEstimator,
}

impl AdaptiveTimer {
    /// Builds an adaptive timer with the given attempt budget.
    pub fn new(max_attempts: u32, cfg: RttConfig) -> Self {
        AdaptiveTimer {
            max_attempts,
            est: RttEstimator::new(cfg),
        }
    }

    /// Read access to the underlying estimator.
    pub fn estimator(&self) -> &RttEstimator {
        &self.est
    }
}

impl RetryTimer for AdaptiveTimer {
    fn failure_delay(&self, failed_attempts: u32) -> Option<Duration> {
        (failed_attempts < self.max_attempts).then(|| self.est.ladder(failed_attempts))
    }

    fn observe_rtt(&mut self, rtt: Duration, retransmitted: bool) {
        self.est.observe(rtt, retransmitted);
    }

    fn on_give_up(&mut self) {
        self.est.on_timeout();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = RttEstimator::new(RttConfig::default());
        assert_eq!(e.rto(), ms(5));
        e.observe(ms(4), false);
        assert_eq!(e.srtt(), Some(ms(4)));
        assert_eq!(e.rttvar(), ms(2));
        assert_eq!(e.rto(), ms(12)); // 4 + 4*2
    }

    #[test]
    fn constant_samples_shrink_variance_toward_zero() {
        let mut e = RttEstimator::new(RttConfig::default());
        for _ in 0..64 {
            e.observe(ms(3), false);
        }
        assert_eq!(e.srtt(), Some(ms(3)));
        assert!(e.rttvar() < Duration::from_micros(10), "{:?}", e.rttvar());
        // RTO collapses onto SRTT but respects the floor.
        assert!(e.rto() >= RttConfig::default().min_rto);
        assert!(e.rto() < ms(4));
    }

    #[test]
    fn karn_discards_retransmitted_samples() {
        let mut a = RttEstimator::new(RttConfig::default());
        let mut b = a;
        a.observe(ms(3), false);
        b.observe(ms(3), false);
        b.observe(ms(40), true); // must not move the estimate
        assert_eq!(a, b);
    }

    #[test]
    fn timeouts_double_the_rto_until_a_clean_sample() {
        let mut e = RttEstimator::new(RttConfig::default());
        e.observe(ms(2), false); // srtt 2, var 1 -> rto 6
        assert_eq!(e.ladder(1), ms(6));
        e.on_timeout();
        assert_eq!(e.ladder(1), ms(12));
        e.on_timeout();
        assert_eq!(e.ladder(1), ms(24));
        // In-exchange attempts stack on the timeout backoff, capped.
        assert_eq!(e.ladder(2), ms(48));
        assert_eq!(e.ladder(5), ms(80));
        // A clean sample resets the backoff (and shrinks the variance:
        // rttvar 1 ms -> 0.75 ms, so RTO is 2 + 4*0.75 = 5 ms).
        e.observe(ms(2), false);
        assert_eq!(e.ladder(1), ms(5));
    }

    #[test]
    fn adaptive_timer_budget_matches_client_convention() {
        let t = AdaptiveTimer::new(3, RttConfig::default());
        assert!(t.failure_delay(1).is_some());
        assert!(t.failure_delay(2).is_some());
        assert_eq!(t.failure_delay(3), None);
    }
}
