//! Network and 1984-hardware cost models for the V-System reproduction.
//!
//! The paper's measurements were taken on 10 MHz SUN workstations connected
//! by 3 Mbit (and 10 Mbit) Ethernet, with VAX/UNIX file servers and disks
//! delivering a 512-byte page every 15 ms. None of that hardware is
//! available, so — per the reproduction's substitution rule — this crate
//! prices the *structure* of each protocol action (packets on the wire,
//! per-packet kernel processing, memory copies, disk latency) with constants
//! calibrated against the paper's own primitive measurements:
//!
//! * 32-byte local `Send-Receive-Reply`: **0.77 ms** (the kernel measurement
//!   cited from the SOSP'83 V kernel paper),
//! * 32-byte remote transaction on 3 Mbit Ethernet: **2.56 ms** (paper §3.1),
//! * 64 KB `MoveTo` program load: **338 ms** (paper §3.1),
//! * disk page: 512 bytes / **15 ms** (paper §3.1),
//! * `Open` table and prefix-server processing time (paper §6).
//!
//! The virtual-time kernel in `vkernel::sim` charges these costs; the
//! experiment harness in `vsim` then regenerates the paper's numbers.
//!
//! # Examples
//!
//! ```
//! use vnet::{NetModel, Params1984};
//!
//! let net = NetModel::new(Params1984::ethernet_3mbit());
//! let local = net.hop_cost(true, 0);
//! let remote = net.hop_cost(false, 0);
//! assert!(remote > local);
//! // A full remote transaction is two remote hops: the paper's 2.56 ms.
//! assert_eq!((remote * 2).as_micros(), 2560);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod model;
mod params;
mod retry;
mod rtt;
mod time;

pub use fault::{
    Exhausted, FaultConfig, FaultPlane, FaultStats, LinkFaults, Partition, RetransmitPolicy,
    Transmit,
};
pub use model::NetModel;
pub use params::Params1984;
pub use retry::{ExpBackoff, RetryTimer};
pub use rtt::{AdaptiveTimer, RttConfig, RttEstimator};
pub use time::SimTime;
