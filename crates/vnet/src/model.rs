//! The network cost model used by the virtual-time kernel.

use crate::params::Params1984;
use std::time::Duration;
use vproto::MSG_WORDS;

/// Size of the fixed V message on the wire, in bytes.
const MSG_BYTES: usize = MSG_WORDS * 2;

/// Prices protocol actions (IPC hops, bulk transfers, broadcasts) in virtual
/// time, using the calibrated [`Params1984`].
///
/// A *hop* is one direction of a message transaction: `Send` (client →
/// server), `Reply` (server → client), or `Forward` (server → server). A
/// local hop costs CPU only; a remote hop costs per-packet CPU on both
/// kernels plus wire time for the message, its payload, and per-packet
/// headers.
///
/// # Examples
///
/// ```
/// use vnet::{NetModel, Params1984};
///
/// let net = NetModel::new(Params1984::ethernet_3mbit());
/// // The paper's 64 KB program load (§3.1): one remote hop to request,
/// // a bulk MoveTo of the image, one remote hop to reply.
/// let load = net.bulk_cost(false, 64 * 1024);
/// assert!((330..=350).contains(&load.as_millis()));
/// ```
#[derive(Debug, Clone)]
pub struct NetModel {
    params: Params1984,
}

impl NetModel {
    /// Creates a model over the given parameter set.
    pub fn new(params: Params1984) -> Self {
        NetModel { params }
    }

    /// Returns the underlying parameters.
    pub fn params(&self) -> &Params1984 {
        &self.params
    }

    /// Cost of one IPC hop carrying the 32-byte message plus `payload_bytes`
    /// of appended data.
    ///
    /// `local` means sender and receiver are on the same logical host.
    pub fn hop_cost(&self, local: bool, payload_bytes: usize) -> Duration {
        if local {
            // Local rendezvous: trap + message copy + scheduling. Payload is
            // passed by reference in memory; charge only the copy.
            self.params.t_cpu_local_hop + self.copy_cost(payload_bytes)
        } else {
            let data = MSG_BYTES + payload_bytes;
            let packets = self.params.packets_for(data);
            let wire_bytes = data + packets * self.params.packet_header_bytes;
            self.params.t_cpu_net_hop_per_packet * packets as u32
                + self.params.wire_time(wire_bytes)
                + self.copy_cost(payload_bytes)
        }
    }

    /// Cost of a bulk `MoveTo`/`MoveFrom` of `bytes` between the parties of
    /// an in-progress transaction (paper §3.1).
    ///
    /// Remote bulk transfers are packetized; each packet pays wire time,
    /// per-packet CPU on both kernels, and the memory copy. Local transfers
    /// pay only the copy.
    pub fn bulk_cost(&self, local: bool, bytes: usize) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        if local {
            return self.copy_cost(bytes);
        }
        let packets = self.params.packets_for(bytes);
        let wire_bytes = bytes + packets * self.params.packet_header_bytes;
        self.params.t_cpu_net_hop_per_packet * packets as u32
            + self.params.wire_time(wire_bytes)
            + self.copy_cost(bytes)
    }

    /// Cost charged to the requesting kernel for a `GetPid` broadcast: the
    /// query packet, the filter cost paid by each of `other_hosts` kernels,
    /// and the unicast response hop (paper §4.2).
    pub fn broadcast_query_cost(&self, other_hosts: usize) -> Duration {
        let query = self.hop_cost(false, 0);
        let filtering = self.params.t_broadcast_filter * other_hosts as u32;
        let response = self.hop_cost(false, 0);
        query + filtering + response
    }

    /// Cost of delivering one multicast packet to a group with
    /// `group_members` receivers among `other_hosts` total remote hosts:
    /// one packet on the wire, every host filters, members process fully.
    pub fn multicast_send_cost(&self, other_hosts: usize) -> Duration {
        self.hop_cost(false, 0) + self.params.t_broadcast_filter * other_hosts as u32
    }

    /// Memory-copy cost for `bytes` (pro-rated per kilobyte).
    pub fn copy_cost(&self, bytes: usize) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            (self.params.t_copy_per_kb.as_nanos() as u64).saturating_mul(bytes as u64) / 1024,
        )
    }

    /// Disk latency to deliver `bytes` of file data, in whole pages
    /// (paper §3.1: one 512-byte page per 15 ms).
    pub fn disk_cost(&self, bytes: usize) -> Duration {
        let pages = bytes.div_ceil(self.params.disk_page_bytes).max(1);
        self.params.t_disk_page * pages as u32
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::new(Params1984::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetModel {
        NetModel::new(Params1984::ethernet_3mbit())
    }

    #[test]
    fn remote_transaction_reproduces_paper() {
        // Paper §3.1: 32-byte Send-Receive-Reply between two workstations on
        // 3 Mbit Ethernet = 2.56 ms.
        let txn = net().hop_cost(false, 0) * 2;
        let us = txn.as_micros() as i64;
        assert!((us - 2560).abs() <= 5, "remote txn {us}µs, paper 2560µs");
    }

    #[test]
    fn local_transaction_reproduces_sosp83() {
        let txn = net().hop_cost(true, 0) * 2;
        assert_eq!(txn.as_micros(), 770);
    }

    #[test]
    fn program_load_reproduces_paper() {
        // Paper §3.1: 64 KB program load via MoveTo = 338 ms.
        let t = net().bulk_cost(false, 64 * 1024);
        let ms = t.as_millis() as i64;
        assert!((ms - 338).abs() <= 4, "program load {ms}ms, paper 338ms");
    }

    #[test]
    fn local_hops_cheaper_than_remote() {
        let n = net();
        for payload in [0, 100, 1024, 9000] {
            assert!(n.hop_cost(true, payload) < n.hop_cost(false, payload));
        }
    }

    #[test]
    fn hop_cost_monotone_in_payload() {
        let n = net();
        let mut prev = Duration::ZERO;
        for payload in [0, 1, 32, 512, 1024, 2048, 65536] {
            let c = n.hop_cost(false, payload);
            assert!(c >= prev, "payload {payload}");
            prev = c;
        }
    }

    #[test]
    fn bulk_zero_is_free_and_local_is_copy_only() {
        let n = net();
        assert_eq!(n.bulk_cost(false, 0), Duration::ZERO);
        assert_eq!(n.bulk_cost(true, 2048), n.copy_cost(2048));
    }

    #[test]
    fn disk_cost_rounds_up_to_pages() {
        let n = net();
        assert_eq!(n.disk_cost(1), Duration::from_millis(15));
        assert_eq!(n.disk_cost(512), Duration::from_millis(15));
        assert_eq!(n.disk_cost(513), Duration::from_millis(30));
    }

    #[test]
    fn broadcast_costs_grow_with_domain_size() {
        let n = net();
        assert!(n.broadcast_query_cost(10) > n.broadcast_query_cost(1));
        assert!(n.multicast_send_cost(10) > n.multicast_send_cost(1));
    }

    #[test]
    fn ten_mbit_is_faster_for_bulk() {
        let slow = NetModel::new(Params1984::ethernet_3mbit());
        let fast = NetModel::new(Params1984::ethernet_10mbit());
        assert!(fast.bulk_cost(false, 64 * 1024) < slow.bulk_cost(false, 64 * 1024));
    }
}
