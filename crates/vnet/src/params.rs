//! Calibrated cost parameters for the 1984 hardware (see crate docs).

use std::time::Duration;

/// Cost parameters describing the paper's hardware: 10 MHz SUN workstations
/// on an Ethernet, with VAX/UNIX storage servers.
///
/// All constants are *calibrated*, not invented: each is fitted to a
/// primitive measurement the paper (or the SOSP'83 V kernel paper it cites)
/// reports. EXPERIMENTS.md lists the fit and the residuals.
///
/// # Examples
///
/// ```
/// use vnet::Params1984;
///
/// let p = Params1984::ethernet_3mbit();
/// // Two local hops make the 0.77 ms local message transaction.
/// assert_eq!((p.t_cpu_local_hop * 2).as_micros(), 770);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params1984 {
    /// Network bandwidth in bits per second (3 Mbit or 10 Mbit Ethernet).
    pub ethernet_bps: u64,
    /// Per-packet framing overhead: Ethernet + inter-kernel protocol
    /// headers, in bytes.
    pub packet_header_bytes: usize,
    /// Maximum message-plus-payload data bytes carried per packet.
    pub max_data_per_packet: usize,
    /// CPU cost of one *local* IPC hop (half a local Send-Receive-Reply):
    /// trap, copy of the 32-byte message, scheduling. Fitted so a local
    /// 32-byte transaction costs 0.77 ms.
    pub t_cpu_local_hop: Duration,
    /// Combined sender+receiver CPU cost of pushing one packet through both
    /// network kernels. Fitted so a remote 32-byte transaction on 3 Mbit
    /// Ethernet costs 2.56 ms.
    pub t_cpu_net_hop_per_packet: Duration,
    /// Memory-copy cost per kilobyte moved into place by `MoveTo`/`MoveFrom`
    /// on the 10 MHz 68000. Fitted so a 64 KB program load costs 338 ms.
    pub t_copy_per_kb: Duration,
    /// Client run-time stub cost for `Open`: building the request message
    /// and processing the reply. Fitted so `Open` in the current context
    /// with a local server costs 1.21 ms (paper §6).
    pub t_stub_open: Duration,
    /// Processing time inside the context prefix server: receiving the
    /// request, scanning the prefix table, rewriting the message, and
    /// forwarding it. The paper measures this at 3.94–3.99 ms (§6);
    /// fitted to reproduce the 5.14 ms prefix+local `Open`.
    pub t_prefix_processing: Duration,
    /// Residual cost of fetching the name portion of a CSname request from a
    /// *remote* client (the short `MoveFrom` for the name bytes). Fitted to
    /// the paper's 3.70 ms remote `Open`.
    pub t_remote_name_fetch: Duration,
    /// Latency for the disk to deliver one page (paper §3.1: 15 ms).
    pub t_disk_page: Duration,
    /// Size of one disk page in bytes (paper §3.1: 512).
    pub disk_page_bytes: usize,
    /// Cost of a `GetPid` hit in the local kernel table (a kernel trap and a
    /// table probe — small relative to IPC).
    pub t_getpid_local: Duration,
    /// Per-host CPU cost of receiving and filtering a broadcast or multicast
    /// packet that may not be addressed to this host (the "additional cost"
    /// the paper notes for the multicast technique, §2.2).
    pub t_broadcast_filter: Duration,
}

impl Params1984 {
    /// The paper's primary configuration: 3 Mbit experimental Ethernet.
    pub fn ethernet_3mbit() -> Self {
        Params1984 {
            ethernet_bps: 3_000_000,
            packet_header_bytes: 60,
            max_data_per_packet: 1024,
            t_cpu_local_hop: Duration::from_micros(385),
            // 1034.667 µs + 245.333 µs wire (92-byte packet at 3 Mbit)
            // makes one remote hop exactly 1.28 ms, i.e. the paper's
            // 2.56 ms round trip.
            t_cpu_net_hop_per_packet: Duration::from_nanos(1_034_667),
            t_copy_per_kb: Duration::from_micros(1356),
            t_stub_open: Duration::from_micros(440),
            t_prefix_processing: Duration::from_micros(3555),
            t_remote_name_fetch: Duration::from_micros(700),
            t_disk_page: Duration::from_millis(15),
            disk_page_bytes: 512,
            t_getpid_local: Duration::from_micros(120),
            t_broadcast_filter: Duration::from_micros(150),
        }
    }

    /// The 10 Mbit Ethernet configuration (same CPUs, faster wire).
    pub fn ethernet_10mbit() -> Self {
        Params1984 {
            ethernet_bps: 10_000_000,
            ..Self::ethernet_3mbit()
        }
    }

    /// Time for `bytes` to cross the wire at this bandwidth.
    pub fn wire_time(&self, bytes: usize) -> Duration {
        Duration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.ethernet_bps)
    }

    /// Number of packets needed to carry `data_bytes` of message + payload.
    /// Always at least one (a bare 32-byte message still needs a packet).
    pub fn packets_for(&self, data_bytes: usize) -> usize {
        data_bytes.div_ceil(self.max_data_per_packet).max(1)
    }
}

impl Default for Params1984 {
    fn default() -> Self {
        Self::ethernet_3mbit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_3mbit() {
        let p = Params1984::ethernet_3mbit();
        // 92 bytes (60 header + 32 message) at 3 Mbit/s ≈ 245 µs.
        let t = p.wire_time(92);
        assert!(
            (244_000..=246_000).contains(&(t.as_nanos() as u64)),
            "{t:?}"
        );
    }

    #[test]
    fn wire_time_scales_with_bandwidth() {
        let slow = Params1984::ethernet_3mbit();
        let fast = Params1984::ethernet_10mbit();
        assert!(fast.wire_time(1000) < slow.wire_time(1000));
    }

    #[test]
    fn packets_for_small_and_large() {
        let p = Params1984::ethernet_3mbit();
        assert_eq!(p.packets_for(0), 1);
        assert_eq!(p.packets_for(32), 1);
        assert_eq!(p.packets_for(1024), 1);
        assert_eq!(p.packets_for(1025), 2);
        assert_eq!(p.packets_for(64 * 1024), 64);
    }

    #[test]
    fn local_transaction_calibration() {
        let p = Params1984::ethernet_3mbit();
        assert_eq!((p.t_cpu_local_hop * 2).as_micros(), 770);
    }
}
