//! The shared retry vocabulary: one implementation of the bounded
//! exponential ladder that both the kernel's
//! [`RetransmitPolicy`](crate::RetransmitPolicy) and the client-level
//! backoff policy in `vnaming` delegate to, plus the [`RetryTimer`] trait
//! that lets static ladders and the adaptive RTT-estimated timer
//! ([`AdaptiveTimer`](crate::AdaptiveTimer)) be used interchangeably.
//!
//! Before this module existed the two ladders were hand-rolled copies of
//! the same loop; a change to one could silently diverge from the other.
//! Now the math lives once, in [`ExpBackoff`], and each policy keeps only
//! its own *budget* convention (the kernel charges a timeout for every
//! lost transmission including the last; the client gives up without a
//! final pause).

use std::time::Duration;

/// The bounded exponential ladder `min(base * factor^(n-1), cap)`.
///
/// This is pure math with no budget: callers decide how many rungs they
/// climb before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpBackoff {
    /// The first rung of the ladder.
    pub base: Duration,
    /// Multiplier between consecutive rungs.
    pub factor: u32,
    /// Ceiling on any rung.
    pub cap: Duration,
}

impl ExpBackoff {
    /// Builds a ladder from its three constants.
    pub const fn new(base: Duration, factor: u32, cap: Duration) -> Self {
        ExpBackoff { base, factor, cap }
    }

    /// The `n`-th rung (1-based): `base * factor^(n-1)`, capped.
    pub fn nth(&self, n: u32) -> Duration {
        let mut d = self.base;
        for _ in 1..n {
            d = d.saturating_mul(self.factor).min(self.cap);
        }
        d.min(self.cap)
    }

    /// The sum of the first `count` rungs.
    pub fn total(&self, count: u32) -> Duration {
        (1..=count).map(|n| self.nth(n)).sum()
    }
}

/// A retry timer: given how many attempts have failed, how long to wait
/// before the next one — or `None` when the budget is spent and the
/// caller must surface the error.
///
/// Static policies ignore the feedback methods; the adaptive timer uses
/// [`observe_rtt`](RetryTimer::observe_rtt) to track the network and
/// [`on_give_up`](RetryTimer::on_give_up) to back its estimate off
/// (Karn's rule pairs with both: samples from retransmitted exchanges
/// must be flagged so they are not fed into the estimator).
pub trait RetryTimer {
    /// The pause after `failed_attempts` failures (1-based), or `None`
    /// once the attempt budget is exhausted.
    fn failure_delay(&self, failed_attempts: u32) -> Option<Duration>;

    /// Feeds back a measured round-trip time. `retransmitted` marks a
    /// sample from an exchange that needed retransmission — ambiguous
    /// under Karn's rule, so adaptive timers discard it.
    fn observe_rtt(&mut self, _rtt: Duration, _retransmitted: bool) {}

    /// Signals that the budget was exhausted without an answer.
    fn on_give_up(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_doubles_then_caps() {
        let l = ExpBackoff::new(Duration::from_millis(5), 2, Duration::from_millis(80));
        assert_eq!(l.nth(1), Duration::from_millis(5));
        assert_eq!(l.nth(2), Duration::from_millis(10));
        assert_eq!(l.nth(4), Duration::from_millis(40));
        assert_eq!(l.nth(5), Duration::from_millis(80));
        assert_eq!(l.nth(9), Duration::from_millis(80));
        assert_eq!(l.total(5), Duration::from_millis(155));
    }

    #[test]
    fn base_above_cap_is_clamped_immediately() {
        let l = ExpBackoff::new(Duration::from_millis(90), 2, Duration::from_millis(80));
        assert_eq!(l.nth(1), Duration::from_millis(80));
    }
}
