//! Client-side I/O operations and the sequential [`FileHandle`] stream.

use crate::error::{check, IoError};
use bytes::Bytes;
use vkernel::Ipc;
use vnaming::build_csname_request;
use vproto::{
    fields, ContextId, CsName, InstanceId, Message, ObjectDescriptor, OpenMode, Pid, ReplyCode,
    RequestCode,
};

/// Default read window used by [`FileHandle`] streaming (one 512-byte disk
/// page — the paper's §3.1 sequential-read scenario).
pub const DEFAULT_BLOCK: usize = 512;

/// Result of a successful open: where the instance lives and what the
/// server reported about the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenOutcome {
    /// The server that ended up implementing the object — not necessarily
    /// the one the request was first sent to, thanks to forwarding.
    pub server: Pid,
    /// The instance id for subsequent I/O.
    pub instance: InstanceId,
    /// Object size in bytes at open time.
    pub size: u64,
}

/// Opens `name` in context `ctx` at `server` (paper's `Open`, minus the
/// context-prefix routing that lives in `vruntime`).
///
/// # Errors
///
/// Transport failures surface as [`IoError::Ipc`]; server refusals
/// (unknown name, bad mode, ...) as [`IoError::Server`].
pub fn open_at(
    ipc: &dyn Ipc,
    server: Pid,
    ctx: ContextId,
    name: &CsName,
    mode: OpenMode,
) -> Result<OpenOutcome, IoError> {
    let (mut msg, payload) = build_csname_request(RequestCode::CreateInstance, ctx, name, &[]);
    msg.set_mode(mode);
    let reply = ipc.send(server, msg, payload, 0)?;
    check(reply.msg.reply_code())?;
    Ok(OpenOutcome {
        server: reply.msg.pid_at(fields::W_PID_LO),
        instance: InstanceId(reply.msg.word(fields::W_INSTANCE)),
        size: reply.msg.word32(fields::W_SIZE_LO) as u64,
    })
}

/// Reads up to `count` bytes at byte `offset` from an open instance.
///
/// # Errors
///
/// [`ReplyCode::EndOfFile`] (as [`IoError::Server`]) when `offset` is at or
/// past the end of the object.
pub fn read_at(
    ipc: &dyn Ipc,
    server: Pid,
    instance: InstanceId,
    offset: u64,
    count: usize,
) -> Result<Bytes, IoError> {
    let mut msg = Message::request(RequestCode::ReadInstance);
    msg.set_word(fields::W_IO_INSTANCE, instance.0)
        .set_word32(fields::W_IO_OFFSET_LO, offset as u32)
        .set_word(fields::W_IO_COUNT, count as u16);
    let reply = ipc.send(server, msg, Bytes::new(), count)?;
    check(reply.msg.reply_code())?;
    Ok(reply.data)
}

/// Writes `data` at byte `offset` of an open instance; returns bytes
/// written.
///
/// # Errors
///
/// [`ReplyCode::BadMode`] if the instance was not opened for writing.
pub fn write_at(
    ipc: &dyn Ipc,
    server: Pid,
    instance: InstanceId,
    offset: u64,
    data: &[u8],
) -> Result<usize, IoError> {
    let mut msg = Message::request(RequestCode::WriteInstance);
    msg.set_word(fields::W_IO_INSTANCE, instance.0)
        .set_word32(fields::W_IO_OFFSET_LO, offset as u32)
        .set_word(fields::W_IO_COUNT, data.len() as u16);
    let reply = ipc.send(server, msg, Bytes::copy_from_slice(data), 0)?;
    check(reply.msg.reply_code())?;
    Ok(reply.msg.word(fields::W_IO_COUNT) as usize)
}

/// Releases (closes) an open instance.
///
/// # Errors
///
/// [`ReplyCode::InvalidInstance`] if the id is stale.
pub fn release(ipc: &dyn Ipc, server: Pid, instance: InstanceId) -> Result<(), IoError> {
    let mut msg = Message::request(RequestCode::ReleaseInstance);
    msg.set_word(fields::W_IO_INSTANCE, instance.0);
    let reply = ipc.send(server, msg, Bytes::new(), 0)?;
    check(reply.msg.reply_code())
}

/// Queries the descriptor of an open instance (paper §5.5 applied to
/// temporary names).
///
/// # Errors
///
/// [`ReplyCode::InvalidInstance`] if the id is stale; decode failures
/// surface as [`ReplyCode::BadArgs`].
pub fn query_instance(
    ipc: &dyn Ipc,
    server: Pid,
    instance: InstanceId,
) -> Result<ObjectDescriptor, IoError> {
    let mut msg = Message::request(RequestCode::QueryInstance);
    msg.set_word(fields::W_IO_INSTANCE, instance.0);
    let reply = ipc.send(server, msg, Bytes::new(), 4096)?;
    check(reply.msg.reply_code())?;
    ObjectDescriptor::decode_one(&reply.data).map_err(|_| IoError::Server(ReplyCode::BadArgs))
}

/// A sequential stream over an open instance: the client-side position
/// tracking the V I/O protocol leaves out of the (stateless) server.
#[derive(Debug)]
pub struct FileHandle {
    server: Pid,
    instance: InstanceId,
    pos: u64,
    size: u64,
    block: usize,
    released: bool,
}

impl FileHandle {
    /// Wraps an [`OpenOutcome`] in a stream positioned at byte 0.
    pub fn new(outcome: OpenOutcome) -> Self {
        FileHandle {
            server: outcome.server,
            instance: outcome.instance,
            pos: 0,
            size: outcome.size,
            block: DEFAULT_BLOCK,
            released: false,
        }
    }

    /// Sets the read window used by [`FileHandle::read_next`].
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// The server implementing this instance.
    pub fn server(&self) -> Pid {
        self.server
    }

    /// The instance id.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// Current stream position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Object size reported at open.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Reads the next block; `Ok(None)` at end of file.
    ///
    /// # Errors
    ///
    /// Propagates transport and server failures other than end-of-file.
    pub fn read_next(&mut self, ipc: &dyn Ipc) -> Result<Option<Bytes>, IoError> {
        match read_at(ipc, self.server, self.instance, self.pos, self.block) {
            Ok(data) => {
                self.pos += data.len() as u64;
                if data.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(data))
                }
            }
            Err(e) if e.is_eof() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads the whole remaining stream into one buffer.
    ///
    /// # Errors
    ///
    /// Propagates transport and server failures.
    pub fn read_to_end(&mut self, ipc: &dyn Ipc) -> Result<Vec<u8>, IoError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.read_next(ipc)? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Appends `data` at the current position, advancing it.
    ///
    /// # Errors
    ///
    /// Propagates transport and server failures.
    pub fn write_next(&mut self, ipc: &dyn Ipc, data: &[u8]) -> Result<(), IoError> {
        let written = write_at(ipc, self.server, self.instance, self.pos, data)?;
        self.pos += written as u64;
        self.size = self.size.max(self.pos);
        Ok(())
    }

    /// Repositions the stream.
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos;
    }

    /// Closes the instance. Safe to call once; `Drop` does *not* close (a
    /// blocking operation) — per Rust destructor guidance, closing is
    /// explicit.
    ///
    /// # Errors
    ///
    /// Propagates transport and server failures.
    pub fn close(mut self, ipc: &dyn Ipc) -> Result<(), IoError> {
        self.released = true;
        release(ipc, self.server, self.instance)
    }

    /// Borrows the handle as a [`std::io::Read`], so V files compose with
    /// the standard library's reader ecosystem.
    pub fn reader<'h>(&'h mut self, ipc: &'h dyn Ipc) -> HandleReader<'h> {
        HandleReader { handle: self, ipc }
    }

    /// Borrows the handle as a [`std::io::Write`].
    pub fn writer<'h>(&'h mut self, ipc: &'h dyn Ipc) -> HandleWriter<'h> {
        HandleWriter { handle: self, ipc }
    }
}

fn to_std_io(e: IoError) -> std::io::Error {
    std::io::Error::other(e)
}

/// [`std::io::Read`] adapter over a [`FileHandle`] (see
/// [`FileHandle::reader`]).
pub struct HandleReader<'h> {
    handle: &'h mut FileHandle,
    ipc: &'h dyn Ipc,
}

impl std::fmt::Debug for HandleReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandleReader")
            .field("handle", &self.handle)
            .finish()
    }
}

impl std::io::Read for HandleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let count = buf.len().min(u16::MAX as usize);
        match read_at(
            self.ipc,
            self.handle.server,
            self.handle.instance,
            self.handle.pos,
            count,
        ) {
            Ok(data) => {
                buf[..data.len()].copy_from_slice(&data);
                self.handle.pos += data.len() as u64;
                Ok(data.len())
            }
            Err(e) if e.is_eof() => Ok(0),
            Err(e) => Err(to_std_io(e)),
        }
    }
}

impl std::fmt::Debug for HandleWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandleWriter")
            .field("handle", &self.handle)
            .finish()
    }
}

/// [`std::io::Write`] adapter over a [`FileHandle`] (see
/// [`FileHandle::writer`]).
pub struct HandleWriter<'h> {
    handle: &'h mut FileHandle,
    ipc: &'h dyn Ipc,
}

impl std::io::Write for HandleWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let count = buf.len().min(u16::MAX as usize);
        self.handle
            .write_next(self.ipc, &buf[..count])
            .map_err(to_std_io)?;
        Ok(count)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Writes are synchronous transactions; nothing is buffered.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::Domain;
    use vproto::LogicalHost;

    /// A minimal in-memory I/O server for exercising the client helpers:
    /// one pre-existing object named "data" containing 0..=255 twice.
    pub(super) fn spawn_byte_server(domain: &Domain, host: LogicalHost) -> Pid {
        domain.spawn(host, "byteserver", |ctx| {
            let mut store: Vec<u8> = (0u16..512).map(|i| (i % 256) as u8).collect();
            let mut instances: crate::InstanceTable<()> = crate::InstanceTable::new();
            while let Ok(rx) = ctx.receive() {
                let msg = rx.msg;
                match msg.request_code() {
                    Some(RequestCode::CreateInstance) => {
                        let payload = ctx.move_from(&rx).unwrap();
                        let req = vnaming::CsRequest::parse(&msg, &payload).unwrap();
                        if req.remaining() == b"data" {
                            let id = instances.open(rx.from, msg.mode().unwrap(), ());
                            let mut m = Message::ok();
                            m.set_word(fields::W_INSTANCE, id.0)
                                .set_word32(fields::W_SIZE_LO, store.len() as u32)
                                .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                            ctx.reply(rx, m, Bytes::new()).ok();
                        } else {
                            ctx.reply(rx, Message::reply(ReplyCode::NotFound), Bytes::new())
                                .ok();
                        }
                    }
                    Some(RequestCode::ReadInstance) => {
                        let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                        let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                        let count = msg.word(fields::W_IO_COUNT) as usize;
                        let result = instances
                            .check(id, false)
                            .and_then(|_| crate::serve_read(&store, offset, count));
                        match result {
                            Ok(window) => {
                                let mut m = Message::ok();
                                m.set_word(fields::W_IO_COUNT, window.len() as u16);
                                let data = Bytes::copy_from_slice(window);
                                ctx.reply(rx, m, data).ok();
                            }
                            Err(code) => {
                                ctx.reply(rx, Message::reply(code), Bytes::new()).ok();
                            }
                        }
                    }
                    Some(RequestCode::WriteInstance) => {
                        let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                        let offset = msg.word32(fields::W_IO_OFFSET_LO) as usize;
                        let data = ctx.move_from(&rx).unwrap();
                        let code = match instances.check(id, true) {
                            Ok(_) => {
                                if store.len() < offset + data.len() {
                                    store.resize(offset + data.len(), 0);
                                }
                                store[offset..offset + data.len()].copy_from_slice(&data);
                                ReplyCode::Ok
                            }
                            Err(c) => c,
                        };
                        let mut m = Message::reply(code);
                        m.set_word(fields::W_IO_COUNT, data.len() as u16);
                        ctx.reply(rx, m, Bytes::new()).ok();
                    }
                    Some(RequestCode::ReleaseInstance) => {
                        let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                        let code = if instances.release(id).is_some() {
                            ReplyCode::Ok
                        } else {
                            ReplyCode::InvalidInstance
                        };
                        ctx.reply(rx, Message::reply(code), Bytes::new()).ok();
                    }
                    _ => {
                        ctx.reply(rx, Message::reply(ReplyCode::UnknownRequest), Bytes::new())
                            .ok();
                    }
                }
            }
        })
    }

    #[test]
    fn open_read_close_session() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let out = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("data"),
                OpenMode::Read,
            )
            .unwrap();
            assert_eq!(out.size, 512);
            assert_eq!(out.server, server);
            let first = read_at(ctx, server, out.instance, 0, 16).unwrap();
            assert_eq!(&first[..4], &[0, 1, 2, 3]);
            release(ctx, server, out.instance).unwrap();
            // Stale instance now rejected.
            let err = read_at(ctx, server, out.instance, 0, 16).unwrap_err();
            assert_eq!(err.reply_code(), Some(ReplyCode::InvalidInstance));
        });
    }

    #[test]
    fn open_unknown_name_fails() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let err = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("nonesuch"),
                OpenMode::Read,
            )
            .unwrap_err();
            assert_eq!(err.reply_code(), Some(ReplyCode::NotFound));
        });
    }

    #[test]
    fn stream_reads_whole_object_in_blocks() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let out = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("data"),
                OpenMode::Read,
            )
            .unwrap();
            let mut handle = FileHandle::new(out).with_block(100);
            let all = handle.read_to_end(ctx).unwrap();
            assert_eq!(all.len(), 512);
            assert_eq!(all[511], 255);
            handle.close(ctx).unwrap();
        });
    }

    #[test]
    fn write_then_read_back() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let out = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("data"),
                OpenMode::Write,
            )
            .unwrap();
            write_at(ctx, server, out.instance, 4, b"PATCH").unwrap();
            let back = read_at(ctx, server, out.instance, 4, 5).unwrap();
            assert_eq!(&back[..], b"PATCH");
        });
    }

    #[test]
    fn read_only_instance_rejects_write() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let out = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("data"),
                OpenMode::Read,
            )
            .unwrap();
            let err = write_at(ctx, server, out.instance, 0, b"x").unwrap_err();
            assert_eq!(err.reply_code(), Some(ReplyCode::BadMode));
        });
    }

    #[test]
    fn seek_and_partial_reads() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let out = open_at(
                ctx,
                server,
                ContextId::DEFAULT,
                &CsName::from("data"),
                OpenMode::Read,
            )
            .unwrap();
            let mut handle = FileHandle::new(out).with_block(64);
            handle.seek(500);
            let tail = handle.read_to_end(ctx).unwrap();
            assert_eq!(tail.len(), 12);
            assert_eq!(handle.position(), 512);
        });
    }
}

#[cfg(test)]
mod io_adapter_tests {
    use super::*;
    use vkernel::Domain;

    #[test]
    fn std_io_copy_between_v_files() {
        let domain = Domain::new();
        let host = domain.add_host();
        let server = super::tests::spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let src = open_at(
                ctx,
                server,
                vproto::ContextId::DEFAULT,
                &vproto::CsName::from("data"),
                OpenMode::Read,
            )
            .unwrap();
            let mut src = FileHandle::new(src).with_block(64);
            let mut sink: Vec<u8> = Vec::new();
            std::io::copy(&mut src.reader(ctx), &mut sink).unwrap();
            assert_eq!(sink.len(), 512);
            assert_eq!(sink[0], 0);
            assert_eq!(sink[511], 255);
        });
    }

    #[test]
    fn std_io_write_appends() {
        use std::io::Write;
        let domain = Domain::new();
        let host = domain.add_host();
        let server = super::tests::spawn_byte_server(&domain, host);
        domain.client(host, move |ctx| {
            let h = open_at(
                ctx,
                server,
                vproto::ContextId::DEFAULT,
                &vproto::CsName::from("data"),
                OpenMode::Write,
            )
            .unwrap();
            let mut h = FileHandle::new(h);
            write!(h.writer(ctx), "written via std::io::Write").unwrap();
            let back = read_at(ctx, server, h.instance(), 0, 26).unwrap();
            assert_eq!(&back[..], b"written via std::io::Write");
        });
    }
}
