//! I/O-protocol error reporting.

use std::fmt;
use vkernel::IpcError;
use vproto::ReplyCode;

/// Errors surfaced by V I/O protocol operations: either the transport
/// failed (kernel-level) or the server refused (protocol-level reply code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// The kernel transaction failed.
    Ipc(IpcError),
    /// The server answered with a failure reply code.
    Server(ReplyCode),
}

impl IoError {
    /// Returns the server reply code, if this is a server-side failure.
    pub fn reply_code(&self) -> Option<ReplyCode> {
        match self {
            IoError::Server(code) => Some(*code),
            IoError::Ipc(_) => None,
        }
    }

    /// Returns `true` for the end-of-file condition.
    pub fn is_eof(&self) -> bool {
        matches!(self, IoError::Server(ReplyCode::EndOfFile))
    }

    /// Flattens the error into the reply code a server relaying it onward
    /// would put on the wire (paper §2.2: a failed request is *answered*,
    /// with the reason, not dropped). Transport failures map onto the
    /// protocol's vocabulary: an exhausted retransmission ladder is
    /// [`ReplyCode::Timeout`], an unreachable or dead service is
    /// [`ReplyCode::NoServer`], an overfull buffer is
    /// [`ReplyCode::NoServerResources`], and anything else is the catch-all
    /// [`ReplyCode::Unknown`].
    pub fn to_reply_code(&self) -> ReplyCode {
        match self {
            IoError::Server(code) => *code,
            IoError::Ipc(IpcError::Timeout) => ReplyCode::Timeout,
            IoError::Ipc(
                IpcError::NoProcess
                | IpcError::ProcessDied
                | IpcError::NoReply
                | IpcError::NoSuchGroup,
            ) => ReplyCode::NoServer,
            IoError::Ipc(IpcError::BufferOverflow) => ReplyCode::NoServerResources,
            IoError::Ipc(_) => ReplyCode::Unknown,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Ipc(e) => write!(f, "transport failure: {e}"),
            IoError::Server(code) => write!(f, "server refused: {code}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<IpcError> for IoError {
    fn from(e: IpcError) -> Self {
        IoError::Ipc(e)
    }
}

impl From<ReplyCode> for IoError {
    fn from(code: ReplyCode) -> Self {
        IoError::Server(code)
    }
}

/// Converts a reply message code into a `Result`.
pub(crate) fn check(code: ReplyCode) -> Result<(), IoError> {
    if code.is_ok() {
        Ok(())
    } else {
        Err(IoError::Server(code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_detection() {
        assert!(IoError::Server(ReplyCode::EndOfFile).is_eof());
        assert!(!IoError::Server(ReplyCode::NotFound).is_eof());
        assert!(!IoError::Ipc(IpcError::NoProcess).is_eof());
    }

    #[test]
    fn reply_code_extraction() {
        assert_eq!(
            IoError::Server(ReplyCode::NoPermission).reply_code(),
            Some(ReplyCode::NoPermission)
        );
        assert_eq!(IoError::Ipc(IpcError::Shutdown).reply_code(), None);
    }

    #[test]
    fn transport_failures_map_onto_the_reply_vocabulary() {
        assert_eq!(
            IoError::Ipc(IpcError::Timeout).to_reply_code(),
            ReplyCode::Timeout
        );
        assert_eq!(
            IoError::Ipc(IpcError::NoProcess).to_reply_code(),
            ReplyCode::NoServer
        );
        assert_eq!(
            IoError::Ipc(IpcError::BufferOverflow).to_reply_code(),
            ReplyCode::NoServerResources
        );
        assert_eq!(
            IoError::Ipc(IpcError::Shutdown).to_reply_code(),
            ReplyCode::Unknown
        );
        assert_eq!(
            IoError::Server(ReplyCode::NotFound).to_reply_code(),
            ReplyCode::NotFound
        );
    }

    #[test]
    fn check_maps_codes() {
        assert!(check(ReplyCode::Ok).is_ok());
        assert_eq!(
            check(ReplyCode::BadArgs),
            Err(IoError::Server(ReplyCode::BadArgs))
        );
    }
}
