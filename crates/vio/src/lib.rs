//! The V I/O protocol (paper §3.2): uniform connection of program input and
//! output to files, terminals, pipes, network connections, and memory
//! arrays.
//!
//! The I/O protocol is a *presentation* protocol (message format
//! conventions) and a *session* protocol (the legal open → read/write →
//! close sequence) layered on kernel IPC. Any server implementing file-like
//! objects speaks it; the paper credits it with "utmost importance in the
//! cohesiveness of V" and models the name-handling protocol on its success.
//!
//! * Server side: [`InstanceTable`] manages the 16-bit object instance
//!   identifiers of paper §4.3 (temporary names, reuse-delayed) and
//!   [`serve_read`] implements the common read-window logic.
//! * Client side: [`open_at`], [`read_at`], [`write_at`], [`release`],
//!   [`query_instance`] are the raw operations; [`FileHandle`] layers a
//!   sequential stream on top (the paper's §3.1 file-reading scenario).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod instance;

pub use client::{
    open_at, query_instance, read_at, release, write_at, FileHandle, HandleReader, HandleWriter,
    OpenOutcome,
};
pub use error::IoError;
pub use instance::{serve_read, Instance, InstanceTable};
