//! Property-based tests for instance management (paper §4.3 invariants).

use proptest::prelude::*;
use std::collections::HashSet;
use vio::InstanceTable;
use vproto::{LogicalHost, OpenMode, Pid};

#[derive(Debug, Clone, Copy)]
enum Action {
    Open(u8),
    Release(u8),
    ReleaseOwner(u8),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<u8>().prop_map(Action::Open),
        any::<u8>().prop_map(Action::Release),
        (0u8..4).prop_map(Action::ReleaseOwner),
    ]
}

proptest! {
    /// Live instance ids are always unique, releases always balance opens,
    /// and no sequence of operations panics.
    #[test]
    fn instance_ids_stay_unique(actions in proptest::collection::vec(arb_action(), 0..200)) {
        let mut table: InstanceTable<u32> = InstanceTable::new();
        let mut live: Vec<vproto::InstanceId> = Vec::new();
        let mut opened = 0usize;
        let mut released = 0usize;
        for action in actions {
            match action {
                Action::Open(owner) => {
                    let pid = Pid::new(LogicalHost::new(1), owner as u16 % 4);
                    let id = table.open(pid, OpenMode::Read, owner as u32);
                    prop_assert!(!live.contains(&id), "id {id:?} reused while live");
                    live.push(id);
                    opened += 1;
                }
                Action::Release(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i as usize % live.len());
                        prop_assert!(table.release(id).is_some());
                        released += 1;
                    }
                }
                Action::ReleaseOwner(owner) => {
                    let pid = Pid::new(LogicalHost::new(1), owner as u16 % 4);
                    let n = table.release_owner(pid);
                    live.retain(|id| table.get(*id).is_some());
                    released += n;
                }
            }
            // The table's view and ours agree.
            prop_assert_eq!(table.len(), live.len());
            let distinct: HashSet<_> = live.iter().collect();
            prop_assert_eq!(distinct.len(), live.len());
        }
        prop_assert_eq!(opened - released, table.len());
    }

    /// `serve_read` returns exactly the requested window, clamped at EOF,
    /// and never panics.
    #[test]
    fn serve_read_window_invariants(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        offset in 0u64..512,
        count in 0usize..512,
    ) {
        match vio::serve_read(&data, offset, count) {
            Ok(window) => {
                prop_assert!((offset as usize) < data.len());
                prop_assert!(window.len() <= count);
                prop_assert_eq!(
                    window,
                    &data[offset as usize..(offset as usize + count).min(data.len())]
                );
            }
            Err(code) => {
                prop_assert_eq!(code, vproto::ReplyCode::EndOfFile);
                prop_assert!(offset as usize >= data.len());
            }
        }
    }
}
