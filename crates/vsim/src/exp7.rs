//! EXP-7 — Distributed name interpretation vs a centralized name server
//! (the paper's §2.2 comparison).
//!
//! Three claims, three measurements:
//!
//! * **Efficiency**: "Separating the name of an object from its
//!   implementation introduces the extra cost of interacting with one more
//!   server — the name server — every time a name is referenced."
//! * **Consistency**: "deleting a named object requires notifying the name
//!   server ... If one of the servers crashes during the operation, the
//!   system will be left inconsistent."
//! * **Reliability**: "A name server ... represents a central failure
//!   point."

use crate::report::{ExpReport, ExpRow};
use std::time::Duration;
use vcentral::{central_name_server, object_store, CentralClient, DeleteCrash};
use vkernel::SimDomain;
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode};
use vruntime::NameClient;
use vservers::{file_server, FileServerConfig};

/// Latency of opening a (remote) object under both models.
pub fn measure_open_latency(params: Params1984) -> (Duration, Duration) {
    // Distributed: one transaction straight to the implementing server.
    let distributed = {
        let domain = SimDomain::new(params.clone());
        let (ws, sm) = (domain.add_host(), domain.add_host());
        let fs = domain.spawn(sm, "fs", |ctx| {
            file_server(
                ctx,
                FileServerConfig {
                    preload: vec![("obj.dat".into(), vec![0u8; 100])],
                    ..FileServerConfig::default()
                },
            )
        });
        domain
            .client(ws, move |ctx| {
                let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
                let t0 = ctx.now();
                for _ in 0..10 {
                    client.open("obj.dat", OpenMode::Read).unwrap();
                }
                (ctx.now() - t0) / 10
            })
            .expect("distributed open")
    };
    // Centralized: a name-server transaction, then an open-by-id.
    let centralized = {
        let domain = SimDomain::new(params);
        let (ws, ns_host, store_host) = (domain.add_host(), domain.add_host(), domain.add_host());
        domain.spawn(ns_host, "central", |ctx| central_name_server(ctx));
        let store = domain.spawn(store_host, "store", |ctx| object_store(ctx));
        domain.run();
        domain
            .client(ws, move |ctx| {
                let client = CentralClient::new(ctx).unwrap();
                client.create(store, "obj.dat", &[0u8; 100]).unwrap();
                let t0 = ctx.now();
                for _ in 0..10 {
                    client.open("obj.dat").unwrap();
                }
                (ctx.now() - t0) / 10
            })
            .expect("centralized open")
    };
    (distributed, centralized)
}

/// Outcome of the consistency fault-injection run.
#[derive(Debug, Clone, Copy)]
pub struct ConsistencyOutcome {
    /// Deletes attempted under each model.
    pub attempts: usize,
    /// Names that still resolve but whose object is gone (centralized).
    pub central_dangling: usize,
    /// Same measure for the distributed model.
    pub distributed_dangling: usize,
}

/// Runs `attempts` deletes, crashing after the object-delete step every
/// `crash_every`-th time, under both models; counts dangling names.
pub fn measure_consistency(
    params: Params1984,
    attempts: usize,
    crash_every: usize,
) -> ConsistencyOutcome {
    // Centralized model.
    let central_dangling = {
        let domain = SimDomain::new(params.clone());
        let (ws, sm) = (domain.add_host(), domain.add_host());
        domain.spawn(sm, "central", |ctx| central_name_server(ctx));
        let store = domain.spawn(sm, "store", |ctx| object_store(ctx));
        domain.run();
        domain
            .client(ws, move |ctx| {
                let client = CentralClient::new(ctx).unwrap();
                let mut dangling = 0;
                for i in 0..attempts {
                    let name = format!("f{i}");
                    client.create(store, &name, b"x").unwrap();
                    let crash = if i % crash_every == 0 {
                        DeleteCrash::AfterObjectDelete
                    } else {
                        DeleteCrash::None
                    };
                    client.delete(&name, crash).unwrap();
                    // A dangling name: lookup succeeds, open fails.
                    if client.lookup(&name).is_ok() && client.open(&name).is_err() {
                        dangling += 1;
                    }
                }
                dangling
            })
            .expect("centralized consistency run")
    };
    // Distributed model: delete is a single-server operation; a "crash at
    // the same point" aborts *before* anything happened or after the whole
    // delete — there is no window in which name and object can disagree.
    let distributed_dangling = {
        let domain = SimDomain::new(params);
        let (ws, sm) = (domain.add_host(), domain.add_host());
        let fs = domain.spawn(sm, "fs", |ctx| {
            file_server(ctx, FileServerConfig::default())
        });
        domain.run();
        domain
            .client(ws, move |ctx| {
                let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
                let mut dangling = 0;
                for i in 0..attempts {
                    let name = format!("f{i}");
                    client.write_file(&name, b"x").unwrap();
                    client.remove(&name).unwrap();
                    // Name and object live in the same server: either both
                    // are gone or neither is.
                    let still_named = client.query(&name).is_ok();
                    let still_opens = client.open(&name, OpenMode::Read).is_ok();
                    if still_named != still_opens {
                        dangling += 1;
                    }
                }
                dangling
            })
            .expect("distributed consistency run")
    };
    ConsistencyOutcome {
        attempts,
        central_dangling,
        distributed_dangling,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-7.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-7",
        "distributed interpretation vs centralized name server (paper §2.2)",
    );
    let (dist, central) = measure_open_latency(Params1984::ethernet_3mbit());
    rep.push(ExpRow::measured_only(
        "open latency, distributed",
        ms(dist),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "open latency, centralized",
        ms(central),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "centralized overhead per name reference",
        ms(central) - ms(dist),
        "ms",
    ));
    let outcome = measure_consistency(Params1984::ethernet_3mbit(), 50, 5);
    rep.push(ExpRow::measured_only(
        "dangling names after 50 deletes w/ 20% crashes, centralized",
        outcome.central_dangling as f64,
        "names",
    ));
    rep.push(ExpRow::measured_only(
        "dangling names after 50 deletes w/ 20% crashes, distributed",
        outcome.distributed_dangling as f64,
        "names",
    ));
    // Reliability: with the central name server dead, nothing can be
    // opened by name, even though the object server is healthy.
    let domain = SimDomain::new(Params1984::ethernet_3mbit());
    let (ws, sm) = (domain.add_host(), domain.add_host());
    let ns = domain.spawn(sm, "central", |ctx| central_name_server(ctx));
    let store = domain.spawn(sm, "store", |ctx| object_store(ctx));
    domain.run();
    domain
        .client(ws, move |ctx| {
            let client = CentralClient::new(ctx).unwrap();
            client.create(store, "x", b"x").unwrap();
        })
        .unwrap();
    domain.kill(ns);
    let reachable: f64 = domain
        .client(ws, move |ctx| match CentralClient::new(ctx) {
            Ok(c) => f64::from(u8::from(c.open("x").is_ok())),
            Err(_) => 0.0,
        })
        .unwrap();
    rep.push(ExpRow::measured_only(
        "objects reachable after name-server crash, centralized",
        reachable,
        "frac",
    ));
    rep.note("the paper gives no numbers for §2.2; the claims under test are structural: one extra transaction per reference, a crash window that dangles names only in the centralized model, and a central failure point");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_pays_roughly_one_extra_transaction() {
        let (dist, central) = measure_open_latency(Params1984::ethernet_3mbit());
        let extra = central.as_nanos() as f64 / 1e6 - dist.as_nanos() as f64 / 1e6;
        // One extra remote transaction ≈ 2.56 ms (± name payload effects).
        assert!((1.5..4.0).contains(&extra), "extra {extra}");
    }

    #[test]
    fn only_centralized_model_dangles() {
        let outcome = measure_consistency(Params1984::ethernet_3mbit(), 25, 5);
        assert!(outcome.central_dangling >= 4, "{outcome:?}");
        assert_eq!(outcome.distributed_dangling, 0, "{outcome:?}");
    }

    #[test]
    fn report_has_reliability_row() {
        let rep = run();
        let r = rep
            .row("objects reachable after name-server crash, centralized")
            .unwrap();
        assert_eq!(r.measured, 0.0);
    }
}
