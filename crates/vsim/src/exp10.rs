//! EXP-10 — Ablations of two design choices the paper argues for.
//!
//! **(a) Forwarding vs client-driven iteration** (§5.4): V forwards a
//! partially interpreted request from server to server while the client
//! stays blocked. The alternative — the client maps the context first
//! (`QueryName`), then sends the operation directly — costs a full extra
//! transaction. Both are measured for a prefix-routed open.
//!
//! **(b) Client-side name caching** (§2.2): "Caching the name in the client
//! would introduce inconsistency problems and only benefit the few
//! applications that reuse names." The cache (off by default in
//! [`vruntime::NameClient`]) is measured for both halves of that sentence:
//! the latency benefit on reuse, and the stale-binding failures after a
//! server is restarted.

use crate::report::{ExpReport, ExpRow};
use crate::world::boot_world;
use std::time::Duration;
use vkernel::SimDomain;
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode, Scope};
use vruntime::NameClient;
use vservers::{file_server, prefix_server, FileServerConfig, PrefixConfig};

/// Measures a prefix-routed open done by forwarding (the V way) vs by
/// client-driven iteration (map first, then open directly).
pub fn measure_forward_vs_iterate(params: Params1984) -> (Duration, Duration) {
    let world = boot_world(params);
    let local_fs = world.local_fs;
    world.client(move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        let iters = 20u32;
        // (1) Forwarded: one send, interpreted along the way.
        let t0 = ctx.now();
        for _ in 0..iters {
            client.open("[local]paper.txt", OpenMode::Read).unwrap();
        }
        let forwarded = (ctx.now() - t0) / iters;
        // (2) Iterated: QueryName transaction, then a direct open.
        let t1 = ctx.now();
        for _ in 0..iters {
            let pair = client.query_name("[local]").unwrap();
            let direct = NameClient::new(ctx, pair);
            direct.open("paper.txt", OpenMode::Read).unwrap();
        }
        let iterated = (ctx.now() - t1) / iters;
        (forwarded, iterated)
    })
}

/// Outcome of the caching ablation.
#[derive(Debug, Clone, Copy)]
pub struct CacheOutcome {
    /// Mean open latency without the cache.
    pub uncached: Duration,
    /// Mean open latency with a warm cache.
    pub cached: Duration,
    /// Opens that failed against a stale binding after the server restart.
    pub stale_failures: u64,
    /// Opens that a per-use prefix lookup (no cache) got right after the
    /// restart.
    pub uncached_failures: u64,
}

/// Measures the cache's speedup on reuse and its inconsistency after a
/// server crash/restart with a changed pid.
pub fn measure_cache(params: Params1984) -> CacheOutcome {
    let domain = SimDomain::new(params);
    let ws = domain.add_host();
    let sm = domain.add_host();
    let spawn_fs = |label: &str| {
        let cfg = FileServerConfig {
            service_scope: Some(Scope::Both),
            preload: vec![("paper.txt".into(), b"x".to_vec())],
            ..FileServerConfig::default()
        };
        domain.spawn(sm, label, move |ctx| file_server(ctx, cfg))
    };
    let fs_v1 = spawn_fs("fs-v1");
    domain.spawn(ws, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    domain.run();
    // A *logical* prefix: the prefix server re-resolves it per use, so the
    // per-use path stays correct across restarts; the client cache is what
    // goes stale.
    domain
        .client(ws, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(fs_v1, ContextId::DEFAULT));
            client
                .add_logical_prefix("fs", vproto::ServiceId::FILE_SERVER, ContextId::DEFAULT)
                .unwrap();
        })
        .unwrap();

    let iters = 20u32;
    let (uncached, cached) = domain
        .client(ws, move |ctx| {
            let mut client = NameClient::new(ctx, ContextPair::new(fs_v1, ContextId::DEFAULT));
            let t0 = ctx.now();
            for _ in 0..iters {
                client.open("[fs]paper.txt", OpenMode::Read).unwrap();
            }
            let uncached = (ctx.now() - t0) / iters;
            client.enable_name_cache();
            client.open("[fs]paper.txt", OpenMode::Read).unwrap(); // warm
            let t1 = ctx.now();
            for _ in 0..iters {
                client.open("[fs]paper.txt", OpenMode::Read).unwrap();
            }
            let cached = (ctx.now() - t1) / iters;
            (uncached, cached)
        })
        .expect("latency phase");

    // Crash and restart the file server with a new pid.
    domain.kill(fs_v1);
    let _fs_v2 = spawn_fs("fs-v2");
    domain.run();

    let (stale_failures, uncached_failures) = domain
        .client(ws, move |ctx| {
            // A client that cached the old binding before the crash.
            let mut caching = NameClient::new(ctx, ContextPair::new(fs_v1, ContextId::DEFAULT));
            caching.enable_name_cache();
            // Plant the stale entry the pre-crash client would have held.
            caching.plant_cache_entry(b"fs", ContextPair::new(fs_v1, ContextId::DEFAULT));
            let mut stale = 0u64;
            for _ in 0..10 {
                // First failure invalidates; the retry path goes through
                // the prefix server. Count how many ATTEMPTS hit the stale
                // binding (the recovery cost of caching).
                let before = caching.cache_stats().invalidations;
                caching.open("[fs]paper.txt", OpenMode::Read).unwrap();
                stale += caching.cache_stats().invalidations - before;
            }
            let plain = NameClient::new(ctx, ContextPair::new(fs_v1, ContextId::DEFAULT));
            let mut uncached_failures = 0u64;
            for _ in 0..10 {
                if plain.open("[fs]paper.txt", OpenMode::Read).is_err() {
                    uncached_failures += 1;
                }
            }
            (stale, uncached_failures)
        })
        .expect("consistency phase");

    CacheOutcome {
        uncached,
        cached,
        stale_failures,
        uncached_failures,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-10.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-10",
        "ablations: forwarding vs iteration (§5.4); client name cache (§2.2)",
    );
    let (forwarded, iterated) = measure_forward_vs_iterate(Params1984::ethernet_3mbit());
    rep.push(ExpRow::measured_only(
        "prefix open, forwarded (the V design)",
        ms(forwarded),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "prefix open, client-iterated (map, then open)",
        ms(iterated),
        "ms",
    ));
    let c = measure_cache(Params1984::ethernet_3mbit());
    rep.push(ExpRow::measured_only(
        "open via logical prefix, uncached",
        ms(c.uncached),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "open via logical prefix, warm client cache",
        ms(c.cached),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "stale-binding hits after restart (cached client, 10 opens)",
        c.stale_failures as f64,
        "events",
    ));
    rep.push(ExpRow::measured_only(
        "failures after restart (per-use interpretation, 10 opens)",
        c.uncached_failures as f64,
        "events",
    ));
    rep.note("both halves of the paper's §2.2 sentence hold: caching helps reuse (it skips the ~4 ms prefix-server processing) and it is exactly what breaks when a server is recreated with a new pid");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_beats_client_iteration() {
        let (forwarded, iterated) = measure_forward_vs_iterate(Params1984::ethernet_3mbit());
        assert!(forwarded < iterated, "{forwarded:?} vs {iterated:?}");
        // The gap is roughly one transaction plus one prefix processing.
        let gap_ms = (iterated - forwarded).as_nanos() as f64 / 1e6;
        assert!((0.5..8.0).contains(&gap_ms), "gap {gap_ms} ms");
    }

    #[test]
    fn cache_helps_reuse_but_dangles_on_restart() {
        let c = measure_cache(Params1984::ethernet_3mbit());
        assert!(c.cached < c.uncached, "{c:?}");
        // The cached client hit the stale binding at least once; the
        // per-use client never failed.
        assert!(c.stale_failures >= 1, "{c:?}");
        assert_eq!(c.uncached_failures, 0, "{c:?}");
    }

    #[test]
    fn cache_recovers_after_invalidation() {
        // Implicit in measure_cache (all opens unwrap); re-check the stats
        // shape: exactly one invalidation, then hits again.
        let c = measure_cache(Params1984::ethernet_3mbit());
        assert_eq!(c.stale_failures, 1, "one stale hit, then recovery: {c:?}");
    }
}
