//! EXP-13 — Anti-entropy reconciliation between prefix replicas:
//! convergence after partition heals, crash rescues that stay *fresh*, and
//! periodic sync catching silent divergence.
//!
//! EXP-12 established the degraded-mode floor: a replica can always answer
//! a binding query, but only tagged [`Staleness::Suspect`] — nobody
//! authoritative vouched for its table. This experiment measures the
//! machinery that removes the tag. Replicas keep a *versioned* table
//! ([`vservers::SyncTable`]): every entry carries an epoch stamped at the
//! authority, deletes are retained as tombstones, and one `SyncPull`
//! round (digest → delta → apply) makes a replica's table hash-identical
//! to the authority's. Four questions:
//!
//! * **Convergence vs cut width and divergence size** — cut the replica
//!   off for W ∈ {60, 200} ms while the authority takes D ∈ {1, 8}
//!   add/delete operations, then let the heal-scheduled sync round run
//!   ([`vkernel::SimDomain::heal_times`] +
//!   [`vkernel::SimDomain::notify_at`]). The replica must be bytewise
//!   identical to the authority (equal table hashes) within **one**
//!   round, a few tens of milliseconds after the heal, whatever W and D
//!   were (the Merkle walk pays one request/reply per diverging tree
//!   level — latency buys divergence-bound bandwidth).
//! * **Zero queries to clear Suspect** — after the round, a client
//!   resolving through the replica gets [`Staleness::Fresh`] and the
//!   authority's binding-query counter does not move: anti-entropy, not
//!   client traffic, is what restored trust.
//! * **Fresh crash rescue** — the EXP-12 replica-rescue scenario
//!   (authority crashes, multicast to the replica group answers), but run
//!   *after* one sync round: the rescue now comes back `Fresh`. Same
//!   failure, same fallback — the replica is simply no longer guessing.
//! * **Restart & silent divergence** — a crashed replica restarted by a
//!   supervisor re-learns the whole table in one post-restart round; and
//!   with no fault event at all (divergence the fault plane never sees), a
//!   bounded periodic sync schedule catches it within one period.
//! * **Table-size sweep (Merkle digest)** — reconcile a *fixed* divergence
//!   at table sizes 10³→10⁶ names over the Merkle subtree walk and over
//!   the legacy flat digest: Merkle round cost (bytes on the wire, work
//!   units) must stay within 2× across the whole sweep while the flat
//!   oracle grows linearly with the table.
//! * **Merkle ≡ flat, in-world** — the same heal-scheduled convergence run
//!   with the replica's anti-entropy flipped to the flat oracle
//!   ([`vservers::DegradedPrefixConfig::flat_sync`]) adopts the same
//!   entries and reaches the same hash; only the Merkle path reports
//!   probe rounds.
//!
//! Everything is seeded and scheduled; equal seeds give bit-equal
//! latencies, counters and kernel event hashes (sync rounds are ordinary
//! messages, so they fold into the hash like any other traffic).

use crate::report::{ExpReport, ExpRow};
use crate::world::{boot_world_cfg, SimWorld, WorldConfig};
use bytes::Bytes;
use std::time::Duration;
use vnet::{FaultConfig, Params1984, Partition};
use vproto::{ContextId, ContextPair, Message, Pid, RequestCode, SyncBinding, SyncStatusRec};
use vruntime::{NameClient, Staleness};
use vservers::{
    flat_round, merkle_round, prefix_server, DegradedPrefixConfig, PrefixConfig, RoundFate,
    RoundKind, RoundStats, SyncTable,
};

/// Default seed for the experiment's fault schedules.
pub const EXP13_SEED: u64 = 0x1984_0C13;

/// Cut widths swept against divergence sizes.
pub const CUT_WIDTHS: [Duration; 2] = [Duration::from_millis(60), Duration::from_millis(200)];

/// Divergence sizes (authority-side operations during the cut) swept.
pub const DIVERGENCES: [u32; 2] = [1, 8];

/// Table sizes swept against a fixed divergence (Merkle walk vs flat
/// oracle).
pub const SWEEP_SIZES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Authority-side redefinitions applied at every sweep size (plus one
/// delete, so the reconciled delta always carries a tombstone).
pub const SWEEP_DIVERGENCE: u32 = 4;

/// Largest table the linear flat oracle is driven at: one flat round at
/// 10⁶ names encodes the entire table twice for a 5-entry delta, which
/// buys the sweep nothing beyond the 10⁵ point already on the line.
pub const FLAT_SWEEP_CAP: u32 = 100_000;

/// The standard world with a syncing replica: degraded-mode authority on
/// the workstation, non-authoritative replica on the server machine with
/// its anti-entropy peer pointed at the authority. `flat_sync` flips every
/// prefix server to the legacy flat-digest path (the differential oracle).
fn sync_world(seed: u64, flat_sync: bool) -> SimWorld {
    boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(seed)),
        degraded: Some(DegradedPrefixConfig {
            flat_sync,
            ..DegradedPrefixConfig::default()
        }),
        replica: true,
        sync_replica: true,
        flat_sync,
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    })
}

fn sleep_until(ctx: &dyn vkernel::Ipc, at: Duration) {
    let now = ctx.now();
    if at > now {
        ctx.sleep(at - now);
    }
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Reads a server's `SyncStatus` record (None if it cannot be reached or
/// decoded).
fn sync_status(ctx: &dyn vkernel::Ipc, server: Pid) -> Option<SyncStatusRec> {
    let reply = ctx
        .send(
            server,
            Message::request(RequestCode::SyncStatus),
            Bytes::new(),
            4096,
        )
        .ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    SyncStatusRec::decode(&reply.data).ok()
}

/// Outcome of one partition→heal convergence run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceOutcome {
    /// The cut's width.
    pub width: Duration,
    /// Authority-side operations taken during the cut.
    pub divergence: u32,
    /// Heal → first completed sync round observed at the replica.
    pub sync_latency: Duration,
    /// Sync rounds the replica completed (must be exactly 1).
    pub rounds: u32,
    /// Delta entries the replica adopted in that round.
    pub adopted: u32,
    /// Replica table hash == authority table hash after the round.
    pub hash_equal: bool,
    /// How a post-sync resolve through the replica was answered.
    pub staleness: Option<Staleness>,
    /// Authority binding queries consumed by that resolve (must be 0:
    /// anti-entropy cleared Suspect without any client→authority probe).
    pub authority_queries: u32,
    /// Merkle subtree probes the replica's rounds drove (0 on the flat
    /// oracle path — the witness that the walk, not the legacy digest,
    /// carried the round).
    pub probe_rounds: u32,
    /// Kernel event-stream hash at quiescence (determinism witness).
    pub event_hash: u64,
}

/// Cuts workstation↔server for `width` starting 20 ms after boot, drives
/// `divergence` adds (plus one delete, so the delta carries a tombstone)
/// at the authority *during* the cut, and schedules the anti-entropy
/// round off the fault plane's heal schedule. A driver on the server
/// machine polls the replica's `SyncStatus` from the heal onward and then
/// runs the acceptance checks.
pub fn measure_convergence(seed: u64, width: Duration, divergence: u32) -> ConvergenceOutcome {
    measure_convergence_with(seed, width, divergence, false)
}

/// [`measure_convergence`], with the anti-entropy path selectable:
/// `flat_sync` runs the same scenario over the legacy flat digest — the
/// in-world differential oracle for the Merkle walk.
pub fn measure_convergence_with(
    seed: u64,
    width: Duration,
    divergence: u32,
    flat_sync: bool,
) -> ConvergenceOutcome {
    let world = sync_world(seed, flat_sync);
    let t0 = world.domain.run();
    let cut_start = t0 + Duration::from_millis(20);
    let heal = cut_start + width;
    world.domain.schedule_partition(Partition::between(
        world.workstation,
        world.server_machine,
        cut_start,
        Some(heal),
    ));
    let replica = world.replica.expect("sync world has a replica");
    // Heal-triggered anti-entropy: the wiring reads the plane's partition
    // schedule and books one SyncPull per heal, 1 ms after connectivity
    // returns.
    for t in world.domain.heal_times() {
        world.domain.notify_at(
            t + Duration::from_millis(1),
            replica,
            Message::request(RequestCode::SyncPull),
        );
    }
    let cut_at = cut_start.as_duration();
    let heal_at = heal.as_duration();
    let (local_fs, remote_fs) = (world.local_fs, world.remote_fs);
    // The divergence: authority-side table churn the replica cannot see.
    world
        .domain
        .spawn(world.workstation, "diverge", move |ctx| {
            sleep_until(ctx, cut_at + Duration::from_millis(2));
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            for i in 0..divergence {
                client
                    .add_prefix(
                        &format!("scratch{i}"),
                        ContextPair::new(remote_fs, ContextId::DEFAULT),
                    )
                    .expect("divergence add");
            }
            client.delete_prefix("scratch0").expect("divergence delete");
        });
    let authority = world.prefix;
    let (sync_latency, rec, hash_equal, staleness, authority_queries) = world
        .domain
        .client(world.server_machine, move |ctx| {
            sleep_until(ctx, heal_at);
            let t_heal = ctx.now();
            let mut rec = sync_status(ctx, replica);
            let mut polls = 0;
            while rec.is_none_or(|r| r.rounds == 0) && polls < 400 {
                ctx.sleep(Duration::from_millis(1));
                rec = sync_status(ctx, replica);
                polls += 1;
            }
            let sync_latency = ctx.now() - t_heal;
            let auth_before = sync_status(ctx, authority);
            // The acceptance check: a resolve through the replica (the
            // local prefix server on this machine) answers Fresh and
            // never touches the authority.
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let staleness = client.resolve("[remote]").ok().map(|b| b.staleness);
            let auth_after = sync_status(ctx, authority);
            let hash_equal = match (rec, auth_after) {
                (Some(r), Some(a)) => r.table_hash == a.table_hash,
                _ => false,
            };
            let authority_queries = match (auth_before, auth_after) {
                (Some(b), Some(a)) => a.binding_queries - b.binding_queries,
                _ => u32::MAX,
            };
            (sync_latency, rec, hash_equal, staleness, authority_queries)
        })
        .expect("driver completed");
    ConvergenceOutcome {
        width,
        divergence,
        sync_latency,
        rounds: rec.map_or(0, |r| r.rounds),
        adopted: rec.map_or(0, |r| r.adopted),
        hash_equal,
        staleness,
        authority_queries,
        probe_rounds: rec.map_or(0, |r| r.probe_rounds),
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the post-sync crash rescue.
#[derive(Debug, Clone, Copy)]
pub struct FreshRescueOutcome {
    /// Elapsed time of the post-crash resolution.
    pub resolve: Duration,
    /// How it was answered — must be `Fresh` (contrast EXP-12).
    pub staleness: Option<Staleness>,
    /// Replica-rescued resolutions that came back fresh.
    pub fresh_from_replica: u64,
    /// Kernel event-stream hash at quiescence.
    pub event_hash: u64,
}

/// EXP-12's replica-rescue scenario run *after* one anti-entropy round:
/// the authority syncs the replica at +5 ms, crashes at +45 ms (past the
/// end of the multi-probe Merkle walk), and the client's multicast
/// fallback is answered by a replica whose table is vouched for —
/// `Fresh`, not `Suspect`.
pub fn measure_fresh_rescue(seed: u64) -> FreshRescueOutcome {
    let world = sync_world(seed, false);
    let t0 = world.domain.run();
    let replica = world.replica.expect("sync world has a replica");
    world.domain.notify_at(
        t0 + Duration::from_millis(5),
        replica,
        Message::request(RequestCode::SyncPull),
    );
    let t_crash = t0 + Duration::from_millis(45);
    world.domain.schedule_crash(world.prefix, t_crash);
    let crash_at = t_crash.as_duration();
    let local_fs = world.local_fs;
    let group = world.replica_group.expect("replica world has a group");
    let (resolve, staleness, stats) = world.client(move |ctx| {
        sleep_until(ctx, crash_at + Duration::from_millis(1));
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        client.set_replica_group(group);
        let t = ctx.now();
        let b = client.resolve("[remote]").ok();
        (
            ctx.now() - t,
            b.map(|b| b.staleness),
            client.degraded_stats(),
        )
    });
    FreshRescueOutcome {
        resolve,
        staleness,
        fresh_from_replica: stats.fresh_from_replica,
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the replica crash → supervisor restart → one-round
/// re-learn scenario.
#[derive(Debug, Clone, Copy)]
pub struct RestartOutcome {
    /// Sync rounds the restarted replica completed (must be 1).
    pub rounds: u32,
    /// Entries it adopted in that round (the whole table).
    pub adopted: u32,
    /// Restarted replica's table hash == authority's.
    pub hash_equal: bool,
    /// Kernel event-stream hash at quiescence.
    pub event_hash: u64,
}

/// Crashes the replica, restarts it via the supervisor pattern (a process
/// spawned at boot that sleeps past the crash and runs a fresh replica
/// body), and schedules one post-restart sync round — the crash-recovery
/// analogue of the heal trigger. One round must rebuild the whole table.
pub fn measure_restart_recovery(seed: u64) -> RestartOutcome {
    let world = sync_world(seed, false);
    let t0 = world.domain.run();
    let replica = world.replica.expect("sync world has a replica");
    let t_crash = t0 + Duration::from_millis(10);
    let t_restart = t_crash + Duration::from_millis(5);
    world.domain.schedule_crash(replica, t_crash);
    let (local_fs, remote_fs, authority) = (world.local_fs, world.remote_fs, world.prefix);
    let restart_at = t_restart.as_duration();
    // The supervisor: becomes the replacement replica after the crash. Its
    // preloads are the login-script bindings (epoch 0, unverified) — the
    // sync round is what re-earns trust.
    let new_replica = world
        .domain
        .spawn(world.server_machine, "replica-supervisor", move |ctx| {
            sleep_until(ctx, restart_at);
            prefix_server(
                ctx,
                PrefixConfig {
                    preload_direct: vec![
                        (
                            "local".into(),
                            ContextPair::new(local_fs, ContextId::DEFAULT),
                        ),
                        (
                            "remote".into(),
                            ContextPair::new(remote_fs, ContextId::DEFAULT),
                        ),
                        ("home".into(), ContextPair::new(local_fs, ContextId::HOME)),
                    ],
                    degraded: Some(DegradedPrefixConfig {
                        authoritative: false,
                        sync_peer: Some(authority),
                        ..DegradedPrefixConfig::default()
                    }),
                    ..PrefixConfig::default()
                },
            )
        });
    world.domain.notify_at(
        t_restart + Duration::from_millis(1),
        new_replica,
        Message::request(RequestCode::SyncPull),
    );
    let (rec, auth) = world
        .domain
        .client(world.server_machine, move |ctx| {
            sleep_until(ctx, restart_at + Duration::from_millis(10));
            (sync_status(ctx, new_replica), sync_status(ctx, authority))
        })
        .expect("driver completed");
    RestartOutcome {
        rounds: rec.map_or(0, |r| r.rounds),
        adopted: rec.map_or(0, |r| r.adopted),
        hash_equal: matches!((rec, auth), (Some(r), Some(a)) if r.table_hash == a.table_hash),
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the periodic-sync (silent divergence) scenario.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicOutcome {
    /// Sync rounds completed by the bounded periodic schedule.
    pub rounds: u32,
    /// Replica hash == authority hash when the divergence-catching round
    /// has run.
    pub hash_equal: bool,
    /// Heal-free divergence → convergence delay, as a multiple of the
    /// period (must be ≤ 1.0: caught within one period).
    pub periods_to_converge: f64,
    /// Kernel event-stream hash at quiescence.
    pub event_hash: u64,
}

/// Divergence with *no* fault event: the authority's table changes while
/// the network is healthy, so no heal or recovery ever schedules a sync.
/// A bounded periodic schedule (here 3 rounds, 100 ms apart — bounded so
/// the virtual-time run still quiesces, and long enough that one
/// multi-probe walk fits well inside a period) must catch it within one
/// period.
pub fn measure_periodic(seed: u64) -> PeriodicOutcome {
    let period = Duration::from_millis(100);
    let world = sync_world(seed, false);
    let t0 = world.domain.run();
    let replica = world.replica.expect("sync world has a replica");
    for k in 1..=3u32 {
        world.domain.notify_at(
            t0 + period * k,
            replica,
            Message::request(RequestCode::SyncPull),
        );
    }
    let (local_fs, remote_fs, authority) = (world.local_fs, world.remote_fs, world.prefix);
    let t0_d = t0.as_duration();
    // Silent divergence, 80 ms in: between periodic ticks, no fault.
    let diverge_at = t0_d + Duration::from_millis(80);
    world
        .domain
        .spawn(world.workstation, "diverge", move |ctx| {
            sleep_until(ctx, diverge_at);
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            client
                .add_prefix("silent", ContextPair::new(remote_fs, ContextId::DEFAULT))
                .expect("silent add");
        });
    let (rec, auth, caught_at) = world
        .domain
        .client(world.server_machine, move |ctx| {
            // Poll from the divergence point until the replica's table
            // covers it (hash can only match after a periodic round).
            sleep_until(ctx, diverge_at);
            let mut caught_at = ctx.now();
            let mut rec = sync_status(ctx, replica);
            let mut auth = sync_status(ctx, authority);
            let mut polls = 0;
            while polls < 200 {
                if let (Some(r), Some(a)) = (rec, auth) {
                    if r.rounds > 0 && r.table_hash == a.table_hash {
                        caught_at = ctx.now();
                        break;
                    }
                }
                ctx.sleep(Duration::from_millis(2));
                rec = sync_status(ctx, replica);
                auth = sync_status(ctx, authority);
                polls += 1;
            }
            (rec, auth, caught_at)
        })
        .expect("driver completed");
    let delay = caught_at.saturating_sub(diverge_at);
    PeriodicOutcome {
        rounds: rec.map_or(0, |r| r.rounds),
        hash_equal: matches!((rec, auth), (Some(r), Some(a)) if r.table_hash == a.table_hash),
        periods_to_converge: delay.as_nanos() as f64 / period.as_nanos() as f64,
        event_hash: world.domain.event_hash(),
    }
}

/// One rung of the table-size sweep: wire/CPU cost of reconciling the
/// fixed [`SWEEP_DIVERGENCE`] at `names` table entries.
#[derive(Debug, Clone, Copy)]
pub struct SweepRow {
    /// Table size (names at the authority).
    pub names: u32,
    /// Cost of one Merkle subtree-walk round.
    pub merkle: RoundStats,
    /// Cost of one legacy flat-digest round (`None` above
    /// [`FLAT_SWEEP_CAP`]).
    pub flat: Option<RoundStats>,
    /// Both paths left the replica hash-identical to the authority — and
    /// to each other.
    pub hash_equal: bool,
}

fn sweep_name(i: u32) -> Vec<u8> {
    format!("n{i:07}").into_bytes()
}

fn sweep_bind(i: u32) -> SyncBinding {
    SyncBinding {
        logical: i.is_multiple_of(2),
        target: i,
        context: i ^ 0x5a,
    }
}

/// Builds an authority table of `names` entries, warms an identical
/// replica, applies the fixed divergence ([`SWEEP_DIVERGENCE`]
/// redefinitions plus one delete) at the authority, then reconciles once
/// over the Merkle walk and once — from the same pre-round snapshot —
/// over the flat oracle. Transport-free: the tables talk through the real
/// wire records ([`merkle_round`]/[`flat_round`] encode every payload),
/// so bytes mean wire bytes, without simulating 10⁶ IPC deliveries.
pub fn measure_sweep_rung(names: u32) -> SweepRow {
    let mut auth = SyncTable::new();
    let mut now: u64 = 1_000;
    for i in 0..names {
        now += 17;
        auth.define(sweep_name(i), sweep_bind(i), now);
    }
    // The one O(table) Merkle build happens here, before cloning, so the
    // replica inherits warm hash caches (as a long-running server would).
    let _ = auth.table_hash();
    let mut replica = auth.clone();
    // A delivered warm-up round records the replica's watermark at the
    // authority; the tables are already identical, so it is a single
    // matching root probe.
    now += 17;
    merkle_round(
        &mut auth,
        &mut replica,
        RoundKind::Authority { replica_id: 0 },
        now,
        RoundFate::DELIVERED,
    );
    // The fixed divergence, invisible to the replica.
    for i in 0..SWEEP_DIVERGENCE {
        now += 17;
        auth.define(sweep_name(i), sweep_bind(i ^ 0x00be_ef00), now);
    }
    now += 17;
    auth.tombstone(&sweep_name(0), now);

    let flat_snapshot = (names <= FLAT_SWEEP_CAP).then(|| (auth.clone(), replica.clone()));
    now += 17;
    let (_, merkle) = merkle_round(
        &mut auth,
        &mut replica,
        RoundKind::Authority { replica_id: 0 },
        now,
        RoundFate::DELIVERED,
    );
    let mut hash_equal = replica.table_hash() == auth.table_hash();
    let flat = flat_snapshot.map(|(mut flat_auth, mut flat_rep)| {
        let (_, stats) = flat_round(
            &mut flat_auth,
            &mut flat_rep,
            RoundKind::Authority { replica_id: 0 },
            now,
            RoundFate::DELIVERED,
        );
        hash_equal = hash_equal
            && flat_rep.table_hash() == flat_auth.table_hash()
            && flat_rep.table_hash() == replica.table_hash();
        stats
    });
    SweepRow {
        names,
        merkle,
        flat,
        hash_equal,
    }
}

/// Runs the whole [`SWEEP_SIZES`] sweep.
pub fn measure_sweep() -> Vec<SweepRow> {
    SWEEP_SIZES.iter().map(|&n| measure_sweep_rung(n)).collect()
}

/// Runs EXP-13.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-13",
        "Anti-entropy reconciliation between prefix replicas: one-round convergence, fresh rescues",
    );
    for width in CUT_WIDTHS {
        for divergence in DIVERGENCES {
            let out = measure_convergence(EXP13_SEED, width, divergence);
            let w = width.as_millis();
            let tag = if out.hash_equal {
                "identical"
            } else {
                "DIVERGED"
            };
            rep.push(ExpRow::measured_only(
                format!("sync latency after {w} ms cut, {divergence} ops ({tag})"),
                ms(out.sync_latency),
                "ms",
            ));
            rep.push(ExpRow::measured_only(
                format!("entries adopted, {w} ms cut, {divergence} ops"),
                f64::from(out.adopted),
                "entries",
            ));
            rep.push(ExpRow::measured_only(
                format!("authority queries to clear Suspect, {w} ms cut, {divergence} ops"),
                f64::from(out.authority_queries),
                "count",
            ));
        }
    }
    let rescue = measure_fresh_rescue(EXP13_SEED);
    rep.push(ExpRow::measured_only(
        "resolve after authority crash (synced replica)",
        ms(rescue.resolve),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "fresh replica rescues, authority crash",
        rescue.fresh_from_replica as f64,
        "count",
    ));
    let restart = measure_restart_recovery(EXP13_SEED);
    rep.push(ExpRow::measured_only(
        "rounds to rebuild restarted replica",
        f64::from(restart.rounds),
        "rounds",
    ));
    rep.push(ExpRow::measured_only(
        "entries re-learned after restart",
        f64::from(restart.adopted),
        "entries",
    ));
    let periodic = measure_periodic(EXP13_SEED);
    rep.push(ExpRow::measured_only(
        "periods to catch silent divergence",
        periodic.periods_to_converge,
        "periods",
    ));
    let sweep = measure_sweep();
    for row in &sweep {
        let tag = if row.hash_equal {
            "identical"
        } else {
            "DIVERGED"
        };
        rep.push(ExpRow::measured_only(
            format!("merkle round bytes @ {} names ({tag})", row.names),
            row.merkle.bytes() as f64,
            "bytes",
        ));
        rep.push(ExpRow::measured_only(
            format!("merkle probes @ {} names", row.names),
            f64::from(row.merkle.probes),
            "probes",
        ));
        rep.push(ExpRow::measured_only(
            format!("merkle work units @ {} names", row.names),
            row.merkle.work() as f64,
            "units",
        ));
        if let Some(flat) = row.flat {
            rep.push(ExpRow::measured_only(
                format!("flat round bytes @ {} names", row.names),
                flat.bytes() as f64,
                "bytes",
            ));
        }
    }
    if let (Some(first), Some(last)) = (sweep.first(), sweep.last()) {
        rep.push(ExpRow::measured_only(
            "merkle bytes growth, 1e3 to 1e6 names (bound: 2x)",
            last.merkle.bytes() as f64 / first.merkle.bytes() as f64,
            "x",
        ));
        rep.push(ExpRow::measured_only(
            "merkle work growth, 1e3 to 1e6 names (bound: 2x)",
            last.merkle.work() as f64 / first.merkle.work() as f64,
            "x",
        ));
    }
    let flat_first = sweep.first().and_then(|r| r.flat);
    let flat_last = sweep
        .iter()
        .rev()
        .find_map(|r| r.flat.map(|f| (r.names, f)));
    if let (Some(f0), Some((n, fl))) = (flat_first, flat_last) {
        rep.push(ExpRow::measured_only(
            format!("flat bytes growth, 1e3 to {n} names (linear)"),
            fl.bytes() as f64 / f0.bytes() as f64,
            "x",
        ));
    }
    let diff_m = measure_convergence_with(EXP13_SEED, Duration::from_millis(200), 8, false);
    let diff_f = measure_convergence_with(EXP13_SEED, Duration::from_millis(200), 8, true);
    rep.push(ExpRow::measured_only(
        "merkle vs flat adopted delta, in-world (must be 0)",
        f64::from(diff_m.adopted.abs_diff(diff_f.adopted)),
        "entries",
    ));
    rep.push(ExpRow::measured_only(
        "replica probe rounds, merkle path (200 ms cut)",
        f64::from(diff_m.probe_rounds),
        "probes",
    ));
    rep.note(
        "the sync digest is a Merkle tree over the table (fanout 16, 5 levels, root = \
         table_hash): a round walks only diverging subtrees, so bytes and work track the \
         divergence, not the table — within 2x from 1e3 to 1e6 names while the flat \
         oracle's whole-table digest grows linearly",
    );
    rep.note(
        "one digest→delta→apply round after each heal makes the replica's versioned table \
         hash-identical to the authority's — tombstones propagate deletes, per-entry epochs \
         stamped at the authority decide every conflict, and the round is atomic",
    );
    rep.note(
        "clearing Suspect costs zero client→authority queries: the round itself is the \
         authority vouching for the table, so post-sync binding queries answer Fresh from \
         the replica (EXP-12's rescue was Suspect; the same rescue is now Fresh)",
    );
    rep.note(
        "sync triggers are scheduled events — partition heals (heal_times + notify_at), \
         crash recoveries (post-restart pull), and a bounded periodic schedule for \
         divergence no fault event announces",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_converges_for_every_width_and_divergence() {
        for width in CUT_WIDTHS {
            for divergence in DIVERGENCES {
                let out = measure_convergence(EXP13_SEED, width, divergence);
                assert!(out.hash_equal, "{out:?}");
                assert_eq!(out.rounds, 1, "{out:?}");
                // The delta covers at least the divergence ops (plus the
                // replica's unverified preloads).
                assert!(out.adopted >= divergence, "{out:?}");
                // The walk pays one request/reply per diverging tree
                // level (6 at full depth), so the bound is wider than the
                // flat path's single exchange — but still one round, not
                // a retry ladder.
                assert!(
                    out.sync_latency < Duration::from_millis(50),
                    "convergence must take tens of milliseconds, not another ladder: {out:?}"
                );
            }
        }
    }

    #[test]
    fn post_sync_resolve_is_fresh_with_zero_authority_queries() {
        let out = measure_convergence(EXP13_SEED, Duration::from_millis(200), 8);
        // The acceptance criterion: after the heal-scheduled round, the
        // replica answers Fresh and the authority's binding-query counter
        // never moves — anti-entropy cleared Suspect, not client probes.
        assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
        assert_eq!(out.authority_queries, 0, "{out:?}");
    }

    #[test]
    fn crash_rescue_after_sync_is_fresh_not_suspect() {
        let out = measure_fresh_rescue(EXP13_SEED);
        assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
        assert_eq!(out.fresh_from_replica, 1, "{out:?}");
    }

    #[test]
    fn restarted_replica_relearns_the_table_in_one_round() {
        let out = measure_restart_recovery(EXP13_SEED);
        assert_eq!(out.rounds, 1, "{out:?}");
        assert!(out.hash_equal, "{out:?}");
        // The whole table (three login-script bindings) was re-earned.
        assert!(out.adopted >= 3, "{out:?}");
    }

    #[test]
    fn periodic_sync_catches_silent_divergence_within_one_period() {
        let out = measure_periodic(EXP13_SEED);
        assert!(out.hash_equal, "{out:?}");
        assert!(out.rounds >= 1, "{out:?}");
        assert!(out.periods_to_converge <= 1.0, "{out:?}");
    }

    #[test]
    fn sweep_cost_is_divergence_bound_not_table_bound() {
        let sweep = measure_sweep();
        for row in &sweep {
            assert!(row.hash_equal, "{row:?}");
            // The walk is depth-bounded: one probe per tree level at most.
            assert!(row.merkle.probes <= 6, "{row:?}");
        }
        let (first, last) = (&sweep[0], &sweep[sweep.len() - 1]);
        assert_eq!(first.names, 1_000);
        assert_eq!(last.names, 1_000_000);
        // The acceptance bound: Merkle round cost within 2x across three
        // orders of magnitude of table growth, at fixed divergence.
        assert!(
            last.merkle.bytes() as f64 <= 2.0 * first.merkle.bytes() as f64,
            "merkle bytes not divergence-bound: {first:?} -> {last:?}"
        );
        assert!(
            last.merkle.work() as f64 <= 2.0 * first.merkle.work() as f64,
            "merkle work not divergence-bound: {first:?} -> {last:?}"
        );
        // The flat oracle grows linearly with the table (within the cap).
        let f0 = sweep[0].flat.expect("flat oracle runs at 1e3");
        let f2 = sweep[2].flat.expect("flat oracle runs at 1e5");
        assert!(
            f2.bytes() >= 50 * f0.bytes(),
            "flat oracle should grow ~linearly: {f0:?} -> {f2:?}"
        );
        assert!(sweep[3].flat.is_none(), "flat oracle capped at 1e5");
    }

    #[test]
    fn merkle_and_flat_worlds_converge_identically() {
        let w = Duration::from_millis(200);
        let m = measure_convergence_with(EXP13_SEED, w, 8, false);
        let f = measure_convergence_with(EXP13_SEED, w, 8, true);
        assert!(m.hash_equal, "{m:?}");
        assert!(f.hash_equal, "{f:?}");
        assert_eq!(m.adopted, f.adopted, "{m:?} vs {f:?}");
        assert_eq!(m.rounds, 1, "{m:?}");
        assert_eq!(f.rounds, 1, "{f:?}");
        assert_eq!(m.staleness, Some(Staleness::Fresh), "{m:?}");
        assert_eq!(f.staleness, Some(Staleness::Fresh), "{f:?}");
        assert_eq!(m.authority_queries, 0, "{m:?}");
        assert_eq!(f.authority_queries, 0, "{f:?}");
        // The witness that the Merkle walk carried the round — and that
        // the oracle flag really forces the legacy path.
        assert!(m.probe_rounds > 0, "{m:?}");
        assert_eq!(f.probe_rounds, 0, "{f:?}");
    }

    #[test]
    fn equal_seeds_give_equal_event_hashes() {
        let w = Duration::from_millis(200);
        assert_eq!(
            measure_convergence(EXP13_SEED, w, 8).event_hash,
            measure_convergence(EXP13_SEED, w, 8).event_hash
        );
        assert_eq!(
            measure_convergence_with(EXP13_SEED, w, 8, true).event_hash,
            measure_convergence_with(EXP13_SEED, w, 8, true).event_hash
        );
        assert_eq!(
            measure_fresh_rescue(EXP13_SEED).event_hash,
            measure_fresh_rescue(EXP13_SEED).event_hash
        );
        assert_eq!(
            measure_restart_recovery(EXP13_SEED).event_hash,
            measure_restart_recovery(EXP13_SEED).event_hash
        );
        assert_eq!(
            measure_periodic(EXP13_SEED).event_hash,
            measure_periodic(EXP13_SEED).event_hash
        );
    }
}
