//! Regenerates every experiment in the index (EXP-1 .. EXP-13) and prints
//! the paper-vs-measured tables used in EXPERIMENTS.md.
fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    for rep in vsim::run_all() {
        if markdown {
            println!("{}", rep.to_markdown());
        } else {
            println!("{rep}");
        }
    }
}
