//! Regenerates EXP-4 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp4::run());
}
