//! Regenerates EXP-13 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp13::run());
}
