//! Regenerates EXP-11 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp11::run());
}
