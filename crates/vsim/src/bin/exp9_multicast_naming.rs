//! Regenerates EXP-9 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp9::run());
}
