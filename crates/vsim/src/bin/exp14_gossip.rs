//! Regenerates EXP-14 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp14::run());
}
