//! Regenerates EXP-6 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp6::run());
}
