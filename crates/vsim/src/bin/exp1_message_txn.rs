//! Regenerates EXP-1 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp1::run());
}
