//! Regenerates EXP-3 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp3::run());
}
