//! Regenerates EXP-8 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp8::run());
}
