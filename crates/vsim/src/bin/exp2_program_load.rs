//! Regenerates EXP-2 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp2::run());
}
