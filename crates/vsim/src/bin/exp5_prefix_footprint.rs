//! Regenerates EXP-5 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp5::run());
}
