//! Regenerates EXP-10 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp10::run());
}
