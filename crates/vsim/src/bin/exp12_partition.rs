//! Regenerates EXP-12 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp12::run());
}
