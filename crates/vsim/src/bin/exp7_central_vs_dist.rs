//! Regenerates EXP-7 of the experiment index (see DESIGN.md).
fn main() {
    println!("{}", vsim::exp7::run());
}
