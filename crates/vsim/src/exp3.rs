//! EXP-3 — Sequential file reading over the I/O protocol (paper §3.1).
//!
//! Paper: "with a disk delivering a 512 byte page every 15 milliseconds, a
//! file can be read sequentially averaging 17.13 milliseconds per page.
//! This is comparable to the performance of highly tuned special-purpose
//! file access protocols."

use crate::report::{ExpReport, ExpRow};
use std::time::Duration;
use vkernel::SimDomain;
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode, Scope};
use vruntime::NameClient;
use vservers::{file_server, FileServerConfig};

/// Reads a `pages`-page file sequentially from a remote file server with
/// the 1984 disk model; returns average virtual time per page.
pub fn measure_read(params: Params1984, pages: usize) -> Duration {
    let domain = SimDomain::new(params.clone());
    let (ws, server_machine) = (domain.add_host(), domain.add_host());
    let page = params.disk_page_bytes;
    let content = vec![0xABu8; pages * page];
    let fs = domain.spawn(server_machine, "fs", move |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                service_scope: Some(Scope::Both),
                preload: vec![("big.dat".into(), content)],
                simulate_disk: true,
                ..FileServerConfig::default()
            },
        )
    });
    domain
        .client(ws, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
            let mut handle = client
                .open("big.dat", OpenMode::Read)
                .unwrap()
                .with_block(page);
            let t0 = ctx.now();
            let mut total = 0usize;
            while let Some(chunk) = handle.read_next(ctx).unwrap() {
                total += chunk.len();
            }
            assert_eq!(total, pages * page);
            (ctx.now() - t0) / pages as u32
        })
        .expect("read completed")
}

/// Reads a `pages`-page stream from a server that *prefetches*: the disk
/// streams the next page while the previous reply is in flight (the
/// read-ahead design V file servers used). Returns average time per page.
pub fn measure_read_ahead(params: Params1984, pages: usize) -> Duration {
    use bytes::Bytes;
    use vproto::{fields, Message, RequestCode};

    let domain = vkernel::SimDomain::new(params.clone());
    let (ws, server_machine) = (domain.add_host(), domain.add_host());
    let page = params.disk_page_bytes;
    let disk_latency = params.t_disk_page;
    let server = domain.spawn(server_machine, "prefetch-fs", move |ctx| {
        // The disk streams sequentially: page N is ready at
        // stream_start + N * 15 ms, independent of request arrival.
        let mut stream_start: Option<Duration> = None;
        let mut next_page = 0u32;
        while let Ok(rx) = ctx.receive() {
            let start = *stream_start.get_or_insert_with(|| ctx.now());
            let ready_at = start + disk_latency * (next_page + 1);
            let now = ctx.now();
            if ready_at > now {
                ctx.sleep(ready_at - now);
            }
            next_page += 1;
            let mut m = Message::ok();
            m.set_word(fields::W_IO_COUNT, page as u16);
            ctx.reply(rx, m, Bytes::from(vec![0u8; page])).ok();
        }
    });
    domain
        .client(ws, move |ctx| {
            let t0 = ctx.now();
            for _ in 0..pages {
                let mut msg = Message::request(RequestCode::ReadInstance);
                msg.set_word(fields::W_IO_COUNT, page as u16);
                let r = ctx.send(server, msg, Bytes::new(), page).unwrap();
                assert_eq!(r.data.len(), page);
            }
            (ctx.now() - t0) / pages as u32
        })
        .expect("read-ahead run")
}

/// Runs EXP-3.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-3",
        "sequential 512-byte-page file read, 15 ms/page disk (paper §3.1)",
    );
    let per_page = measure_read(Params1984::ethernet_3mbit(), 64);
    rep.push(ExpRow::with_paper(
        "per page, remote server, 3 Mbit",
        17.13,
        per_page.as_nanos() as f64 / 1e6,
        "ms",
    ));
    let per_page_10 = measure_read(Params1984::ethernet_10mbit(), 64);
    rep.push(ExpRow::measured_only(
        "per page, remote server, 10 Mbit",
        per_page_10.as_nanos() as f64 / 1e6,
        "ms",
    ));
    let ahead = measure_read_ahead(Params1984::ethernet_3mbit(), 64);
    rep.push(ExpRow::measured_only(
        "per page with server read-ahead",
        ahead.as_nanos() as f64 / 1e6,
        "ms",
    ));
    rep.push(ExpRow::measured_only("disk floor", 15.0, "ms"));
    rep.note(
        "the paper's 17.13 ms lies between our no-overlap model (full request+reply IPC \
         per page on top of the disk) and the full read-ahead model (disk-bound): the \
         real server overlapped some, not all, of the IPC with the disk",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_page_is_disk_dominated_and_near_paper() {
        let rep = run();
        let r = rep.row("per page, remote server, 3 Mbit").unwrap();
        // Disk floor is a hard lower bound; paper says 17.13; our serial
        // model lands within +20%.
        assert!(r.measured >= 15.0, "{}", r.measured);
        assert!(r.deviation_pct().unwrap().abs() < 20.0, "{:?}", r);
    }

    #[test]
    fn paper_value_bracketed_by_serial_and_readahead_models() {
        let serial = measure_read(Params1984::ethernet_3mbit(), 32).as_nanos() as f64 / 1e6;
        let ahead = measure_read_ahead(Params1984::ethernet_3mbit(), 32).as_nanos() as f64 / 1e6;
        assert!(
            ahead <= 17.13 && 17.13 <= serial,
            "paper 17.13 not bracketed by [{ahead}, {serial}]"
        );
        // Read-ahead is disk-bound: essentially 15 ms/page.
        assert!((ahead - 15.0).abs() < 1.0, "{ahead}");
    }

    #[test]
    fn average_is_independent_of_file_length() {
        let a = measure_read(Params1984::ethernet_3mbit(), 8);
        let b = measure_read(Params1984::ethernet_3mbit(), 32);
        let diff = a.as_nanos().abs_diff(b.as_nanos());
        assert!(diff < 1_000_000, "per-page averages differ: {a:?} vs {b:?}");
    }
}
