//! EXP-1 — The basic message transaction (paper §3.1, Figure 1).
//!
//! Paper: "The time for a Send-Receive-Reply sequence using 32-byte
//! messages between two processes on separate 10 MHz SUN workstations
//! connected by a 3 Mbit Ethernet is 2.56 milliseconds."

use crate::report::{ExpReport, ExpRow};
use bytes::Bytes;
use std::time::Duration;
use vkernel::{Ipc, SimDomain};
use vnet::Params1984;
use vproto::{Message, RequestCode};

fn echo_server(ctx: &dyn Ipc) {
    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        ctx.reply(rx, msg, Bytes::new()).ok();
    }
}

/// Measures one 32-byte transaction between `client_host` and a server on
/// `server_host`, averaged over `iters` rounds.
pub fn measure_txn(params: Params1984, same_host: bool, iters: u32) -> Duration {
    let domain = SimDomain::new(params);
    let a = domain.add_host();
    let b = if same_host { a } else { domain.add_host() };
    let server = domain.spawn(b, "echo", echo_server);
    domain
        .client(a, move |ctx| {
            let t0 = ctx.now();
            for _ in 0..iters {
                ctx.send(server, Message::request(RequestCode::Echo), Bytes::new(), 0)
                    .unwrap();
            }
            (ctx.now() - t0) / iters
        })
        .expect("client completed")
}

/// Placement helper used by the report rows.
fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-1.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-1",
        "32-byte Send-Receive-Reply message transaction (paper §3.1, Figure 1)",
    );
    let remote3 = measure_txn(Params1984::ethernet_3mbit(), false, 100);
    let local3 = measure_txn(Params1984::ethernet_3mbit(), true, 100);
    let remote10 = measure_txn(Params1984::ethernet_10mbit(), false, 100);
    rep.push(ExpRow::with_paper(
        "remote transaction, 3 Mbit Ethernet",
        2.56,
        ms(remote3),
        "ms",
    ));
    rep.push(ExpRow::with_paper(
        "local transaction (SOSP'83 kernel measurement)",
        0.77,
        ms(local3),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "remote transaction, 10 Mbit Ethernet",
        ms(remote10),
        "ms",
    ));
    rep.note("remote/local ratio is the structural cost of crossing the network kernel");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values_exactly() {
        let rep = run();
        let remote = rep.row("remote transaction, 3 Mbit Ethernet").unwrap();
        assert!((remote.measured - 2.56).abs() < 0.01, "{}", remote.measured);
        let local = rep
            .row("local transaction (SOSP'83 kernel measurement)")
            .unwrap();
        assert!((local.measured - 0.77).abs() < 0.01, "{}", local.measured);
    }

    #[test]
    fn faster_network_helps_but_cpu_dominates() {
        let rep = run();
        let r3 = rep
            .row("remote transaction, 3 Mbit Ethernet")
            .unwrap()
            .measured;
        let r10 = rep
            .row("remote transaction, 10 Mbit Ethernet")
            .unwrap()
            .measured;
        assert!(r10 < r3);
        // Small packets are CPU-bound: 10 Mbit helps by < 25%.
        assert!(r10 > r3 * 0.75);
    }
}
