//! EXP-9 — Multicast name mapping over a server group (paper §7 future
//! work; also §2.2's "another method").
//!
//! "A near-term project is to replace the low-level service naming using
//! GetPid and SetPid with a mechanism based on multicast Send. Using this
//! mechanism, a single context could be implemented transparently by a
//! group of servers working in cooperation."
//!
//! Here a context is implemented by N servers, each owning a share of the
//! names. A client maps a name by multicasting a `QueryName` to the group;
//! the owner replies, the others discard the request. Compared against the
//! prefix-server indirection for the same mapping.

use crate::report::{ExpReport, ExpRow};
use bytes::Bytes;
use std::time::Duration;
use vkernel::{GroupId, Ipc, SimDomain};
use vnaming::{build_csname_request, CsRequest};
use vnet::Params1984;
use vproto::{fields, ContextId, CsName, Message, ReplyCode, RequestCode};

/// A group member owning every name that starts with its tag digit.
fn group_member(ctx: &dyn Ipc, group: GroupId, tag: u8) {
    ctx.join_group(group).expect("join group");
    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if !msg.is_csname_request() {
            drop(rx);
            continue;
        }
        let payload = match ctx.move_from(&rx) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let req = match CsRequest::parse(&msg, &payload) {
            Ok(r) => r,
            Err(_) => {
                drop(rx);
                continue;
            }
        };
        // Own the name? First byte selects the owner.
        if req.remaining().first() == Some(&tag) {
            let mut m = Message::ok();
            m.set_context_id(ContextId::DEFAULT);
            m.set_pid_at(fields::W_PID_LO, ctx.my_pid());
            ctx.reply(rx, m, Bytes::new()).ok();
        } else {
            // Not ours: discard, exactly as the paper's §2.2 describes —
            // the cost is the examine-and-discard work on every member.
            drop(rx);
        }
    }
}

/// Maps one name via group multicast in a domain with `members` servers,
/// returning the mapping latency.
pub fn measure_multicast_map(params: Params1984, members: usize) -> Duration {
    let domain = SimDomain::new(params);
    let ws = domain.add_host();
    let group = {
        let (tx, rx) = crossbeam::channel::bounded(1);
        domain.spawn(ws, "setup", move |ctx| {
            let _ = tx.send(ctx.create_group());
        });
        domain.run();
        rx.recv().expect("group created")
    };
    for i in 0..members {
        let host = domain.add_host();
        let tag = b'0' + (i as u8 % 10);
        domain.spawn(host, "member", move |ctx| group_member(ctx, group, tag));
    }
    domain.run();
    domain
        .client(ws, move |ctx| {
            // Name owned by the member tagged '3' (exists for members>3).
            let name = CsName::from("3-things/obj");
            let (msg, payload) =
                build_csname_request(RequestCode::QueryName, ContextId::DEFAULT, &name, &[]);
            let t0 = ctx.now();
            let reply = ctx.send_group(group, msg, payload).unwrap();
            assert_eq!(reply.msg.reply_code(), ReplyCode::Ok);
            ctx.now() - t0
        })
        .expect("multicast map")
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-9.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-9",
        "multicast name mapping by a server group (paper §7 future work)",
    );
    for &members in &[4usize, 8, 16] {
        let t = measure_multicast_map(Params1984::ethernet_3mbit(), members);
        rep.push(ExpRow::measured_only(
            format!("group QueryName, {members} member servers"),
            ms(t),
            "ms",
        ));
    }
    // Reference: the prefix-server route for the same kind of mapping costs
    // one local transaction + prefix processing + one forwarded transaction
    // (measured in EXP-4 as ≈5.2 ms for a local target).
    rep.push(ExpRow::measured_only(
        "reference: prefix-server mapping (EXP-4 prefix+local open)",
        5.14,
        "ms",
    ));
    rep.note("one packet on the wire reaches all members; the growth with group size is the per-kernel filter cost the paper warns about in §2.2");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_mapping_succeeds_and_is_transaction_scale() {
        let t = measure_multicast_map(Params1984::ethernet_3mbit(), 8);
        let v = ms(t);
        // One multicast + one unicast reply: a few ms.
        assert!((2.0..8.0).contains(&v), "{v}");
    }

    #[test]
    fn cost_grows_with_group_size() {
        let t4 = measure_multicast_map(Params1984::ethernet_3mbit(), 4);
        let t16 = measure_multicast_map(Params1984::ethernet_3mbit(), 16);
        assert!(t16 > t4, "{t4:?} vs {t16:?}");
    }

    #[test]
    fn owner_actually_answers() {
        // Implicit in measure (assert inside), but check a different owner.
        let domain = SimDomain::new(Params1984::ethernet_3mbit());
        let ws = domain.add_host();
        let group = {
            let (tx, rx) = crossbeam::channel::bounded(1);
            domain.spawn(ws, "setup", move |ctx| {
                let _ = tx.send(ctx.create_group());
            });
            domain.run();
            rx.recv().unwrap()
        };
        let mut member_pids = Vec::new();
        for i in 0..6usize {
            let host = domain.add_host();
            let tag = b'0' + i as u8;
            member_pids
                .push(domain.spawn(host, "member", move |ctx| group_member(ctx, group, tag)));
        }
        domain.run();
        let owner_of_5 = member_pids[5];
        let replier = domain
            .client(ws, move |ctx| {
                let name = CsName::from("5xyz");
                let (msg, payload) =
                    build_csname_request(RequestCode::QueryName, ContextId::DEFAULT, &name, &[]);
                let reply = ctx.send_group(group, msg, payload).unwrap();
                reply.msg.pid_at(fields::W_PID_LO)
            })
            .unwrap();
        assert_eq!(replier, owner_of_5);
    }
}
