//! EXP-5 — Context prefix server footprint (paper §6).
//!
//! Paper: "The context prefix server is 4.5 kilobytes of code plus 2.6
//! kilobytes of data (mostly space reserved for its context directory)
//! when compiled for the Motorola 68000. This space cost is not
//! significant."
//!
//! Code size is not comparable across a 68000 and a modern ISA, so this
//! experiment reports the *data* footprint of our prefix table at several
//! sizes and checks the paper's actual claim: the cost is small (a few KB
//! for a realistic table).

use crate::report::{ExpReport, ExpRow};
use vservers::prefix_footprint_bytes;

/// A typical user's prefix-name lengths (paper §6 lists standard prefixes
/// plus several per file server).
fn typical_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 5 {
            0 => format!("storage{i}"),
            1 => format!("home{i}"),
            2 => format!("bin{i}"),
            3 => format!("tmp{i}"),
            _ => format!("fs{i}-home"),
        })
        .collect()
}

/// Footprint in bytes for a table of `n` typical prefixes.
pub fn footprint(n: usize) -> usize {
    let names = typical_names(n);
    let total: usize = names.iter().map(|s| s.len()).sum();
    prefix_footprint_bytes(n, total)
}

/// Runs EXP-5.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new("EXP-5", "context prefix server space cost (paper §6)");
    // The paper reserved 2.6 KB of data for the directory; our analogue is
    // the in-memory table. Report several table sizes.
    for n in [8usize, 32, 128] {
        rep.push(ExpRow::measured_only(
            format!("prefix table, {n} entries"),
            footprint(n) as f64,
            "bytes",
        ));
    }
    rep.push(ExpRow::with_paper(
        "data footprint at 32 prefixes vs paper's reserved data",
        2600.0,
        footprint(32) as f64,
        "bytes",
    ));
    rep.note("paper's 4.5 KB M68000 code size has no meaningful modern analogue; the claim under test is that prefix-server state is insignificant, which holds");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_kilobytes_not_megabytes() {
        let rep = run();
        for row in &rep.rows {
            assert!(row.measured < 64.0 * 1024.0, "{row:?}");
            assert!(row.measured > 0.0);
        }
    }

    #[test]
    fn footprint_grows_linearly() {
        let f8 = footprint(8) as f64;
        let f128 = footprint(128) as f64;
        let ratio = f128 / f8;
        assert!((8.0..32.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn typical_table_is_same_order_as_paper() {
        // Same order of magnitude as the paper's 2.6 KB.
        let f = footprint(32) as f64;
        assert!((260.0..26_000.0).contains(&f), "{f}");
    }
}
