//! Experiment harness regenerating every quantitative claim of Cheriton &
//! Mann, *Uniform Access to Distributed Name Interpretation in the
//! V-System* (ICDCS 1984).
//!
//! Each experiment is a pure function returning an [`report::ExpReport`]
//! (paper value vs measured value per row), shared by:
//!
//! * the `exp*` binaries (`cargo run -p vsim --bin exp4_open_table`),
//! * the reproduction tests (`cargo test -p vsim`), which assert shape
//!   fidelity against the paper, and
//! * EXPERIMENTS.md, whose tables are these reports verbatim.
//!
//! All timing experiments run on the deterministic virtual-time kernel
//! ([`vkernel::SimDomain`]) with the calibrated 1984 cost model
//! ([`vnet::Params1984`]); see DESIGN.md §4 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp1;
pub mod exp10;
pub mod exp11;
pub mod exp12;
pub mod exp13;
pub mod exp14;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod exp7;
pub mod exp8;
pub mod exp9;
pub mod report;
pub mod world;

pub use report::{ExpReport, ExpRow};
pub use world::SimWorld;

/// Runs every experiment, in order. Used by the `all_experiments` binary
/// and by EXPERIMENTS.md generation.
pub fn run_all() -> Vec<ExpReport> {
    vec![
        exp1::run(),
        exp2::run(),
        exp3::run(),
        exp4::run(),
        exp5::run(),
        exp6::run(),
        exp7::run(),
        exp8::run(),
        exp9::run(),
        exp10::run(),
        exp11::run(),
        exp12::run(),
        exp13::run(),
        exp14::run(),
    ]
}
