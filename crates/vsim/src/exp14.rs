//! EXP-14 — Replica↔replica gossip and the bounded-tombstone GC horizon.
//!
//! EXP-13 closed the replica-freshness loop *through the authority*: one
//! digest → delta → apply round per heal makes a replica hash-identical
//! to the authoritative table. Two holes remained, and this experiment
//! measures the machinery that closes them:
//!
//! * **Gossip while the authority is down** — with the authority
//!   partitioned away, replicas run the same digest → delta rounds
//!   *against each other* over the replica multicast group (phase-1 probe
//!   picks a peer, the round itself is unicast). A cold replica converges
//!   to its synced peer — equal [`vservers::SyncTable::table_hash`] —
//!   entirely inside the cut window, but everything it adopts stays
//!   *Suspect* until the first post-heal authority round vouches for it:
//!   gossip spreads data, only the authority spreads certainty.
//!   Gossip triggers are **staggered** (distinct offsets per replica off
//!   [`vkernel::SimDomain::cut_times`]) by more than a whole round: two
//!   replicas with overlapping rounds would interlock inside
//!   `send_group`, since each is blocked sending while the other's probe
//!   waits in its queue — and a round is now a multi-probe Merkle walk,
//!   not a single digest exchange.
//! * **Tombstones stay bounded under churn** — deletes are kept as
//!   tombstones so reconciliation can propagate them, but an unbounded
//!   graveyard is a slow leak (Demers et al.'s death-certificate
//!   problem). The authority tracks each replica's synced watermark from
//!   its digests, computes the GC horizon = min watermark across known
//!   replicas, and drops tombstones at or below it; replicas collect on
//!   the horizon each delta advertises. Under sustained define/delete
//!   churn with periodic replica pulls, the live tombstone count must be
//!   a *sawtooth* — non-monotonic, peak well below the total number of
//!   deletes — and must drain to zero once churn stops and every replica
//!   syncs past the last delete.
//!
//! Everything is seeded and scheduled; equal seeds give bit-equal
//! counters and kernel event hashes.

use crate::report::{ExpReport, ExpRow};
use crate::world::{boot_world_cfg, SimWorld, WorldConfig};
use bytes::Bytes;
use std::time::Duration;
use vnet::{FaultConfig, Params1984, Partition};
use vproto::{ContextId, ContextPair, Message, Pid, RequestCode, SyncStatusRec};
use vruntime::{NameClient, Staleness};
use vservers::DegradedPrefixConfig;

/// Default seed for the experiment's fault schedules.
pub const EXP14_SEED: u64 = 0x1984_0C14;

/// Define/delete pairs the churn driver issues in the tombstone scenario.
pub const CHURN_OPS: u32 = 16;

/// The gossip world: degraded-mode authority on the workstation, the
/// preloaded replica plus one *cold* replica (empty boot table) on the
/// server machine, all replicas in one multicast group with anti-entropy
/// pointed at the authority.
fn gossip_world(seed: u64) -> SimWorld {
    boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(seed)),
        degraded: Some(DegradedPrefixConfig::default()),
        replica: true,
        sync_replica: true,
        extra_replicas: 1,
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    })
}

fn sleep_until(ctx: &dyn vkernel::Ipc, at: Duration) {
    let now = ctx.now();
    if at > now {
        ctx.sleep(at - now);
    }
}

/// Reads a server's `SyncStatus` record (None if it cannot be reached or
/// decoded).
fn sync_status(ctx: &dyn vkernel::Ipc, server: Pid) -> Option<SyncStatusRec> {
    let reply = ctx
        .send(
            server,
            Message::request(RequestCode::SyncStatus),
            Bytes::new(),
            4096,
        )
        .ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    SyncStatusRec::decode(&reply.data).ok()
}

/// Outcome of the authority-down gossip-convergence scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipOutcome {
    /// Gossip rounds the cold replica completed (must be ≥ 1).
    pub gossip_rounds: u32,
    /// Entries the cold replica adopted from its gossip peer (the whole
    /// table: ≥ 3).
    pub gossip_adopted: u32,
    /// Cold replica's table hash == peer replica's, observed *inside* the
    /// cut window.
    pub hash_equal_replicas: bool,
    /// The convergence observation really happened while the authority
    /// was unreachable (virtual now < heal time).
    pub authority_down: bool,
    /// How a resolve through the cold replica answered during the cut —
    /// must be `Suspect`: gossip never vouches.
    pub staleness_during_cut: Option<Staleness>,
    /// The same resolve after the post-heal authority round — must be
    /// `Fresh`: the authority vouched for what gossip delivered.
    pub staleness_after_heal: Option<Staleness>,
    /// Entries the post-heal authority round promoted unverified →
    /// verified at the cold replica.
    pub promoted_after_heal: u32,
    /// Merkle subtree probes the cold replica's rounds drove, observed
    /// inside the cut — the witness that gossip itself rode the walk (a
    /// flat-digest gossip round would leave this 0).
    pub probe_rounds_during_cut: u32,
    /// Kernel event-stream hash at quiescence (determinism witness).
    pub event_hash: u64,
}

/// Syncs the preloaded replica once, cuts the workstation (authority) off
/// for 140 ms, and schedules **staggered** gossip triggers inside the cut
/// window off [`vkernel::SimDomain::cut_times`]: the cold replica gossips
/// at cut+5 ms, the preloaded one at cut+30 ms. The stagger must exceed a
/// whole gossip round, which is now a multi-probe Merkle walk rather than
/// one exchange — overlapping rounds interlock in `send_group`, each
/// replica blocked sending a probe while the other's probe waits
/// unreceived in its mailbox. The cut itself starts at t0+50 ms, past the
/// end of the vouch round's walk (one request/reply per tree level,
/// ~40 ms from its t0+5 ms trigger), so the partition never severs a walk
/// in flight. A driver on the server machine checks replica↔replica
/// convergence while the authority is still unreachable, then verifies
/// the post-heal authority round flips Suspect to Fresh.
pub fn measure_gossip_convergence(seed: u64) -> GossipOutcome {
    let world = gossip_world(seed);
    let t0 = world.domain.run();
    let peer = world.replica.expect("gossip world has a replica");
    let cold = *world
        .replicas
        .last()
        .expect("gossip world has a cold replica");
    assert_ne!(peer, cold, "extra replica spawned");
    // Vouch the preloaded replica's table before the cut, so gossip has a
    // stamped (epoch > 0) table to spread — gossip deltas never carry
    // epoch-0 preloads.
    world.domain.notify_at(
        t0 + Duration::from_millis(5),
        peer,
        Message::request(RequestCode::SyncPull),
    );
    let cut_start = t0 + Duration::from_millis(50);
    let heal = cut_start + Duration::from_millis(140);
    world.domain.schedule_partition(Partition::between(
        world.workstation,
        world.server_machine,
        cut_start,
        Some(heal),
    ));
    // Staggered gossip inside each cut window, read off the plane's own
    // partition schedule.
    for t in world.domain.cut_times() {
        world.domain.notify_at(
            t + Duration::from_millis(5),
            cold,
            Message::request(RequestCode::SyncGossip),
        );
        world.domain.notify_at(
            t + Duration::from_millis(30),
            peer,
            Message::request(RequestCode::SyncGossip),
        );
    }
    // The authority vouches after the heal, as in EXP-13.
    for t in world.domain.heal_times() {
        world.domain.notify_at(
            t + Duration::from_millis(1),
            cold,
            Message::request(RequestCode::SyncPull),
        );
    }
    let cut_at = cut_start.as_duration();
    let heal_at = heal.as_duration();
    let local_fs = world.local_fs;
    let (rec, hash_equal_replicas, authority_down, during, after, promoted) = world
        .domain
        .client(world.server_machine, move |ctx| {
            sleep_until(ctx, cut_at + Duration::from_millis(12));
            let mut rec = sync_status(ctx, cold);
            let mut polls = 0;
            while rec.is_none_or(|r| r.gossip_rounds == 0) && polls < 100 {
                ctx.sleep(Duration::from_millis(1));
                rec = sync_status(ctx, cold);
                polls += 1;
            }
            // Everything observed from here to the resolve happens while
            // the authority is still cut off.
            let authority_down = ctx.now() < heal_at;
            let peer_rec = sync_status(ctx, peer);
            let hash_equal_replicas = match (rec, peer_rec) {
                (Some(c), Some(p)) => c.table_hash == p.table_hash,
                _ => false,
            };
            // Resolve through the cold replica: everything it knows came
            // over gossip, so the answer must carry the staleness flag.
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            client.set_prefix_server(cold);
            let during = client.resolve("[remote]").ok().map(|b| b.staleness);
            // Past the heal, the scheduled authority round vouches.
            sleep_until(ctx, heal_at + Duration::from_millis(2));
            let mut vouched = sync_status(ctx, cold);
            let mut polls = 0;
            while vouched.is_none_or(|r| r.rounds == 0) && polls < 100 {
                ctx.sleep(Duration::from_millis(1));
                vouched = sync_status(ctx, cold);
                polls += 1;
            }
            let after = client.resolve("[remote]").ok().map(|b| b.staleness);
            let promoted = vouched.map_or(0, |r| r.promoted);
            (
                rec,
                hash_equal_replicas,
                authority_down,
                during,
                after,
                promoted,
            )
        })
        .expect("driver completed");
    GossipOutcome {
        gossip_rounds: rec.map_or(0, |r| r.gossip_rounds),
        gossip_adopted: rec.map_or(0, |r| r.gossip_adopted),
        hash_equal_replicas,
        authority_down,
        staleness_during_cut: during,
        staleness_after_heal: after,
        promoted_after_heal: promoted,
        probe_rounds_during_cut: rec.map_or(0, |r| r.probe_rounds),
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the define/delete churn scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TombstoneBoundOutcome {
    /// Authority tombstone counts sampled every few ms through the churn
    /// and drain phases.
    pub samples: Vec<u32>,
    /// Peak of `samples` — must stay well below [`CHURN_OPS`].
    pub peak: u32,
    /// Tombstones the authority's horizon GC dropped, cumulative.
    pub gc_dropped: u32,
    /// The authority's final GC horizon (> 0 once every replica's
    /// watermark passed a delete).
    pub final_horizon: u64,
    /// Authority tombstones left after churn stopped and both replicas
    /// synced past the last delete — must be 0.
    pub final_tombstones: u32,
    /// Authority and both replicas hash-identical at quiescence.
    pub hash_equal: bool,
    /// Kernel event-stream hash at quiescence (determinism witness).
    pub event_hash: u64,
}

/// Sustained churn: the authority defines and immediately deletes
/// [`CHURN_OPS`] scratch prefixes, 4 ms apart, while both replicas pull
/// every 10 ms (staggered 3 ms from each other). Each pull advances that
/// replica's watermark; each digest the authority receives updates its
/// watermark map, re-computes the horizon, and collects. A driver samples
/// the authority's tombstone count every few ms: the curve must be a
/// bounded sawtooth, and must end at zero.
pub fn measure_tombstone_bound(seed: u64) -> TombstoneBoundOutcome {
    let world = gossip_world(seed);
    let t0 = world.domain.run();
    let peer = world.replica.expect("gossip world has a replica");
    let cold = *world
        .replicas
        .last()
        .expect("gossip world has a cold replica");
    let (local_fs, remote_fs, authority) = (world.local_fs, world.remote_fs, world.prefix);
    let t0_d = t0.as_duration();
    // The churn: define + delete, so every pair leaves one tombstone.
    world.domain.spawn(world.workstation, "churn", move |ctx| {
        sleep_until(ctx, t0_d + Duration::from_millis(5));
        let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        for i in 0..CHURN_OPS {
            client
                .add_prefix(
                    &format!("churn{i}"),
                    ContextPair::new(remote_fs, ContextId::DEFAULT),
                )
                .expect("churn add");
            client
                .delete_prefix(&format!("churn{i}"))
                .expect("churn delete");
            ctx.sleep(Duration::from_millis(4));
        }
    });
    // Periodic, staggered pulls from both replicas: the watermark traffic
    // that feeds the authority's horizon. The schedule runs well past the
    // churn (each define/delete pair costs ~9 ms of simulated traffic, so
    // the churn spans ~150 ms) — the drain phase needs a few rounds after
    // the last delete for every watermark to pass it.
    for k in 0..24u32 {
        world.domain.notify_at(
            t0 + Duration::from_millis(10) + Duration::from_millis(10) * k,
            peer,
            Message::request(RequestCode::SyncPull),
        );
        world.domain.notify_at(
            t0 + Duration::from_millis(13) + Duration::from_millis(10) * k,
            cold,
            Message::request(RequestCode::SyncPull),
        );
    }
    let (samples, auth_rec, peer_rec, cold_rec) = world
        .domain
        .client(world.workstation, move |ctx| {
            sleep_until(ctx, t0_d + Duration::from_millis(8));
            let mut samples = Vec::new();
            for _ in 0..70 {
                if let Some(r) = sync_status(ctx, authority) {
                    samples.push(r.tombstones);
                }
                ctx.sleep(Duration::from_millis(2));
            }
            // Settle past the last scheduled pull before the final reads.
            sleep_until(ctx, t0_d + Duration::from_millis(280));
            (
                samples,
                sync_status(ctx, authority),
                sync_status(ctx, peer),
                sync_status(ctx, cold),
            )
        })
        .expect("driver completed");
    let peak = samples.iter().copied().max().unwrap_or(0);
    let hash_equal = match (auth_rec, peer_rec, cold_rec) {
        (Some(a), Some(p), Some(c)) => a.table_hash == p.table_hash && p.table_hash == c.table_hash,
        _ => false,
    };
    TombstoneBoundOutcome {
        samples,
        peak,
        gc_dropped: auth_rec.map_or(0, |r| r.gc_dropped),
        final_horizon: auth_rec.map_or(0, |r| r.gc_horizon),
        final_tombstones: auth_rec.map_or(u32::MAX, |r| r.tombstones),
        hash_equal,
        event_hash: world.domain.event_hash(),
    }
}

/// `true` iff the sample curve ever *decreases* — the GC sawtooth, as
/// opposed to the monotone ramp an unbounded graveyard draws.
pub fn is_sawtooth(samples: &[u32]) -> bool {
    samples.windows(2).any(|w| w[1] < w[0])
}

/// Runs EXP-14.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-14",
        "Replica gossip under a dead authority; tombstone GC bounded by the watermark horizon",
    );
    let gossip = measure_gossip_convergence(EXP14_SEED);
    let tag = if gossip.hash_equal_replicas && gossip.authority_down {
        "identical, authority down"
    } else {
        "DIVERGED"
    };
    rep.push(ExpRow::measured_only(
        format!("gossip rounds to converge cold replica ({tag})"),
        f64::from(gossip.gossip_rounds),
        "rounds",
    ));
    rep.push(ExpRow::measured_only(
        "entries adopted over gossip (held Suspect)",
        f64::from(gossip.gossip_adopted),
        "entries",
    ));
    rep.push(ExpRow::measured_only(
        "entries vouched by first post-heal authority round",
        f64::from(gossip.promoted_after_heal),
        "entries",
    ));
    let bound = measure_tombstone_bound(EXP14_SEED);
    rep.push(ExpRow::measured_only(
        format!("peak tombstones under {CHURN_OPS} define/delete pairs"),
        f64::from(bound.peak),
        "tombstones",
    ));
    rep.push(ExpRow::measured_only(
        "tombstones collected by the horizon GC",
        f64::from(bound.gc_dropped),
        "tombstones",
    ));
    rep.push(ExpRow::measured_only(
        "tombstones left once every watermark passed the last delete",
        f64::from(bound.final_tombstones),
        "tombstones",
    ));
    rep.note(
        "with the authority partitioned away, replicas reconcile against each other over \
         the replica group (staggered probe → unicast digest round); a cold replica hashes \
         identical to its peer inside the cut window, but every adopted entry answers \
         Suspect until the first post-heal authority round vouches for the table",
    );
    rep.note(
        "the authority GC-collects a tombstone only when the minimum synced watermark over \
         every known replica has passed its epoch, and replicas collect on the horizon \
         each delta advertises — so the tombstone count is a bounded sawtooth under churn \
         and drains to zero when churn stops, instead of growing without bound",
    );
    rep.note(
        "watermarks move only on complete authority rounds (never on gossip), and the \
         delta's epoch header is stamped after the delta is built, so a watermark never \
         claims coverage of a tombstone the replica did not receive",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_replica_converges_over_gossip_while_authority_is_down() {
        let out = measure_gossip_convergence(EXP14_SEED);
        assert!(out.authority_down, "{out:?}");
        assert!(out.hash_equal_replicas, "{out:?}");
        assert!(out.gossip_rounds >= 1, "{out:?}");
        // The whole table (three login-script bindings) came over gossip.
        assert!(out.gossip_adopted >= 3, "{out:?}");
    }

    #[test]
    fn gossip_adoptions_stay_suspect_until_the_authority_vouches() {
        let out = measure_gossip_convergence(EXP14_SEED);
        assert_eq!(
            out.staleness_during_cut,
            Some(Staleness::Suspect),
            "{out:?}"
        );
        assert_eq!(out.staleness_after_heal, Some(Staleness::Fresh), "{out:?}");
        assert!(out.promoted_after_heal >= 3, "{out:?}");
    }

    #[test]
    fn tombstones_stay_bounded_and_drain_under_churn() {
        let out = measure_tombstone_bound(EXP14_SEED);
        // Bounded: the peak never approaches the total number of deletes.
        assert!(out.peak < CHURN_OPS, "graveyard grew unbounded: {out:?}");
        // Non-monotonic: the curve is a sawtooth, not a ramp.
        assert!(is_sawtooth(&out.samples), "no GC ever observed: {out:?}");
        assert!(out.gc_dropped >= CHURN_OPS / 2, "{out:?}");
        // Drained: once both watermarks pass the last delete, nothing is
        // left to hold.
        assert_eq!(out.final_tombstones, 0, "{out:?}");
        assert!(out.final_horizon > 0, "{out:?}");
        assert!(out.hash_equal, "{out:?}");
    }

    #[test]
    fn equal_seeds_give_equal_event_hashes() {
        assert_eq!(
            measure_gossip_convergence(EXP14_SEED).event_hash,
            measure_gossip_convergence(EXP14_SEED).event_hash
        );
        assert_eq!(
            measure_tombstone_bound(EXP14_SEED).event_hash,
            measure_tombstone_bound(EXP14_SEED).event_hash
        );
    }
}
