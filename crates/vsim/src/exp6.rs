//! EXP-6 — Context directories vs name enumeration + per-object query
//! (paper §5.6).
//!
//! The paper argues context directories beat the "enumerate names, then
//! query each object" alternative because the latter "requires an
//! additional operation for each object at considerable cost". This
//! experiment measures both strategies over directories of growing size
//! and reports the cost ratio and the message counts.

use crate::report::{ExpReport, ExpRow};
use std::time::Duration;
use vkernel::SimDomain;
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode, Scope};
use vruntime::NameClient;
use vservers::{file_server, FileServerConfig};

/// Results of listing one directory both ways.
#[derive(Debug, Clone, Copy)]
pub struct ListCosts {
    /// Virtual time for a context-directory read.
    pub directory: Duration,
    /// Message transactions for the directory read.
    pub directory_msgs: usize,
    /// Virtual time for enumerate + per-object query.
    pub enumerate: Duration,
    /// Message transactions for enumerate + query.
    pub enumerate_msgs: usize,
}

/// Measures both listing strategies for a directory of `n` objects on a
/// server placed remotely (`remote = true`) or locally.
pub fn measure_listing(params: Params1984, n: usize, remote: bool) -> ListCosts {
    let domain = SimDomain::new(params);
    let ws = domain.add_host();
    let server_host = if remote { domain.add_host() } else { ws };
    let preload: Vec<(String, Vec<u8>)> = (0..n)
        .map(|i| (format!("dir/file{i:04}.dat"), vec![0u8; 100]))
        .collect();
    let fs = domain.spawn(server_host, "fs", move |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                service_scope: Some(Scope::Both),
                preload,
                ..FileServerConfig::default()
            },
        )
    });
    domain
        .client(ws, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));

            // Strategy A: read the context directory (paper's design).
            let t0 = ctx.now();
            let records = client.list_directory("dir", None).unwrap();
            let t_dir = ctx.now() - t0;
            assert_eq!(records.len(), n);

            // Strategy B: enumerate the names, then query each object.
            // (The enumeration itself is charged as one directory-style
            // read of just the names; each query is a full transaction.)
            let t1 = ctx.now();
            let names: Vec<String> = records
                .iter()
                .map(|r| format!("dir/{}", r.name.to_string_lossy()))
                .collect();
            let mut queried = 0usize;
            for name in &names {
                let d = client.query(name).unwrap();
                queried += usize::from(!d.name.is_empty());
            }
            let t_enum_queries = ctx.now() - t1;
            assert_eq!(queried, n);

            // Message accounting: directory = open + data reads + final EOF
            // read + release; enumerate = the same enumeration read + one
            // query transaction per object.
            let block = 512usize;
            let total_bytes: usize = {
                // One descriptor record ≈ what the server fabricates; use
                // the actual read size from the handle: re-open to get size.
                let h = client.open("dir", OpenMode::Directory).unwrap();
                let size = h.size() as usize;
                h.close(ctx).unwrap();
                size
            };
            let dir_msgs = 1 + total_bytes.div_ceil(block) + 1 + 1;
            let enum_msgs = dir_msgs + n;

            ListCosts {
                directory: t_dir,
                directory_msgs: dir_msgs,
                enumerate: t_dir + t_enum_queries,
                enumerate_msgs: enum_msgs,
            }
        })
        .expect("listing completed")
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-6.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-6",
        "context directory read vs enumerate+query (paper §5.6 argument)",
    );
    for &n in &[4usize, 16, 64, 256] {
        let c = measure_listing(Params1984::ethernet_3mbit(), n, true);
        rep.push(ExpRow::measured_only(
            format!("directory read, {n} objects (remote)"),
            ms(c.directory),
            "ms",
        ));
        rep.push(ExpRow::measured_only(
            format!("enumerate+query, {n} objects (remote)"),
            ms(c.enumerate),
            "ms",
        ));
        rep.push(ExpRow::measured_only(
            format!("speedup at {n} objects"),
            ms(c.enumerate) / ms(c.directory),
            "x",
        ));
        rep.push(ExpRow::measured_only(
            format!("messages: directory vs enumerate at {n}"),
            c.enumerate_msgs as f64 - c.directory_msgs as f64,
            "msgs",
        ));
    }
    rep.note("the paper gives no numbers here; the claim under test is the shape: enumerate+query costs one extra transaction per object, so the directory approach wins and the gap grows linearly");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_always_cheaper_remote() {
        for n in [4usize, 64] {
            let c = measure_listing(Params1984::ethernet_3mbit(), n, true);
            assert!(c.directory < c.enumerate, "n={n}: {c:?}");
            assert!(c.directory_msgs < c.enumerate_msgs);
        }
    }

    #[test]
    fn gap_grows_linearly_with_objects() {
        let c16 = measure_listing(Params1984::ethernet_3mbit(), 16, true);
        let c64 = measure_listing(Params1984::ethernet_3mbit(), 64, true);
        let gap16 = (c16.enumerate - c16.directory).as_nanos() as f64;
        let gap64 = (c64.enumerate - c64.directory).as_nanos() as f64;
        let ratio = gap64 / gap16;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn local_listing_also_favors_directory() {
        let c = measure_listing(Params1984::ethernet_3mbit(), 32, false);
        assert!(c.directory < c.enumerate);
    }
}
