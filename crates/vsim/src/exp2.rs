//! EXP-2 — Program loading via `MoveTo` (paper §3.1).
//!
//! Paper: "Using MoveTo for program loading from a network file server into
//! a diskless SUN workstation (assuming the program text is already in the
//! file server's memory buffers), a 64 kilobyte program can be loaded in
//! 338 milliseconds on the 3 megabit Ethernet. This performance is within
//! 13 percent of the maximum speed at which a SUN workstation can write
//! packets out to the network when there is no protocol overhead."

use crate::report::{ExpReport, ExpRow};
use bytes::Bytes;
use std::time::Duration;
use vkernel::SimDomain;
use vnet::{NetModel, Params1984};
use vproto::{Message, RequestCode};

/// Loads a `size`-byte program image from a server with the image already
/// in memory; returns the virtual time for the bulk transfer transaction.
pub fn measure_load(params: Params1984, size: usize) -> Duration {
    let domain = SimDomain::new(params);
    let (ws, server_machine) = (domain.add_host(), domain.add_host());
    let image = vec![0x4Eu8; size]; // 68000 NOPs, in the spirit of things
    let loader = domain.spawn(server_machine, "loader", move |ctx| {
        while let Ok(mut rx) = ctx.receive() {
            ctx.move_to(&mut rx, &image).unwrap();
            ctx.reply(rx, Message::ok(), Bytes::new()).ok();
        }
    });
    domain
        .client(ws, move |ctx| {
            let t0 = ctx.now();
            let reply = ctx
                .send(
                    loader,
                    Message::request(RequestCode::Echo),
                    Bytes::new(),
                    size,
                )
                .unwrap();
            assert_eq!(reply.data.len(), size);
            ctx.now() - t0
        })
        .expect("load completed")
}

/// Runs EXP-2.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new("EXP-2", "64 KB program load via MoveTo (paper §3.1)");
    let params = Params1984::ethernet_3mbit();
    let t = measure_load(params.clone(), 64 * 1024);
    rep.push(ExpRow::with_paper(
        "64 KB load, 3 Mbit Ethernet",
        338.0,
        t.as_nanos() as f64 / 1e6,
        "ms",
    ));
    // The paper's "within 13% of maximum write speed" claim: compare with
    // the wire+copy floor (no per-packet kernel CPU).
    let net = NetModel::new(params);
    let packets = net.params().packets_for(64 * 1024);
    let floor = net
        .params()
        .wire_time(64 * 1024 + packets * net.params().packet_header_bytes)
        + net.copy_cost(64 * 1024);
    let efficiency = floor.as_nanos() as f64 / t.as_nanos() as f64 * 100.0;
    rep.push(ExpRow::with_paper(
        "efficiency vs no-protocol-overhead floor",
        87.0,
        efficiency,
        "%",
    ));
    let t10 = measure_load(Params1984::ethernet_10mbit(), 64 * 1024);
    rep.push(ExpRow::measured_only(
        "64 KB load, 10 Mbit Ethernet",
        t10.as_nanos() as f64 / 1e6,
        "ms",
    ));
    rep.note("paper states 'within 13 percent of the maximum speed', i.e. ≈87% efficiency");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_338ms_within_2pct() {
        let rep = run();
        let r = rep.row("64 KB load, 3 Mbit Ethernet").unwrap();
        assert!(r.deviation_pct().unwrap().abs() < 2.0, "{:?}", r);
    }

    #[test]
    fn load_time_scales_roughly_linearly() {
        let t32 = measure_load(Params1984::ethernet_3mbit(), 32 * 1024);
        let t64 = measure_load(Params1984::ethernet_3mbit(), 64 * 1024);
        let ratio = t64.as_nanos() as f64 / t32.as_nanos() as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn efficiency_is_high_but_below_full() {
        let rep = run();
        let eff = rep
            .row("efficiency vs no-protocol-overhead floor")
            .unwrap()
            .measured;
        assert!((70.0..100.0).contains(&eff), "{eff}");
    }
}
