//! Paper-vs-measured reporting shared by all experiments.

use std::fmt;

/// One measured quantity, optionally paired with the paper's value.
#[derive(Debug, Clone)]
pub struct ExpRow {
    /// What was measured.
    pub label: String,
    /// The paper's reported value in `unit`, if the paper gives one.
    pub paper: Option<f64>,
    /// Our measured value in `unit`.
    pub measured: f64,
    /// Unit for both values (e.g. `"ms"`, `"bytes"`, `"msgs"`).
    pub unit: &'static str,
}

impl ExpRow {
    /// Creates a row with a paper reference value.
    pub fn with_paper(
        label: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        ExpRow {
            label: label.into(),
            paper: Some(paper),
            measured,
            unit,
        }
    }

    /// Creates a measurement-only row (no directly comparable paper value).
    pub fn measured_only(label: impl Into<String>, measured: f64, unit: &'static str) -> Self {
        ExpRow {
            label: label.into(),
            paper: None,
            measured,
            unit,
        }
    }

    /// Percent deviation from the paper value, if one exists.
    pub fn deviation_pct(&self) -> Option<f64> {
        self.paper.map(|p| {
            if p == 0.0 {
                0.0
            } else {
                (self.measured - p) / p * 100.0
            }
        })
    }
}

/// A complete experiment report.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment id from DESIGN.md (e.g. `"EXP-4"`).
    pub id: &'static str,
    /// Human title, citing the paper section.
    pub title: String,
    /// Paper-vs-measured rows.
    pub rows: Vec<ExpRow>,
    /// Free-form notes (calibration caveats, shape observations).
    pub notes: Vec<String>,
}

impl ExpReport {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExpReport {
            id,
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: ExpRow) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Looks a row up by label (for assertions in tests).
    pub fn row(&self, label: &str) -> Option<&ExpRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Renders the report as a Markdown table (used for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str("| measurement | paper | measured | deviation |\n");
        out.push_str("|---|---|---|---|\n");
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{:.2} {}", p, r.unit))
                .unwrap_or_else(|| "—".into());
            let dev = r
                .deviation_pct()
                .map(|d| format!("{d:+.1}%"))
                .unwrap_or_else(|| "—".into());
            out.push_str(&format!(
                "| {} | {} | {:.2} {} | {} |\n",
                r.label, paper, r.measured, r.unit, dev
            ));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }
}

impl fmt::Display for ExpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        writeln!(
            f,
            "   {:<44} {:>12} {:>12} {:>9}",
            "measurement", "paper", "measured", "dev"
        )?;
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{:.2} {}", p, r.unit))
                .unwrap_or_else(|| "—".into());
            let dev = r
                .deviation_pct()
                .map(|d| format!("{d:+.1}%"))
                .unwrap_or_else(|| "—".into());
            writeln!(
                f,
                "   {:<44} {:>12} {:>9.2} {} {:>7}",
                r.label, paper, r.measured, r.unit, dev
            )?;
        }
        for n in &self.notes {
            writeln!(f, "   note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_computation() {
        let r = ExpRow::with_paper("x", 2.0, 2.2, "ms");
        assert!((r.deviation_pct().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(ExpRow::measured_only("y", 1.0, "ms").deviation_pct(), None);
    }

    #[test]
    fn markdown_contains_rows_and_notes() {
        let mut rep = ExpReport::new("EXP-0", "demo");
        rep.push(ExpRow::with_paper("a", 1.0, 1.1, "ms"));
        rep.note("a note");
        let md = rep.to_markdown();
        assert!(md.contains("EXP-0"));
        assert!(md.contains("| a |"));
        assert!(md.contains("+10.0%"));
        assert!(md.contains("- a note"));
    }

    #[test]
    fn row_lookup() {
        let mut rep = ExpReport::new("EXP-0", "demo");
        rep.push(ExpRow::with_paper("alpha", 1.0, 1.0, "ms"));
        assert!(rep.row("alpha").is_some());
        assert!(rep.row("beta").is_none());
    }
}
