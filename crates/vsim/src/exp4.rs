//! EXP-4 — The `Open` cost table (paper §6): the paper's central
//! quantitative result for the naming system.
//!
//! Paper: "The time for an Open ... is 1.21 milliseconds in the current
//! context with the server local and 3.70 milliseconds in the current
//! context with the server remote. When a context prefix is specified ...
//! the time increases to 5.14 milliseconds with the server local, and 7.69
//! milliseconds with the server remote. The difference is identical within
//! the limits of experimental error in both cases (3.94 vs. 3.99
//! milliseconds), because it reflects the processing time in the context
//! prefix server, which is always local."

use crate::report::{ExpReport, ExpRow};
use crate::world::{boot_world, SimWorld};
use std::time::Duration;
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode, Pid};
use vruntime::NameClient;

/// The four `Open` configurations of the paper's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenCase {
    /// Current context, server on this workstation.
    CurrentLocal,
    /// Current context, server across the network.
    CurrentRemote,
    /// `[prefix]` name, target server local.
    PrefixLocal,
    /// `[prefix]` name, target server remote.
    PrefixRemote,
}

impl OpenCase {
    /// All four cases, in the paper's order.
    pub const ALL: [OpenCase; 4] = [
        OpenCase::CurrentLocal,
        OpenCase::CurrentRemote,
        OpenCase::PrefixLocal,
        OpenCase::PrefixRemote,
    ];

    /// The paper's measured value in ms.
    pub fn paper_ms(self) -> f64 {
        match self {
            OpenCase::CurrentLocal => 1.21,
            OpenCase::CurrentRemote => 3.70,
            OpenCase::PrefixLocal => 5.14,
            OpenCase::PrefixRemote => 7.69,
        }
    }

    fn label(self) -> &'static str {
        match self {
            OpenCase::CurrentLocal => "current context, server local",
            OpenCase::CurrentRemote => "current context, server remote",
            OpenCase::PrefixLocal => "context prefix, server local",
            OpenCase::PrefixRemote => "context prefix, server remote",
        }
    }
}

/// Measures one `Open` configuration in `world`, averaged over `iters`.
pub fn measure_open(world: &SimWorld, case: OpenCase, iters: u32) -> Duration {
    let (local_fs, remote_fs) = (world.local_fs, world.remote_fs);
    world.client(move |ctx| {
        let (server, name): (Pid, &str) = match case {
            OpenCase::CurrentLocal => (local_fs, "paper.txt"),
            OpenCase::CurrentRemote => (remote_fs, "paper.txt"),
            OpenCase::PrefixLocal => (local_fs, "[local]paper.txt"),
            OpenCase::PrefixRemote => (remote_fs, "[remote]paper.txt"),
        };
        let client = NameClient::new(ctx, ContextPair::new(server, ContextId::DEFAULT));
        let t0 = ctx.now();
        for _ in 0..iters {
            client.open(name, OpenMode::Read).unwrap();
        }
        (ctx.now() - t0) / iters
    })
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-4.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-4",
        "Open latency: current context vs prefix, local vs remote (paper §6)",
    );
    let world = boot_world(Params1984::ethernet_3mbit());
    let mut measured = Vec::new();
    for case in OpenCase::ALL {
        let t = measure_open(&world, case, 20);
        measured.push(ms(t));
        rep.push(ExpRow::with_paper(
            case.label(),
            case.paper_ms(),
            ms(t),
            "ms",
        ));
    }
    // The prefix-server processing deltas the paper highlights.
    rep.push(ExpRow::with_paper(
        "prefix delta, local server",
        3.94,
        measured[2] - measured[0],
        "ms",
    ));
    rep.push(ExpRow::with_paper(
        "prefix delta, remote server",
        3.99,
        measured[3] - measured[1],
        "ms",
    ));
    rep.note(
        "the two deltas must match (the prefix server is always local, so its cost is \
         independent of the target server's placement) — the paper's own check",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_cases_within_5pct_of_paper() {
        let rep = run();
        for case in OpenCase::ALL {
            let row = rep
                .row(match case {
                    OpenCase::CurrentLocal => "current context, server local",
                    OpenCase::CurrentRemote => "current context, server remote",
                    OpenCase::PrefixLocal => "context prefix, server local",
                    OpenCase::PrefixRemote => "context prefix, server remote",
                })
                .unwrap();
            let dev = row.deviation_pct().unwrap();
            assert!(
                dev.abs() < 5.0,
                "{case:?}: measured {} paper {} ({dev:+.1}%)",
                row.measured,
                row.paper.unwrap()
            );
        }
    }

    #[test]
    fn prefix_deltas_are_equal_and_near_paper() {
        let rep = run();
        let d_local = rep.row("prefix delta, local server").unwrap().measured;
        let d_remote = rep.row("prefix delta, remote server").unwrap().measured;
        // The paper's check: identical within experimental error.
        assert!((d_local - d_remote).abs() < 0.15, "{d_local} vs {d_remote}");
        assert!((d_local - 3.965).abs() < 0.25, "{d_local}");
    }

    #[test]
    fn ordering_matches_paper() {
        let rep = run();
        let v: Vec<f64> = OpenCase::ALL
            .iter()
            .map(|c| {
                rep.rows
                    .iter()
                    .find(|r| r.paper == Some(c.paper_ms()))
                    .unwrap()
                    .measured
            })
            .collect();
        assert!(v[0] < v[1] && v[1] < v[2] && v[2] < v[3], "{v:?}");
    }
}
