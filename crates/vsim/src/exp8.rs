//! EXP-8 — Service naming: `GetPid` local table vs network broadcast
//! (paper §4.2).
//!
//! Paper: "In response to a GetPid, the kernel checks its local table and,
//! if that fails and the scope is not local, broadcasts to query other
//! kernels on the network." The broadcast also has the §2.2 cost: every
//! kernel on the network spends time filtering queries not meant for it.

use crate::report::{ExpReport, ExpRow};
use std::time::Duration;
use vkernel::SimDomain;
use vnet::Params1984;
use vproto::{Scope, ServiceId};

/// Measures a local-table `GetPid` hit and a broadcast hit in a domain of
/// `hosts` logical hosts.
pub fn measure_getpid(params: Params1984, hosts: usize) -> (Duration, Duration) {
    assert!(hosts >= 2);
    let domain = SimDomain::new(params);
    let all: Vec<_> = (0..hosts).map(|_| domain.add_host()).collect();
    let ws = all[0];
    let far = all[hosts - 1];
    domain.spawn(ws, "local-svc", |ctx| {
        ctx.set_pid(ServiceId::TIME_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    domain.spawn(far, "far-svc", |ctx| {
        ctx.set_pid(ServiceId::PRINT_SERVER, Scope::Both);
        while ctx.receive().is_ok() {}
    });
    domain.run();
    domain
        .client(ws, |ctx| {
            let t0 = ctx.now();
            for _ in 0..10 {
                ctx.get_pid(ServiceId::TIME_SERVER, Scope::Both).unwrap();
            }
            let t1 = ctx.now();
            for _ in 0..10 {
                ctx.get_pid(ServiceId::PRINT_SERVER, Scope::Both).unwrap();
            }
            let t2 = ctx.now();
            ((t1 - t0) / 10, (t2 - t1) / 10)
        })
        .expect("getpid runs")
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-8.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-8",
        "GetPid: local kernel table vs network broadcast (paper §4.2)",
    );
    for &hosts in &[2usize, 8, 30] {
        let (local, broadcast) = measure_getpid(Params1984::ethernet_3mbit(), hosts);
        rep.push(ExpRow::measured_only(
            format!("local table hit, {hosts}-host domain"),
            ms(local),
            "ms",
        ));
        rep.push(ExpRow::measured_only(
            format!("broadcast hit, {hosts}-host domain"),
            ms(broadcast),
            "ms",
        ));
    }
    rep.note("30 hosts ≈ the paper's installation ('about 30' workstations, §6)");
    rep.note("broadcast cost grows with domain size because every kernel filters the query — the cost the paper flags for the multicast technique in §2.2");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_hit_is_much_cheaper_than_broadcast() {
        let (local, broadcast) = measure_getpid(Params1984::ethernet_3mbit(), 8);
        assert!(broadcast > local * 10, "{local:?} vs {broadcast:?}");
    }

    #[test]
    fn broadcast_cost_grows_with_domain() {
        let (_, b2) = measure_getpid(Params1984::ethernet_3mbit(), 2);
        let (_, b30) = measure_getpid(Params1984::ethernet_3mbit(), 30);
        assert!(b30 > b2, "{b2:?} vs {b30:?}");
    }

    #[test]
    fn local_hit_cost_is_independent_of_domain() {
        let (l2, _) = measure_getpid(Params1984::ethernet_3mbit(), 2);
        let (l30, _) = measure_getpid(Params1984::ethernet_3mbit(), 30);
        assert_eq!(l2, l30);
    }
}
