//! EXP-11 — The fault plane: `Open` latency and kernel retransmission
//! under message loss, and client recovery after a prefix-server crash.
//!
//! The paper's failure arguments (§2.2, §4.2) are qualitative: datagram
//! loss is masked by kernel retransmission, and a crashed name server is
//! recovered from by re-resolving with `GetPid` rather than by consulting
//! a (possibly stale) name cache. This experiment quantifies both on the
//! deterministic fault plane ([`vnet::FaultConfig`]):
//!
//! * a loss sweep p ∈ {0, 0.001, 0.01, 0.05} over the EXP-4 prefix-route
//!   `Open` cases — at p = 0 the rows must reproduce the paper's 5.14 ms
//!   (server local) and 7.69 ms (server remote);
//! * a prefix-server crash at a scheduled virtual time, a standby that
//!   restarts it `Δ` later with its table preloaded, and a client that
//!   retries with [`BackoffPolicy::recovery`] until the re-resolved server
//!   answers — recovery time is bounded below by `Δ`.
//!
//! Everything is seeded: equal seeds give bit-equal latencies, retry
//! counts and event hashes (enforced by the `vcheck` determinism gate).

use crate::exp4::{measure_open, OpenCase};
use crate::report::{ExpReport, ExpRow};
use crate::world::boot_world_with;
use std::time::Duration;
use vnaming::BackoffPolicy;
use vnet::{FaultConfig, Params1984};
use vproto::{ContextId, ContextPair};
use vruntime::NameClient;
use vservers::{prefix_server, PrefixConfig};

/// Default seed for the experiment's fault schedule.
pub const EXP11_SEED: u64 = 0x1984_0511;

/// The loss rates swept by the experiment.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// One point of the loss sweep.
#[derive(Debug, Clone, Copy)]
pub struct LossPoint {
    /// Per-transmission loss probability on remote hops.
    pub loss_p: f64,
    /// Mean prefix-route `Open`, target server local, in ms.
    pub open_local_ms: f64,
    /// Mean prefix-route `Open`, target server remote, in ms.
    pub open_remote_ms: f64,
    /// Kernel retransmissions over the whole sweep point.
    pub retransmits: u64,
    /// Remote transmissions dropped by the plane.
    pub drops: u64,
}

/// Measures the two prefix-route `Open` cases of EXP-4 under loss rate
/// `loss_p`, `iters` opens each, on a fresh world seeded with `seed`.
pub fn measure_loss_point(seed: u64, loss_p: f64, iters: u32) -> LossPoint {
    let world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(FaultConfig::lossless(seed).with_loss(loss_p)),
    );
    let open_local_ms = ms(measure_open(&world, OpenCase::PrefixLocal, iters));
    let open_remote_ms = ms(measure_open(&world, OpenCase::PrefixRemote, iters));
    let stats = world.domain.fault_stats();
    LossPoint {
        loss_p,
        open_local_ms,
        open_remote_ms,
        retransmits: stats.retransmits,
        drops: stats.drops,
    }
}

/// Outcome of the crash/recovery measurement.
#[derive(Debug, Clone, Copy)]
pub struct Recovery {
    /// The restart delay Δ the standby waited before re-running the
    /// prefix server.
    pub restart_delay: Duration,
    /// Crash → first successful prefix-route `Open` on the restarted
    /// server. Necessarily ≥ `restart_delay`.
    pub recovery: Duration,
    /// Client-level retries spent during the outage.
    pub retries: u64,
    /// Transactions the client abandoned (must be 0: the budget of
    /// [`BackoffPolicy::recovery`] outlasts Δ).
    pub gave_up: u64,
}

/// Crashes the world's prefix server at a scheduled virtual time, restarts
/// it `restart_delay` later from a standby with its table preloaded (the
/// user's "login script" bindings), and measures how long a retrying
/// client takes to complete `Open("[remote]paper.txt")` again.
pub fn measure_recovery(seed: u64, restart_delay: Duration) -> Recovery {
    let world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(FaultConfig::lossless(seed)),
    );
    let t0 = world.domain.run();
    let t_crash = t0 + Duration::from_millis(10);
    let t_restart = t_crash + restart_delay;
    world.domain.schedule_crash(world.prefix, t_crash);

    // The standby: sleeps through the outage, then re-runs the prefix
    // server with the standard bindings preloaded — soft state rebuilt
    // at boot, no re-add window (paper §6: prefixes come from the user's
    // profile, so a restart can replay them).
    let (local_fs, remote_fs) = (world.local_fs, world.remote_fs);
    let wake = t_restart.as_duration();
    world
        .domain
        .spawn(world.workstation, "prefix-standby", move |ctx| {
            let now = ctx.now();
            if wake > now {
                ctx.sleep(wake - now);
            }
            prefix_server(
                ctx,
                PrefixConfig {
                    preload_direct: vec![
                        (
                            "local".into(),
                            ContextPair::new(local_fs, ContextId::DEFAULT),
                        ),
                        (
                            "remote".into(),
                            ContextPair::new(remote_fs, ContextId::DEFAULT),
                        ),
                        ("home".into(), ContextPair::new(local_fs, ContextId::HOME)),
                    ],
                    ..PrefixConfig::default()
                },
            );
        });

    // The client: starts just after the crash, retries with the recovery
    // backoff until the re-registered server answers the GetPid re-query.
    let crash_at = t_crash.as_duration();
    let (success_at, stats) = world.client(move |ctx| {
        let start = crash_at + Duration::from_millis(1);
        let now = ctx.now();
        if start > now {
            ctx.sleep(start - now);
        }
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.set_retry_policy(BackoffPolicy::recovery());
        client
            .read_file("[remote]paper.txt")
            .expect("open succeeds once the prefix server is restarted");
        (ctx.now(), client.retry_stats())
    });

    Recovery {
        restart_delay,
        recovery: success_at - crash_at,
        retries: stats.retries,
        gave_up: stats.gave_up,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Runs EXP-11.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-11",
        "Fault plane: Open under message loss, recovery after prefix-server crash",
    );
    for p in LOSS_RATES {
        let pt = measure_loss_point(EXP11_SEED, p, 20);
        if p == 0.0 {
            // The lossless plane must reproduce EXP-4's prefix rows.
            rep.push(ExpRow::with_paper(
                format!("open [prefix] local, p={p}"),
                OpenCase::PrefixLocal.paper_ms(),
                pt.open_local_ms,
                "ms",
            ));
            rep.push(ExpRow::with_paper(
                format!("open [prefix] remote, p={p}"),
                OpenCase::PrefixRemote.paper_ms(),
                pt.open_remote_ms,
                "ms",
            ));
        } else {
            rep.push(ExpRow::measured_only(
                format!("open [prefix] local, p={p}"),
                pt.open_local_ms,
                "ms",
            ));
            rep.push(ExpRow::measured_only(
                format!("open [prefix] remote, p={p}"),
                pt.open_remote_ms,
                "ms",
            ));
        }
        rep.push(ExpRow::measured_only(
            format!("kernel retransmits, p={p}"),
            pt.retransmits as f64,
            "msgs",
        ));
    }
    let rec = measure_recovery(EXP11_SEED, Duration::from_millis(200));
    rep.push(ExpRow::measured_only(
        "prefix crash -> restart delay",
        ms(rec.restart_delay),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "prefix crash -> first successful open",
        ms(rec.recovery),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "client retries during outage",
        rec.retries as f64,
        "tries",
    ));
    rep.note(
        "loss applies to remote hops only; the prefix-local route is all-local, so its \
         latency is loss-independent once the one-time GetPid binding is done",
    );
    rep.note(
        "loss is masked by the kernel's retransmission ladder (5 ms base, x2 backoff, \
         5 attempts) — clients see latency, not failure, until the ladder is exhausted",
    );
    rep.note(
        "recovery = crash -> first successful open through the restarted server; \
         bounded below by the restart delay, the excess is the client's backoff quantum",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_rows_match_exp4_within_2pct() {
        let pt = measure_loss_point(EXP11_SEED, 0.0, 20);
        for (measured, paper) in [
            (pt.open_local_ms, OpenCase::PrefixLocal.paper_ms()),
            (pt.open_remote_ms, OpenCase::PrefixRemote.paper_ms()),
        ] {
            let dev = (measured - paper) / paper * 100.0;
            assert!(
                dev.abs() < 2.0,
                "measured {measured} paper {paper} ({dev:+.1}%)"
            );
        }
        assert_eq!(pt.retransmits, 0);
        assert_eq!(pt.drops, 0);
    }

    #[test]
    fn local_route_is_loss_independent() {
        // Loss only touches remote hops; the prefix-local open path is
        // all-local, so across the sweep it moves only by the one-time
        // GetPid binding broadcast, amortized over the iterations.
        let points: Vec<LossPoint> = LOSS_RATES
            .iter()
            .map(|&p| measure_loss_point(EXP11_SEED, p, 20))
            .collect();
        let base = points[0].open_local_ms;
        for pt in &points {
            assert!(
                (pt.open_local_ms - base).abs() / base < 0.05,
                "p={}: local {} vs lossless {}",
                pt.loss_p,
                pt.open_local_ms,
                base
            );
        }
    }

    #[test]
    fn loss_degrades_remote_latency_and_costs_retransmits() {
        let p_lo = measure_loss_point(EXP11_SEED, 0.001, 200);
        let p_hi = measure_loss_point(EXP11_SEED, 0.05, 200);
        assert!(p_hi.retransmits > p_lo.retransmits, "{p_hi:?} vs {p_lo:?}");
        assert!(p_hi.drops >= p_hi.retransmits);
        let p0 = measure_loss_point(EXP11_SEED, 0.0, 200);
        assert!(
            p_hi.open_remote_ms > p0.open_remote_ms,
            "retransmission must cost latency: {} vs {}",
            p_hi.open_remote_ms,
            p0.open_remote_ms
        );
    }

    #[test]
    fn recovery_is_bounded_below_by_restart_delay_and_uses_retries() {
        let delta = Duration::from_millis(200);
        let rec = measure_recovery(EXP11_SEED, delta);
        assert!(
            rec.recovery >= delta,
            "recovered in {:?} before the restart at {:?}",
            rec.recovery,
            delta
        );
        // The outage is survived by retrying, not by luck, and the
        // recovery budget never runs out.
        assert!(rec.retries >= 1, "{rec:?}");
        assert_eq!(rec.gave_up, 0, "{rec:?}");
        // Recovery is prompt: restart delay plus at most a couple of
        // backoff quanta (100 ms cap) and the failed attempts' own
        // GetPid broadcast costs — far below the policy's full budget.
        assert!(rec.recovery < delta + Duration::from_millis(300), "{rec:?}");
    }

    #[test]
    fn equal_seeds_give_equal_measurements() {
        let a = measure_loss_point(0xFA17, 0.01, 50);
        let b = measure_loss_point(0xFA17, 0.01, 50);
        assert_eq!(a.open_remote_ms, b.open_remote_ms);
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.drops, b.drops);
    }
}
