//! EXP-12 — Partition-tolerant naming: resolution across partition→heal
//! timelines, asymmetric link cuts, a replica rescue after a prefix-server
//! crash, and the adaptive RTT-estimated retransmission ladder.
//!
//! EXP-11 measured *loss* — independent per-message drops the kernel's
//! retransmission ladder masks. This experiment measures *partitions*:
//! correlated, directed unreachability, where every retransmission of the
//! ladder is severed too and the kernel cannot tell a dead host from an
//! alive-but-unreachable one (the paper's §2.2/§4.2 failure model never
//! distinguishes them). Four questions:
//!
//! * **Width sweep** — a symmetric workstation↔server cut of width
//!   W ∈ {0, 60, 200} ms. At W = 0 the degraded-mode machinery must be
//!   latency-free: the prefix-route `Open` rows must reproduce EXP-4's
//!   5.14 / 7.69 ms. A 60 ms cut is *narrower than the kernel's ladder
//!   span* (attempts at +0/5/15/35/75 ms), so a forward started inside it
//!   rides through the heal and resolution stays `Fresh` — slow, not
//!   degraded. A 200 ms cut outlives the ladder: the prefix server's
//!   forward burns all 155 ms, arms a suspicion, and the client's retry is
//!   answered from the prefix table tagged [`Staleness::Suspect`] instead
//!   of erroring.
//! * **Asymmetric cut** — only server→workstation (the reply direction) is
//!   severed. Requests deliver, so the prefix server's forward *succeeds*
//!   and no suspicion ever arms; the client's own name cache is what
//!   rescues resolution, again tagged `Suspect`.
//! * **Replica rescue** — the workstation prefix server crashes. `GetPid`
//!   rebinding fails (the replica registers local-only on the server
//!   machine), so the one road left is the multicast to the replica
//!   group, answered degraded by the non-authoritative replica.
//! * **Adaptive ladder** — under 5% loss, the Jacobson/Karn estimator
//!   ([`vnet::RttEstimator`]) converges its RTO to the observed RTT and
//!   recovers lost remote opens faster than the static 5 ms-base ladder.
//!
//! Everything is seeded and scheduled: equal seeds give bit-equal
//! latencies, staleness tags and kernel event hashes (partition-severed
//! attempts fold into the hash as their own event kind), enforced by the
//! `vcheck` determinism gate.

use crate::exp4::{measure_open, OpenCase};
use crate::report::{ExpReport, ExpRow};
use crate::world::{boot_world_cfg, boot_world_with, SimWorld, WorldConfig};
use std::time::Duration;
use vnaming::BackoffPolicy;
use vnet::{FaultConfig, Params1984, Partition, RttConfig};
use vproto::{ContextId, ContextPair, OpenMode};
use vruntime::{NameClient, Staleness};
use vservers::DegradedPrefixConfig;

/// Default seed for the experiment's fault schedules.
pub const EXP12_SEED: u64 = 0x1984_0C12;

/// Symmetric partition widths swept (0 ms is the control point).
pub const PARTITION_WIDTHS: [Duration; 3] = [
    Duration::ZERO,
    Duration::from_millis(60),
    Duration::from_millis(200),
];

/// The standard world with degraded-mode resolution on the workstation
/// prefix server, under a lossless seeded plane (partitions are scheduled
/// per run; they draw no randomness).
fn degraded_world(seed: u64, replica: bool) -> SimWorld {
    boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(seed)),
        degraded: Some(DegradedPrefixConfig::default()),
        replica,
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    })
}

fn sleep_until(ctx: &dyn vkernel::Ipc, at: Duration) {
    let now = ctx.now();
    if at > now {
        ctx.sleep(at - now);
    }
}

fn ms(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// The control measurement: the degraded world with nothing scheduled.
/// Returns the two prefix-route `Open` means (ms) — these must reproduce
/// EXP-4, i.e. degraded mode costs nothing while the network is healthy.
pub fn measure_control(seed: u64, iters: u32) -> (f64, f64) {
    let world = degraded_world(seed, false);
    let local = ms(measure_open(&world, OpenCase::PrefixLocal, iters));
    let remote = ms(measure_open(&world, OpenCase::PrefixRemote, iters));
    (local, remote)
}

/// Outcome of one symmetric-partition run.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOutcome {
    /// The cut's width.
    pub width: Duration,
    /// Elapsed time of a `resolve("[remote]")` issued 5 ms into the cut.
    pub resolve_during: Duration,
    /// How that resolution was answered (`None` = it failed outright).
    pub staleness: Option<Staleness>,
    /// Suspect bindings the client accumulated over the run.
    pub suspects: u64,
    /// Transmission attempts the plane severed.
    pub partition_drops: u64,
    /// An `Open` issued after the heal and the suspicion TTL: the
    /// authoritative path must be back to normal latency.
    pub open_after_heal: Duration,
    /// Kernel event-stream hash at quiescence (determinism witness).
    pub event_hash: u64,
}

/// Cuts workstation↔server symmetrically for `width`, starting 20 ms
/// after boot, and drives a degraded-mode client across the timeline:
/// a warm resolve before the cut, one during, one `Open` after the heal.
pub fn measure_partition(seed: u64, width: Duration) -> PartitionOutcome {
    let world = degraded_world(seed, false);
    let t0 = world.domain.run();
    let cut_start = t0 + Duration::from_millis(20);
    world.domain.schedule_partition(Partition::between(
        world.workstation,
        world.server_machine,
        cut_start,
        Some(cut_start + width),
    ));
    let cut_at = cut_start.as_duration();
    let local_fs = world.local_fs;
    let (resolve_during, staleness, open_after_heal, stats) = world.client(move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        // Warm resolution while the network is whole: Fresh, fills the
        // name cache the degraded fallback may later need.
        client.resolve("[remote]").expect("pre-cut resolve");
        sleep_until(ctx, cut_at + Duration::from_millis(5));
        let t = ctx.now();
        let during = client.resolve("[remote]").ok();
        let resolve_during = ctx.now() - t;
        // Past the heal and the suspicion TTL: the next request probes the
        // authoritative path again.
        sleep_until(ctx, cut_at + width + Duration::from_millis(80));
        let t = ctx.now();
        client
            .open("[remote]paper.txt", OpenMode::Read)
            .expect("post-heal open");
        let open_after_heal = ctx.now() - t;
        (
            resolve_during,
            during.map(|b| b.staleness),
            open_after_heal,
            client.degraded_stats(),
        )
    });
    PartitionOutcome {
        width,
        resolve_during,
        staleness,
        suspects: stats.suspect_bindings,
        partition_drops: world.domain.fault_stats().partition_drops,
        open_after_heal,
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the asymmetric (reply-direction) cut.
#[derive(Debug, Clone, Copy)]
pub struct AsymmetricOutcome {
    /// Elapsed time of the during-cut resolution.
    pub resolve_during: Duration,
    /// How it was answered (`None` = it failed outright).
    pub staleness: Option<Staleness>,
    /// Resolutions rescued by the client's own name cache.
    pub cache_fallbacks: u64,
    /// Kernel event-stream hash at quiescence.
    pub event_hash: u64,
}

/// Severs only server→workstation for `width`: requests deliver, replies
/// do not. The prefix server's forward succeeds, so suspicion never arms —
/// the client's name cache is the only degraded path that can answer.
pub fn measure_asymmetric(seed: u64, width: Duration) -> AsymmetricOutcome {
    let world = degraded_world(seed, false);
    let t0 = world.domain.run();
    let cut_start = t0 + Duration::from_millis(20);
    world.domain.schedule_partition(Partition::one_way(
        world.server_machine,
        world.workstation,
        cut_start,
        Some(cut_start + width),
    ));
    let cut_at = cut_start.as_duration();
    let local_fs = world.local_fs;
    let (resolve_during, staleness, stats) = world.client(move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        // Two attempts are enough to prove the authoritative path is out;
        // each one burns the replier's full ladder (~155 ms), so a bigger
        // budget only pads the measurement.
        client.set_retry_policy(BackoffPolicy {
            max_attempts: 2,
            ..BackoffPolicy::default()
        });
        client.resolve("[remote]").expect("pre-cut resolve");
        sleep_until(ctx, cut_at + Duration::from_millis(5));
        let t = ctx.now();
        let during = client.resolve("[remote]").ok();
        (
            ctx.now() - t,
            during.map(|b| b.staleness),
            client.degraded_stats(),
        )
    });
    AsymmetricOutcome {
        resolve_during,
        staleness,
        cache_fallbacks: stats.cache_fallbacks,
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the prefix-crash replica rescue.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaOutcome {
    /// Elapsed time of the post-crash resolution.
    pub resolve: Duration,
    /// How it was answered (`None` = it failed outright).
    pub staleness: Option<Staleness>,
    /// Resolutions rescued by the replica-group multicast.
    pub replica_fallbacks: u64,
    /// Kernel event-stream hash at quiescence.
    pub event_hash: u64,
}

/// Crashes the workstation prefix server, then resolves from a client
/// booted after the crash: local discovery and `GetPid` rebinding both
/// fail (the replica is invisible to discovery by design), so the
/// multicast to the replica group is what answers — `Suspect`, because
/// nobody authoritative vouched for it.
pub fn measure_replica_rescue(seed: u64) -> ReplicaOutcome {
    let world = degraded_world(seed, true);
    let t0 = world.domain.run();
    let t_crash = t0 + Duration::from_millis(10);
    world.domain.schedule_crash(world.prefix, t_crash);
    let crash_at = t_crash.as_duration();
    let local_fs = world.local_fs;
    let group = world.replica_group.expect("replica world has a group");
    let (resolve, staleness, stats) = world.client(move |ctx| {
        sleep_until(ctx, crash_at + Duration::from_millis(1));
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        client.set_replica_group(group);
        let t = ctx.now();
        let b = client.resolve("[remote]").ok();
        (
            ctx.now() - t,
            b.map(|b| b.staleness),
            client.degraded_stats(),
        )
    });
    ReplicaOutcome {
        resolve,
        staleness,
        replica_fallbacks: stats.replica_fallbacks,
        event_hash: world.domain.event_hash(),
    }
}

/// Outcome of the static-vs-adaptive ladder comparison.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOutcome {
    /// Mean remote `Open` under loss with the static ladder, ms.
    pub static_ms: f64,
    /// Same workload with the adaptive RTT-estimated ladder, ms.
    pub adaptive_ms: f64,
    /// The estimator's converged SRTT, ms (None if it never sampled).
    pub srtt_ms: Option<f64>,
}

/// Measures `OpenCase::CurrentRemote` (the case whose sends sample RTT)
/// under loss rate `loss_p`, once per ladder. Same seed both times, so
/// the loss pattern is identical and only the pacing differs.
pub fn measure_adaptive_gain(seed: u64, loss_p: f64, iters: u32) -> AdaptiveOutcome {
    let static_world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(FaultConfig::lossless(seed).with_loss(loss_p)),
    );
    let static_ms = ms(measure_open(&static_world, OpenCase::CurrentRemote, iters));
    let adaptive_world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(
            FaultConfig::lossless(seed)
                .with_loss(loss_p)
                .with_adaptive(RttConfig::default()),
        ),
    );
    let adaptive_ms = ms(measure_open(
        &adaptive_world,
        OpenCase::CurrentRemote,
        iters,
    ));
    AdaptiveOutcome {
        static_ms,
        adaptive_ms,
        srtt_ms: adaptive_world.domain.srtt().map(ms),
    }
}

/// Runs EXP-12.
pub fn run() -> ExpReport {
    let mut rep = ExpReport::new(
        "EXP-12",
        "Partition-tolerant naming: degraded resolution across partition/heal, adaptive retransmission",
    );
    let (local, remote) = measure_control(EXP12_SEED, 20);
    rep.push(ExpRow::with_paper(
        "open [prefix] local, no partition",
        OpenCase::PrefixLocal.paper_ms(),
        local,
        "ms",
    ));
    rep.push(ExpRow::with_paper(
        "open [prefix] remote, no partition",
        OpenCase::PrefixRemote.paper_ms(),
        remote,
        "ms",
    ));
    for width in PARTITION_WIDTHS {
        let out = measure_partition(EXP12_SEED, width);
        let w = width.as_millis();
        let tag = match out.staleness {
            Some(Staleness::Fresh) => "fresh",
            Some(Staleness::Suspect) => "suspect",
            None => "failed",
        };
        rep.push(ExpRow::measured_only(
            format!("resolve [remote] during {w} ms cut ({tag})"),
            ms(out.resolve_during),
            "ms",
        ));
        rep.push(ExpRow::measured_only(
            format!("attempts severed, {w} ms cut"),
            out.partition_drops as f64,
            "msgs",
        ));
        rep.push(ExpRow::measured_only(
            format!("open [remote] after {w} ms cut heals"),
            ms(out.open_after_heal),
            "ms",
        ));
    }
    let asym = measure_asymmetric(EXP12_SEED, Duration::from_millis(400));
    rep.push(ExpRow::measured_only(
        "resolve during asymmetric cut (replies severed)",
        ms(asym.resolve_during),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "cache fallbacks, asymmetric cut",
        asym.cache_fallbacks as f64,
        "count",
    ));
    let rescue = measure_replica_rescue(EXP12_SEED);
    rep.push(ExpRow::measured_only(
        "resolve after prefix crash (replica multicast)",
        ms(rescue.resolve),
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "replica fallbacks, prefix crash",
        rescue.replica_fallbacks as f64,
        "count",
    ));
    let ad = measure_adaptive_gain(EXP12_SEED, 0.05, 200);
    rep.push(ExpRow::measured_only(
        "open remote, 5% loss, static ladder",
        ad.static_ms,
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "open remote, 5% loss, adaptive ladder",
        ad.adaptive_ms,
        "ms",
    ));
    rep.push(ExpRow::measured_only(
        "converged SRTT, adaptive ladder",
        ad.srtt_ms.unwrap_or(0.0),
        "ms",
    ));
    rep.note(
        "a cut narrower than the kernel ladder span (75 ms to the last attempt) is masked \
         by retransmission: resolution stays fresh, just slower; a cut wider than the \
         155 ms ladder arms a suspicion and the retry is answered suspect from the \
         prefix table instead of erroring",
    );
    rep.note(
        "the asymmetric cut severs only replies, so the prefix server's forward succeeds \
         and no suspicion arms — the client's own name cache is the fallback that answers",
    );
    rep.note(
        "suspect means served without the authority vouching (prefix table, client cache, \
         or replica); the kernel itself cannot distinguish dead from unreachable",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_rows_match_exp4_within_2pct() {
        let (local, remote) = measure_control(EXP12_SEED, 20);
        for (measured, paper) in [
            (local, OpenCase::PrefixLocal.paper_ms()),
            (remote, OpenCase::PrefixRemote.paper_ms()),
        ] {
            let dev = (measured - paper) / paper * 100.0;
            assert!(
                dev.abs() < 2.0,
                "measured {measured} paper {paper} ({dev:+.1}%)"
            );
        }
    }

    #[test]
    fn zero_width_cut_changes_nothing() {
        let out = measure_partition(EXP12_SEED, Duration::ZERO);
        assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
        assert_eq!(out.suspects, 0, "{out:?}");
        assert_eq!(out.partition_drops, 0, "{out:?}");
    }

    #[test]
    fn narrow_cut_is_masked_by_the_ladder() {
        let out = measure_partition(EXP12_SEED, Duration::from_millis(60));
        // The forward started inside the cut rides its retransmission
        // ladder through the heal: fresh, not degraded — but it paid for
        // the severed attempts in latency.
        assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
        assert_eq!(out.suspects, 0, "{out:?}");
        assert!(out.partition_drops > 0, "{out:?}");
        assert!(
            out.resolve_during > Duration::from_millis(50),
            "riding the ladder through the heal must cost real time: {out:?}"
        );
    }

    #[test]
    fn wide_cut_resolves_suspect_instead_of_erroring() {
        let out = measure_partition(EXP12_SEED, Duration::from_millis(200));
        // The acceptance criterion: during a cut wider than the kernel
        // ladder, resolution still succeeds — served degraded, tagged
        // suspect — rather than surfacing a timeout.
        assert_eq!(out.staleness, Some(Staleness::Suspect), "{out:?}");
        assert!(out.suspects >= 1, "{out:?}");
        assert!(out.partition_drops > 0, "{out:?}");
        // And after heal + TTL the authoritative path is back to normal
        // (a plain remote prefix open, well under the ladder span).
        assert!(out.open_after_heal < Duration::from_millis(20), "{out:?}");
    }

    #[test]
    fn asymmetric_cut_falls_back_to_the_name_cache() {
        let out = measure_asymmetric(EXP12_SEED, Duration::from_millis(400));
        assert_eq!(out.staleness, Some(Staleness::Suspect), "{out:?}");
        assert_eq!(out.cache_fallbacks, 1, "{out:?}");
    }

    #[test]
    fn prefix_crash_is_rescued_by_the_replica_multicast() {
        let out = measure_replica_rescue(EXP12_SEED);
        assert_eq!(out.staleness, Some(Staleness::Suspect), "{out:?}");
        assert_eq!(out.replica_fallbacks, 1, "{out:?}");
    }

    #[test]
    fn adaptive_ladder_beats_the_static_one_under_loss() {
        let ad = measure_adaptive_gain(EXP12_SEED, 0.05, 200);
        assert!(
            ad.adaptive_ms < ad.static_ms,
            "adaptive {} vs static {}",
            ad.adaptive_ms,
            ad.static_ms
        );
        // The estimator converged to something in the right ballpark for
        // a remote open transaction (and well under the 5 ms initial RTO).
        let srtt = ad.srtt_ms.expect("remote sends sampled RTT");
        assert!(srtt > 0.5 && srtt < 5.0, "srtt {srtt}");
    }

    #[test]
    fn equal_seeds_give_equal_event_hashes() {
        let w = Duration::from_millis(200);
        assert_eq!(
            measure_partition(EXP12_SEED, w).event_hash,
            measure_partition(EXP12_SEED, w).event_hash
        );
        assert_eq!(
            measure_asymmetric(EXP12_SEED, w).event_hash,
            measure_asymmetric(EXP12_SEED, w).event_hash
        );
        assert_eq!(
            measure_replica_rescue(EXP12_SEED).event_hash,
            measure_replica_rescue(EXP12_SEED).event_hash
        );
    }
}
