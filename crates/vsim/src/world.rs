//! A standard simulated V installation used by several experiments:
//! a diskless workstation (client + per-user prefix server + local file
//! server) and a remote server machine, on one simulated Ethernet.

use vkernel::SimDomain;
use vnet::{FaultConfig, Params1984};
use vproto::{ContextId, ContextPair, LogicalHost, Pid, Scope};
use vruntime::NameClient;
use vservers::{file_server, prefix_server, FileServerConfig, PrefixConfig};

/// The simulated installation.
pub struct SimWorld {
    /// The virtual-time domain.
    pub domain: SimDomain,
    /// The user's workstation.
    pub workstation: LogicalHost,
    /// The remote server machine.
    pub server_machine: LogicalHost,
    /// The per-user context prefix server (on the workstation).
    pub prefix: Pid,
    /// A file server on the workstation ("adding a disk and local file
    /// server process to a workstation requires no changes" — paper §3).
    pub local_fs: Pid,
    /// The network file server.
    pub remote_fs: Pid,
}

/// Boots the standard world and defines the standard prefixes:
/// `[local]` → local fs root, `[remote]` → remote fs root,
/// `[home]` → local fs home. Both file servers hold `paper.txt`.
pub fn boot_world(params: Params1984) -> SimWorld {
    boot_world_with(params, None)
}

/// Boots the standard world, optionally under a seeded fault plane
/// (message loss, duplication, jitter — see [`vnet::FaultConfig`]).
/// With `faults: None` the timings are bit-identical to [`boot_world`].
pub fn boot_world_with(params: Params1984, faults: Option<FaultConfig>) -> SimWorld {
    let domain = match faults {
        Some(cfg) => SimDomain::with_faults(params, cfg),
        None => SimDomain::new(params),
    };
    let workstation = domain.add_host();
    let server_machine = domain.add_host();

    let fs_config = |preload: Vec<(String, Vec<u8>)>, scope| FileServerConfig {
        service_scope: Some(scope),
        preload,
        home: Some("ng/user".into()),
        bin: Some("bin".into()),
        simulate_disk: false,
    };
    let local_fs = domain.spawn(workstation, "local-fs", {
        let cfg = fs_config(
            vec![
                ("paper.txt".into(), b"V naming, local copy".to_vec()),
                ("ng/user/notes.txt".into(), b"local home".to_vec()),
            ],
            Scope::Local,
        );
        move |ctx| file_server(ctx, cfg)
    });
    let remote_fs = domain.spawn(server_machine, "remote-fs", {
        let cfg = fs_config(
            vec![
                ("paper.txt".into(), b"V naming, remote copy".to_vec()),
                ("ng/user/thesis.txt".into(), b"remote home".to_vec()),
            ],
            Scope::Both,
        );
        move |ctx| file_server(ctx, cfg)
    });
    let prefix = domain.spawn(workstation, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    domain.run();

    // Define the user's standard prefixes from a setup process.
    domain.client(workstation, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client
            .add_prefix("local", ContextPair::new(local_fs, ContextId::DEFAULT))
            .expect("define [local]");
        client
            .add_prefix("remote", ContextPair::new(remote_fs, ContextId::DEFAULT))
            .expect("define [remote]");
        client
            .add_prefix("home", ContextPair::new(local_fs, ContextId::HOME))
            .expect("define [home]");
    });

    SimWorld {
        domain,
        workstation,
        server_machine,
        prefix,
        local_fs,
        remote_fs,
    }
}

impl SimWorld {
    /// Runs `f` as a client on the workstation, driving the simulation to
    /// quiescence, and returns its result.
    pub fn client<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&dyn vkernel::Ipc) -> T + Send + 'static,
    {
        self.domain
            .client(self.workstation, f)
            .expect("sim client completed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproto::OpenMode;

    #[test]
    fn world_boots_and_serves_all_paths() {
        let w = boot_world(Params1984::ethernet_3mbit());
        let local_fs = w.local_fs;
        let (a, b, c) = w.client(move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let a = client.read_file("[local]paper.txt").unwrap();
            let b = client.read_file("[remote]paper.txt").unwrap();
            let c = client.read_file("[home]notes.txt").unwrap();
            (a, b, c)
        });
        assert_eq!(a, b"V naming, local copy");
        assert_eq!(b, b"V naming, remote copy");
        assert_eq!(c, b"local home");
    }

    #[test]
    fn open_reports_final_server() {
        let w = boot_world(Params1984::ethernet_3mbit());
        let (local_fs, remote_fs) = (w.local_fs, w.remote_fs);
        let (s1, s2) = w.client(move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let h1 = client.open("[local]paper.txt", OpenMode::Read).unwrap();
            let h2 = client.open("[remote]paper.txt", OpenMode::Read).unwrap();
            (h1.server(), h2.server())
        });
        assert_eq!(s1, local_fs);
        assert_eq!(s2, remote_fs);
    }
}
