//! A standard simulated V installation used by several experiments:
//! a diskless workstation (client + per-user prefix server + local file
//! server) and a remote server machine, on one simulated Ethernet.

use vkernel::{GroupId, SimDomain};
use vnet::{FaultConfig, Params1984};
use vproto::{ContextId, ContextPair, LogicalHost, Pid, Scope};
use vruntime::NameClient;
use vservers::{file_server, prefix_server, DegradedPrefixConfig, FileServerConfig, PrefixConfig};

/// The simulated installation.
pub struct SimWorld {
    /// The virtual-time domain.
    pub domain: SimDomain,
    /// The user's workstation.
    pub workstation: LogicalHost,
    /// The remote server machine.
    pub server_machine: LogicalHost,
    /// The per-user context prefix server (on the workstation).
    pub prefix: Pid,
    /// A file server on the workstation ("adding a disk and local file
    /// server process to a workstation requires no changes" — paper §3).
    pub local_fs: Pid,
    /// The network file server.
    pub remote_fs: Pid,
    /// The non-authoritative prefix replica on the server machine, when
    /// the world was booted with one ([`WorldConfig::replica`]).
    pub replica: Option<Pid>,
    /// Every prefix replica, preloaded first: `replica` followed by the
    /// [`WorldConfig::extra_replicas`] cold ones, all members of
    /// `replica_group`.
    pub replicas: Vec<Pid>,
    /// The multicast group the replicas answer on, for
    /// [`vruntime::NameClient::set_replica_group`].
    pub replica_group: Option<GroupId>,
}

/// Configuration for [`boot_world_cfg`]: the standard world plus the
/// robustness knobs EXP-12 turns (degraded-mode prefix resolution and a
/// prefix replica on the server machine). With `degraded: None` and
/// `replica: false` the boot is identical to [`boot_world_with`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// The calibrated network cost model.
    pub params: Params1984,
    /// Seeded fault plane; `None` keeps timings bit-identical to
    /// [`boot_world`].
    pub faults: Option<FaultConfig>,
    /// Degraded-mode settings for the workstation's (authoritative)
    /// prefix server.
    pub degraded: Option<DegradedPrefixConfig>,
    /// Also boot a non-authoritative prefix replica on the server
    /// machine, preloaded with the standard bindings and joined to a
    /// fresh multicast group.
    pub replica: bool,
    /// Point the replica's anti-entropy at the workstation's
    /// authoritative prefix server (`sync_peer`), so a `SyncPull` runs a
    /// digest → delta → apply round against it. Implies nothing unless
    /// `replica` is also set.
    pub sync_replica: bool,
    /// Additional *cold* replicas on the server machine: same degraded
    /// configuration as the preloaded one (group membership, `sync_peer`)
    /// but an empty boot table — everything they know, they learned from
    /// a sync or gossip round. Ignored unless `replica` is set (the cold
    /// replicas join the group the preloaded replica created).
    pub extra_replicas: usize,
    /// Run every replica's anti-entropy over the legacy flat whole-table
    /// digest instead of the Merkle subtree walk — the test-only
    /// differential oracle ([`DegradedPrefixConfig::flat_sync`]). The
    /// workstation authority's own flag rides in [`WorldConfig::degraded`].
    pub flat_sync: bool,
}

impl WorldConfig {
    /// The plain world under `params`: no faults, no degraded mode.
    pub fn new(params: Params1984) -> Self {
        WorldConfig {
            params,
            faults: None,
            degraded: None,
            replica: false,
            sync_replica: false,
            extra_replicas: 0,
            flat_sync: false,
        }
    }
}

/// Boots the standard world and defines the standard prefixes:
/// `[local]` → local fs root, `[remote]` → remote fs root,
/// `[home]` → local fs home. Both file servers hold `paper.txt`.
pub fn boot_world(params: Params1984) -> SimWorld {
    boot_world_with(params, None)
}

/// Boots the standard world, optionally under a seeded fault plane
/// (message loss, duplication, jitter — see [`vnet::FaultConfig`]).
/// With `faults: None` the timings are bit-identical to [`boot_world`].
pub fn boot_world_with(params: Params1984, faults: Option<FaultConfig>) -> SimWorld {
    boot_world_cfg(WorldConfig {
        faults,
        ..WorldConfig::new(params)
    })
}

/// Boots the world described by `cfg` — see [`WorldConfig`].
pub fn boot_world_cfg(cfg: WorldConfig) -> SimWorld {
    let domain = match cfg.faults {
        Some(f) => SimDomain::with_faults(cfg.params, f),
        None => SimDomain::new(cfg.params),
    };
    let workstation = domain.add_host();
    let server_machine = domain.add_host();

    let fs_config = |preload: Vec<(String, Vec<u8>)>, scope| FileServerConfig {
        service_scope: Some(scope),
        preload,
        home: Some("ng/user".into()),
        bin: Some("bin".into()),
        simulate_disk: false,
    };
    let local_fs = domain.spawn(workstation, "local-fs", {
        let cfg = fs_config(
            vec![
                ("paper.txt".into(), b"V naming, local copy".to_vec()),
                ("ng/user/notes.txt".into(), b"local home".to_vec()),
            ],
            Scope::Local,
        );
        move |ctx| file_server(ctx, cfg)
    });
    let remote_fs = domain.spawn(server_machine, "remote-fs", {
        let cfg = fs_config(
            vec![
                ("paper.txt".into(), b"V naming, remote copy".to_vec()),
                ("ng/user/thesis.txt".into(), b"remote home".to_vec()),
            ],
            Scope::Both,
        );
        move |ctx| file_server(ctx, cfg)
    });
    let degraded = cfg.degraded;
    let prefix = domain.spawn(workstation, "prefix", move |ctx| {
        prefix_server(
            ctx,
            PrefixConfig {
                degraded,
                ..PrefixConfig::default()
            },
        )
    });

    // The optional replica: a non-authoritative prefix server on the
    // server machine, preloaded with the same bindings the user's login
    // script defines below. It registers Scope::Local there, so the
    // workstation's GetPid rebind never discovers it — the only road to
    // it is the explicit multicast group, which is the point: it is a
    // last-resort answerer, not a second authority.
    let replica_group = cfg.replica.then(|| {
        domain
            .client(workstation, |ctx| ctx.create_group())
            .expect("replica group created")
    });
    let sync_peer = cfg.sync_replica.then_some(prefix);
    let flat_sync = cfg.flat_sync;
    let replica = replica_group.map(|group| {
        domain.spawn(server_machine, "prefix-replica", move |ctx| {
            prefix_server(
                ctx,
                PrefixConfig {
                    preload_direct: vec![
                        (
                            "local".into(),
                            ContextPair::new(local_fs, ContextId::DEFAULT),
                        ),
                        (
                            "remote".into(),
                            ContextPair::new(remote_fs, ContextId::DEFAULT),
                        ),
                        ("home".into(), ContextPair::new(local_fs, ContextId::HOME)),
                    ],
                    degraded: Some(DegradedPrefixConfig {
                        authoritative: false,
                        replica_group: Some(group),
                        sync_peer,
                        flat_sync,
                        ..DegradedPrefixConfig::default()
                    }),
                    ..PrefixConfig::default()
                },
            )
        })
    });
    let mut replicas: Vec<Pid> = replica.into_iter().collect();
    if let Some(group) = replica_group {
        for i in 0..cfg.extra_replicas {
            replicas.push(domain.spawn(
                server_machine,
                &format!("prefix-replica-{}", i + 2),
                move |ctx| {
                    prefix_server(
                        ctx,
                        PrefixConfig {
                            degraded: Some(DegradedPrefixConfig {
                                authoritative: false,
                                replica_group: Some(group),
                                sync_peer,
                                flat_sync,
                                ..DegradedPrefixConfig::default()
                            }),
                            ..PrefixConfig::default()
                        },
                    )
                },
            ));
        }
    }
    domain.run();

    // Define the user's standard prefixes from a setup process.
    domain.client(workstation, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client
            .add_prefix("local", ContextPair::new(local_fs, ContextId::DEFAULT))
            .expect("define [local]");
        client
            .add_prefix("remote", ContextPair::new(remote_fs, ContextId::DEFAULT))
            .expect("define [remote]");
        client
            .add_prefix("home", ContextPair::new(local_fs, ContextId::HOME))
            .expect("define [home]");
    });

    SimWorld {
        domain,
        workstation,
        server_machine,
        prefix,
        local_fs,
        remote_fs,
        replica,
        replicas,
        replica_group,
    }
}

impl SimWorld {
    /// Runs `f` as a client on the workstation, driving the simulation to
    /// quiescence, and returns its result.
    pub fn client<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&dyn vkernel::Ipc) -> T + Send + 'static,
    {
        self.domain
            .client(self.workstation, f)
            .expect("sim client completed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vproto::OpenMode;

    #[test]
    fn world_boots_and_serves_all_paths() {
        let w = boot_world(Params1984::ethernet_3mbit());
        let local_fs = w.local_fs;
        let (a, b, c) = w.client(move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let a = client.read_file("[local]paper.txt").unwrap();
            let b = client.read_file("[remote]paper.txt").unwrap();
            let c = client.read_file("[home]notes.txt").unwrap();
            (a, b, c)
        });
        assert_eq!(a, b"V naming, local copy");
        assert_eq!(b, b"V naming, remote copy");
        assert_eq!(c, b"local home");
    }

    #[test]
    fn open_reports_final_server() {
        let w = boot_world(Params1984::ethernet_3mbit());
        let (local_fs, remote_fs) = (w.local_fs, w.remote_fs);
        let (s1, s2) = w.client(move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let h1 = client.open("[local]paper.txt", OpenMode::Read).unwrap();
            let h2 = client.open("[remote]paper.txt", OpenMode::Read).unwrap();
            (h1.server(), h2.server())
        });
        assert_eq!(s1, local_fs);
        assert_eq!(s2, remote_fs);
    }
}
