//! Seed-matrix anti-entropy tests.
//!
//! Like `fault_plane.rs` and `partition_plane.rs`, CI runs this file under
//! two distinct `VSIM_FAULT_SEED` values: every property must hold for
//! *any* seed. Sync rounds are ordinary scheduled messages and partition
//! heals are pure schedules, so one-round convergence is seed-independent
//! even with a lossy plane underneath — which is exactly what these tests
//! pin.

use bytes::Bytes;
use std::time::Duration;
use vnet::{FaultConfig, Params1984, Partition};
use vproto::{ContextId, ContextPair, Message, Pid, RequestCode, SyncStatusRec};
use vruntime::{NameClient, Staleness};
use vservers::DegradedPrefixConfig;
use vsim::exp13::{
    measure_convergence, measure_fresh_rescue, measure_periodic, measure_restart_recovery,
};
use vsim::world::{boot_world_cfg, WorldConfig};

/// The fault seed under test: `VSIM_FAULT_SEED` (decimal or 0x-hex), or a
/// fixed default so a bare `cargo test` is still deterministic.
fn seed() -> u64 {
    std::env::var("VSIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xFA17)
}

fn sync_status(ctx: &dyn vkernel::Ipc, server: Pid) -> Option<SyncStatusRec> {
    let reply = ctx
        .send(
            server,
            Message::request(RequestCode::SyncStatus),
            Bytes::new(),
            4096,
        )
        .ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    SyncStatusRec::decode(&reply.data).ok()
}

#[test]
fn one_sync_round_converges_for_any_seed() {
    // The PR's acceptance criterion, seed-independent: after the
    // heal-scheduled round the replica's table hashes identical to the
    // authority's, the resolve through it is Fresh, and the authority
    // answered zero binding queries to get there.
    let out = measure_convergence(seed(), Duration::from_millis(200), 8);
    assert!(out.hash_equal, "{out:?}");
    assert_eq!(out.rounds, 1, "{out:?}");
    assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
    assert_eq!(out.authority_queries, 0, "{out:?}");
}

#[test]
fn equal_seeds_produce_equal_event_hashes_under_sync() {
    let s = seed();
    let w = Duration::from_millis(60);
    let a = measure_convergence(s, w, 1);
    let b = measure_convergence(s, w, 1);
    assert_eq!(a, b, "same seed, same schedule: every observable differs");
}

#[test]
fn crash_rescue_is_fresh_for_any_seed() {
    let out = measure_fresh_rescue(seed());
    assert_eq!(out.staleness, Some(Staleness::Fresh), "{out:?}");
    assert_eq!(out.fresh_from_replica, 1, "{out:?}");
}

#[test]
fn restart_recovery_converges_in_one_round_for_any_seed() {
    let out = measure_restart_recovery(seed());
    assert_eq!(out.rounds, 1, "{out:?}");
    assert!(out.hash_equal, "{out:?}");
}

#[test]
fn periodic_sync_catches_silent_divergence_for_any_seed() {
    let out = measure_periodic(seed());
    assert!(out.hash_equal, "{out:?}");
    assert!(out.periods_to_converge <= 1.0, "{out:?}");
}

/// Regression test: a suspicion whose TTL has elapsed must be swept even
/// when no query for that prefix ever arrives again. (The original code
/// only consulted the TTL lazily, on the next query for the same prefix —
/// a server could report armed suspicions forever.)
#[test]
fn suspect_ttl_expires_without_another_binding_query() {
    let world = boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(seed())),
        degraded: Some(DegradedPrefixConfig::default()),
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    });
    let t0 = world.domain.run();
    let cut = t0 + Duration::from_millis(20);
    // A cut wider than the kernel's 155 ms ladder: the authority's
    // forward times out and arms a suspicion.
    world.domain.schedule_partition(Partition::between(
        world.workstation,
        world.server_machine,
        cut,
        Some(cut + Duration::from_millis(200)),
    ));
    let cut_at = cut.as_duration();
    let local_fs = world.local_fs;
    let authority = world.prefix;
    let (armed, after_ttl) = world.client(move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        client.resolve("[remote]").expect("pre-cut resolve");
        let target = cut_at + Duration::from_millis(5);
        let now = ctx.now();
        if target > now {
            ctx.sleep(target - now);
        }
        // This resolve burns the forward ladder and arms the suspicion;
        // the degraded retry that answers it does not clear it.
        let _ = client.resolve("[remote]");
        let armed = sync_status(ctx, authority);
        // Sleep past heal + suspect TTL (50 ms) without issuing a single
        // further binding query, then poke the server with an *unrelated*
        // message: the sweep must have expired the entry.
        ctx.sleep(Duration::from_millis(400));
        let after_ttl = sync_status(ctx, authority);
        (armed, after_ttl)
    });
    let armed = armed.expect("authority answered status while suspect");
    let after_ttl = after_ttl.expect("authority answered status after TTL");
    assert!(armed.suspects >= 1, "suspicion never armed: {armed:?}");
    assert_eq!(after_ttl.suspects, 0, "{after_ttl:?}");
    assert!(
        after_ttl.suspects_expired >= 1,
        "TTL sweep never ran: {after_ttl:?}"
    );
}
