//! The whole experiment suite must be deterministic: identical virtual-time
//! results on every run — the property that makes the reproduction's
//! numbers citable.

fn snapshot() -> Vec<(String, String)> {
    vsim::run_all()
        .into_iter()
        .flat_map(|rep| {
            rep.rows.into_iter().map(move |r| {
                (
                    format!("{}/{}", rep.id, r.label),
                    format!("{:.6}", r.measured),
                )
            })
        })
        .collect()
}

#[test]
fn all_experiments_are_bit_deterministic() {
    let a = snapshot();
    let b = snapshot();
    assert_eq!(a.len(), b.len());
    for ((label_a, val_a), (label_b, val_b)) in a.iter().zip(b.iter()) {
        assert_eq!(label_a, label_b);
        assert_eq!(val_a, val_b, "{label_a} differs across runs");
    }
}

#[test]
fn every_paper_row_is_within_tolerance() {
    // The global shape check: every row with a paper value must land
    // within 25% (most are within 2%; EXP-3's no-overlap model and EXP-5's
    // footprint analogue are the documented outliers).
    for rep in vsim::run_all() {
        for row in &rep.rows {
            if let Some(dev) = row.deviation_pct() {
                assert!(
                    dev.abs() < 25.0,
                    "{}/{}: {:+.1}% off the paper",
                    rep.id,
                    row.label,
                    dev
                );
            }
        }
    }
}
