//! Seed-matrix tests for the Merkle anti-entropy walk.
//!
//! Like `anti_entropy_plane.rs` and `gossip_plane.rs`, CI runs this file
//! under two distinct `VSIM_FAULT_SEED` values: every property must hold
//! for *any* seed. Three things are pinned here, all seed-independent by
//! construction (the walk rides ordinary scheduled messages):
//!
//! * **Gossip rides the walk.** With the authority partitioned away, the
//!   cold replica converges to its warm peer over gossip — and its
//!   `probe_rounds` counter, observed *inside* the cut, proves the round
//!   was a Merkle subtree walk rather than a whole-table digest.
//! * **Merkle ≡ flat, in-world.** The same partition→heal scenario run
//!   over the walk and over the legacy flat digest (the test-only
//!   differential oracle) adopts the same entries and converges to the
//!   same hash — only the probe counter tells them apart.
//! * **Determinism.** Equal seeds give equal observables on both paths.

use vnet::{FaultConfig, Params1984};
use vproto::{ContextId, ContextPair};
use vruntime::{NameClient, Staleness};
use vservers::DegradedPrefixConfig;
use vsim::exp13::{measure_convergence_with, CUT_WIDTHS, DIVERGENCES};
use vsim::exp14::measure_gossip_convergence;
use vsim::world::{boot_world_cfg, WorldConfig};

/// The fault seed under test: `VSIM_FAULT_SEED` (decimal or 0x-hex), or a
/// fixed default so a bare `cargo test` is still deterministic.
fn seed() -> u64 {
    std::env::var("VSIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xFA17)
}

#[test]
fn gossip_over_merkle_converges_under_a_dead_authority_for_any_seed() {
    // The cold replica hash-matches its warm peer while the authority is
    // unreachable, the probe counter witnesses that the gossip round was
    // a Merkle walk, and everything adopted answers Suspect until the
    // post-heal authority round vouches.
    let out = measure_gossip_convergence(seed());
    assert!(out.authority_down, "{out:?}");
    assert!(out.hash_equal_replicas, "{out:?}");
    assert!(out.gossip_rounds >= 1, "{out:?}");
    assert!(
        out.probe_rounds_during_cut > 0,
        "gossip never drove a subtree probe: {out:?}"
    );
    assert_eq!(
        out.staleness_during_cut,
        Some(Staleness::Suspect),
        "{out:?}"
    );
    assert_eq!(out.staleness_after_heal, Some(Staleness::Fresh), "{out:?}");
}

#[test]
fn merkle_and_flat_paths_converge_identically_for_any_seed() {
    // The in-world differential: every cut-width × divergence cell of the
    // EXP-13 matrix, run over the walk and over the flat oracle, adopts
    // the same entries, converges in one round, and ends hash-equal to
    // the authority — the probe counter is the only divergence.
    let s = seed();
    for width in CUT_WIDTHS {
        for divergence in DIVERGENCES {
            let merkle = measure_convergence_with(s, width, divergence, false);
            let flat = measure_convergence_with(s, width, divergence, true);
            assert!(merkle.hash_equal, "{merkle:?}");
            assert!(flat.hash_equal, "{flat:?}");
            assert_eq!(merkle.adopted, flat.adopted, "{merkle:?} vs {flat:?}");
            assert_eq!(merkle.rounds, 1, "{merkle:?}");
            assert_eq!(flat.rounds, 1, "{flat:?}");
            assert_eq!(merkle.staleness, Some(Staleness::Fresh), "{merkle:?}");
            assert_eq!(flat.staleness, Some(Staleness::Fresh), "{flat:?}");
            assert!(merkle.probe_rounds > 0, "walk never probed: {merkle:?}");
            assert_eq!(flat.probe_rounds, 0, "oracle probed: {flat:?}");
        }
    }
}

#[test]
fn client_sync_pull_rides_the_walk_for_any_seed() {
    // The client-API surface of the walk: `NameClient::sync_pull` asks a
    // replica to reconcile now, and the summary it returns reflects a
    // Merkle round — entries adopted, a nonzero authority epoch, not via
    // gossip — while the replica's probe counter and table hash witness
    // that the walk ran and converged.
    let world = boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(seed())),
        degraded: Some(DegradedPrefixConfig::default()),
        replica: true,
        sync_replica: true,
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    });
    world.domain.run();
    let replica = world.replica.expect("world has a replica");
    let authority = world.prefix;
    let (local_fs, remote_fs) = (world.local_fs, world.remote_fs);
    // Authority-side churn the replica has not seen yet.
    world
        .domain
        .client(world.workstation, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            client
                .add_prefix("pulled", ContextPair::new(remote_fs, ContextId::DEFAULT))
                .expect("authority add");
        })
        .expect("churn driver completed");
    let (summary, rec, auth) = world
        .domain
        .client(world.server_machine, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
            let summary = client.sync_pull(replica).expect("sync_pull");
            let rec = client.sync_status(replica).expect("replica status");
            let auth = client.sync_status(authority).expect("authority status");
            (summary, rec, auth)
        })
        .expect("pull driver completed");
    assert!(summary.adopted >= 1, "{summary:?}");
    assert!(summary.epoch > 0, "{summary:?}");
    assert!(!summary.via_gossip, "{summary:?}");
    assert!(rec.probe_rounds > 0, "round never probed: {rec:?}");
    assert_eq!(rec.table_hash, auth.table_hash, "{rec:?} vs {auth:?}");
}

#[test]
fn equal_seeds_produce_equal_merkle_observables() {
    let s = seed();
    assert_eq!(
        measure_gossip_convergence(s),
        measure_gossip_convergence(s),
        "same seed, same schedule: every observable differs"
    );
    let width = CUT_WIDTHS[1];
    let divergence = DIVERGENCES[1];
    assert_eq!(
        measure_convergence_with(s, width, divergence, false),
        measure_convergence_with(s, width, divergence, false),
        "merkle path: same seed, same schedule, different observables"
    );
    assert_eq!(
        measure_convergence_with(s, width, divergence, true),
        measure_convergence_with(s, width, divergence, true),
        "flat oracle: same seed, same schedule, different observables"
    );
}
