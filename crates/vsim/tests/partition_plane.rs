//! Seed-matrix partition-plane tests.
//!
//! Like `fault_plane.rs`, CI runs this file under two distinct
//! `VSIM_FAULT_SEED` values: every property must hold for *any* seed.
//! Partitions themselves draw no randomness (they are pure schedules), so
//! the degraded-resolution outcomes are seed-independent even when a lossy
//! plane runs underneath — which is exactly what these tests pin.

use std::time::Duration;
use vnet::{FaultConfig, FaultStats, Params1984, Partition};
use vproto::{ContextId, ContextPair, OpenMode};
use vruntime::{DegradedStats, NameClient, Staleness};
use vservers::DegradedPrefixConfig;
use vsim::exp12::{measure_asymmetric, measure_replica_rescue};
use vsim::world::{boot_world_cfg, WorldConfig};

/// The fault seed under test: `VSIM_FAULT_SEED` (decimal or 0x-hex), or a
/// fixed default so a bare `cargo test` is still deterministic.
fn seed() -> u64 {
    std::env::var("VSIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xFA17)
}

/// A canned scenario combining a lossy plane with a 200 ms symmetric
/// workstation↔server cut: a warm resolve, a during-cut resolve (which
/// must be served degraded), and a post-heal open. Returns everything
/// observable.
fn partitioned_lossy_scenario(s: u64) -> (u64, FaultStats, Option<Staleness>, DegradedStats) {
    let world = boot_world_cfg(WorldConfig {
        faults: Some(FaultConfig::lossless(s).with_loss(0.02)),
        degraded: Some(DegradedPrefixConfig::default()),
        ..WorldConfig::new(Params1984::ethernet_3mbit())
    });
    let t0 = world.domain.run();
    let cut = t0 + Duration::from_millis(20);
    world.domain.schedule_partition(Partition::between(
        world.workstation,
        world.server_machine,
        cut,
        Some(cut + Duration::from_millis(200)),
    ));
    let cut_at = cut.as_duration();
    let local_fs = world.local_fs;
    let (staleness, dstats) = world.client(move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.enable_degraded_mode();
        client.resolve("[remote]").expect("pre-cut resolve");
        let target = cut_at + Duration::from_millis(5);
        let now = ctx.now();
        if target > now {
            ctx.sleep(target - now);
        }
        let during = client.resolve("[remote]").ok();
        let after = cut_at + Duration::from_millis(300);
        let now = ctx.now();
        if after > now {
            ctx.sleep(after - now);
        }
        client
            .open("[remote]paper.txt", OpenMode::Read)
            .expect("post-heal open");
        (during.map(|b| b.staleness), client.degraded_stats())
    });
    (
        world.domain.event_hash(),
        world.domain.fault_stats(),
        staleness,
        dstats,
    )
}

#[test]
fn equal_seeds_produce_equal_event_hashes_under_partitions() {
    let s = seed();
    let a = partitioned_lossy_scenario(s);
    let b = partitioned_lossy_scenario(s);
    assert_eq!(a, b, "same seed, same schedule: every observable differs");
}

#[test]
fn resolution_during_a_partition_is_suspect_not_a_timeout() {
    // The PR's acceptance criterion: while a single host is unreachable,
    // name resolution still succeeds — served degraded and honestly
    // tagged — instead of surfacing the kernel's timeout. Holds for any
    // seed: the cut severs every retransmission regardless of loss draws.
    let (_, _, staleness, dstats) = partitioned_lossy_scenario(seed());
    assert_eq!(staleness, Some(Staleness::Suspect), "{dstats:?}");
    assert!(dstats.suspect_bindings >= 1, "{dstats:?}");
    assert_eq!(dstats.authority_failures, 0, "{dstats:?}");
}

#[test]
fn partition_accounting_balances() {
    // The extended conservation law: every remote attempt the plane took
    // away — by loss or by severance — is accounted for as a retransmit
    // wait or an exhausted ladder. No silent drops.
    let (_, kernel, _, _) = partitioned_lossy_scenario(seed());
    assert!(kernel.partition_drops > 0, "{kernel:?}");
    assert_eq!(
        kernel.drops + kernel.partition_drops,
        kernel.retransmits + kernel.exhausted * 5,
        "{kernel:?}"
    );
}

#[test]
fn asymmetric_cut_is_rescued_by_the_name_cache() {
    // Replies severed, requests delivered: the prefix server never sees a
    // forward fail, so only the client-side cache can answer.
    let out = measure_asymmetric(seed(), Duration::from_millis(400));
    assert_eq!(out.staleness, Some(Staleness::Suspect), "{out:?}");
    assert_eq!(out.cache_fallbacks, 1, "{out:?}");
}

#[test]
fn prefix_crash_is_rescued_by_the_replica_for_any_seed() {
    let out = measure_replica_rescue(seed());
    assert_eq!(out.staleness, Some(Staleness::Suspect), "{out:?}");
    assert_eq!(out.replica_fallbacks, 1, "{out:?}");
}
