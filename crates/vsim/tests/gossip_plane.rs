//! Seed-matrix gossip and tombstone-GC tests.
//!
//! Like `anti_entropy_plane.rs`, CI runs this file under two distinct
//! `VSIM_FAULT_SEED` values: every property must hold for *any* seed.
//! Gossip probes, digest rounds, and GC all ride ordinary scheduled
//! messages, so authority-down convergence and the bounded-tombstone
//! sawtooth are seed-independent — which is exactly what these tests pin.

use vruntime::Staleness;
use vsim::exp14::{is_sawtooth, measure_gossip_convergence, measure_tombstone_bound, CHURN_OPS};

/// The fault seed under test: `VSIM_FAULT_SEED` (decimal or 0x-hex), or a
/// fixed default so a bare `cargo test` is still deterministic.
fn seed() -> u64 {
    std::env::var("VSIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xFA17)
}

#[test]
fn gossip_converges_replicas_under_a_dead_authority_for_any_seed() {
    // The PR's first acceptance criterion, seed-independent: the cold
    // replica hash-matches its gossip peer while the authority is still
    // partitioned away, and the data it adopted answers Suspect until the
    // post-heal authority round flips it Fresh.
    let out = measure_gossip_convergence(seed());
    assert!(out.authority_down, "{out:?}");
    assert!(out.hash_equal_replicas, "{out:?}");
    assert!(out.gossip_adopted >= 3, "{out:?}");
    assert_eq!(
        out.staleness_during_cut,
        Some(Staleness::Suspect),
        "{out:?}"
    );
    assert_eq!(out.staleness_after_heal, Some(Staleness::Fresh), "{out:?}");
}

#[test]
fn tombstone_count_is_a_bounded_sawtooth_for_any_seed() {
    // The second acceptance criterion: under sustained define/delete
    // churn with both replicas pulling periodically, the authority's
    // tombstone count stays bounded (peak below the delete total), is
    // non-monotonic (the horizon GC visibly collects), and drains to
    // zero once every watermark passes the last delete.
    let out = measure_tombstone_bound(seed());
    assert!(out.peak < CHURN_OPS, "{out:?}");
    assert!(is_sawtooth(&out.samples), "{out:?}");
    assert_eq!(out.final_tombstones, 0, "{out:?}");
    assert!(out.hash_equal, "{out:?}");
}

#[test]
fn equal_seeds_produce_equal_gossip_observables() {
    let s = seed();
    assert_eq!(
        measure_gossip_convergence(s),
        measure_gossip_convergence(s),
        "same seed, same schedule: every observable differs"
    );
    assert_eq!(
        measure_tombstone_bound(s),
        measure_tombstone_bound(s),
        "same seed, same schedule: every observable differs"
    );
}
