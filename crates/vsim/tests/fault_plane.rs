//! Seed-matrix fault-plane tests.
//!
//! CI runs this file twice with two distinct `VSIM_FAULT_SEED` values:
//! every property here must hold for *any* seed, and the determinism
//! property (equal seeds ⇒ equal event hashes) is what the vcheck gate
//! enforces for the canned experiments.

use std::time::Duration;
use vnaming::BackoffPolicy;
use vnet::{FaultConfig, FaultStats, Params1984};
use vproto::{ContextId, ContextPair, OpenMode};
use vruntime::{NameClient, RetryStats};
use vservers::{prefix_server, PrefixConfig};
use vsim::world::boot_world_with;

/// The fault seed under test: `VSIM_FAULT_SEED` (decimal or 0x-hex), or a
/// fixed default so a bare `cargo test` is still deterministic.
fn seed() -> u64 {
    std::env::var("VSIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xFA17)
}

/// A canned lossy scenario: 50 prefix-route opens of a remote file.
/// Returns everything observable: the domain's event hash, the kernel's
/// fault accounting, the number of successful opens, and the client's
/// retry counters.
fn lossy_scenario(seed: u64, loss_p: f64) -> (u64, FaultStats, u64, RetryStats) {
    let world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(FaultConfig::lossless(seed).with_loss(loss_p)),
    );
    let local_fs = world.local_fs;
    let (successes, retry_stats) = world.client(move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        let mut successes = 0u64;
        for _ in 0..50 {
            if client.open("[remote]paper.txt", OpenMode::Read).is_ok() {
                successes += 1;
            }
        }
        (successes, client.retry_stats())
    });
    (
        world.domain.event_hash(),
        world.domain.fault_stats(),
        successes,
        retry_stats,
    )
}

#[test]
fn equal_seeds_produce_equal_event_hashes() {
    let s = seed();
    let a = lossy_scenario(s, 0.02);
    let b = lossy_scenario(s, 0.02);
    assert_eq!(a, b, "same seed, same workload: every observable differs");
}

#[test]
fn retries_are_bounded_under_heavy_loss() {
    let (_, kernel, successes, retries) = lossy_scenario(seed(), 0.2);
    let policy = BackoffPolicy::default();
    // Every open costs at least one attempt and at most the policy budget:
    // a retry storm is structurally impossible.
    assert!(retries.attempts >= 50, "{retries:?}");
    assert!(
        retries.attempts <= 50 * policy.max_attempts as u64,
        "{retries:?}"
    );
    assert_eq!(retries.attempts - 50, retries.retries, "{retries:?}");
    // Under pure loss the only failure mode is a timed-out transaction;
    // every open either succeeded or exhausted its budget.
    assert_eq!(successes + retries.gave_up, 50, "{retries:?}");
    // The kernel's ladder accounting balances (partition_drops is zero
    // here — no cut is scheduled — but the extended law is what holds).
    assert_eq!(
        kernel.drops + kernel.partition_drops,
        kernel.retransmits + kernel.exhausted * 5,
        "{kernel:?}"
    );
}

#[test]
fn stale_client_binding_recovers_via_broadcast_requery() {
    // A client that bound the prefix server's pid before a crash must
    // recover through the broadcast GetPid re-query (paper §4.2: caches
    // are hints, re-resolution is the recovery), not by luck of timing.
    let world = boot_world_with(
        Params1984::ethernet_3mbit(),
        Some(FaultConfig::lossless(seed())),
    );
    let t0 = world.domain.run();
    let t_crash = t0 + Duration::from_millis(50);
    let t_restart = t_crash + Duration::from_millis(50);
    world.domain.schedule_crash(world.prefix, t_crash);

    let (local_fs, remote_fs) = (world.local_fs, world.remote_fs);
    let wake = t_restart.as_duration();
    world
        .domain
        .spawn(world.workstation, "prefix-standby", move |ctx| {
            let now = ctx.now();
            if wake > now {
                ctx.sleep(wake - now);
            }
            prefix_server(
                ctx,
                PrefixConfig {
                    preload_direct: vec![(
                        "remote".into(),
                        ContextPair::new(remote_fs, ContextId::DEFAULT),
                    )],
                    ..PrefixConfig::default()
                },
            );
        });

    let resume = t_restart + Duration::from_millis(50);
    let resume_at = resume.as_duration();
    let stats = world.client(move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(local_fs, ContextId::DEFAULT));
        client.set_retry_policy(BackoffPolicy::recovery());
        // Bind the original prefix server's pid...
        client.open("[remote]paper.txt", OpenMode::Read).unwrap();
        // ...sleep through the crash and the restart...
        let now = ctx.now();
        if resume_at > now {
            ctx.sleep(resume_at - now);
        }
        // ...and open again: the bound pid is stale (the server at it is
        // dead), so the client must re-query and rebind.
        client.open("[remote]paper.txt", OpenMode::Read).unwrap();
        client.retry_stats()
    });
    assert!(stats.retries >= 1, "{stats:?}");
    assert!(
        stats.rebinds >= 1,
        "stale binding never re-queried: {stats:?}"
    );
    assert_eq!(stats.gave_up, 0, "{stats:?}");
}
