//! The program manager (paper §3, §6): programs in execution as a context.
//!
//! The paper's single "list directory" command displays "programs in
//! execution" through exactly the same typed-descriptor interface as disk
//! files. The program manager owns that context: executing a program adds
//! an entry (with the root pid of the new program), termination removes it.

use crate::common::{reply_code, reply_data, reply_descriptor};
use std::collections::BTreeMap;
use vio::{serve_read, InstanceTable};
use vkernel::Ipc;
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, CsName, DescriptorExt, DescriptorTag, InstanceId, Message, ObjectDescriptor, ObjectId,
    OpenMode, Pid, ReplyCode, RequestCode, Scope, ServiceId,
};

/// Configuration for a [`program_manager`] process.
#[derive(Debug, Clone)]
pub struct ProgramConfig {
    /// Registration scope (one program manager per workstation: `Local`).
    pub scope: Scope,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        ProgramConfig {
            scope: Scope::Local,
        }
    }
}

struct Program {
    id: ObjectId,
    pid: Pid,
    started: u64,
}

/// Runs a program manager until the domain shuts down.
///
/// Protocol use:
/// * `CreateObject name` (with a `Program` descriptor carrying the root
///   pid in its extension) — register a program in execution.
/// * `RemoveObject name` — the program terminated.
/// * `CreateInstance ""` (directory mode) — list programs in execution.
/// * `QueryObject name` — one program's descriptor.
pub fn program_manager(ctx: &dyn Ipc, config: ProgramConfig) {
    let mut programs: BTreeMap<Vec<u8>, Program> = BTreeMap::new();
    let mut dir_instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut next_obj = 0u32;
    let mut clock = 0u64;
    ctx.set_pid(ServiceId::PROGRAM_MANAGER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let name = req.remaining().to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateObject) => {
                    if name.is_empty() {
                        reply_code(ctx, rx, ReplyCode::IllegalName);
                        continue;
                    }
                    if programs.contains_key(&name) {
                        reply_code(ctx, rx, ReplyCode::NameInUse);
                        continue;
                    }
                    let pid = ObjectDescriptor::decode_one(&req.extra)
                        .ok()
                        .and_then(|d| match d.ext {
                            DescriptorExt::Program { pid } => Some(pid),
                            _ => None,
                        })
                        .unwrap_or(rx.from);
                    clock += 1;
                    next_obj += 1;
                    programs.insert(
                        name,
                        Program {
                            id: ObjectId(next_obj),
                            pid,
                            started: clock,
                        },
                    );
                    reply_code(ctx, rx, ReplyCode::Ok);
                }
                Some(RequestCode::RemoveObject) => {
                    let code = if programs.remove(&name).is_some() {
                        ReplyCode::Ok
                    } else {
                        ReplyCode::NotFound
                    };
                    reply_code(ctx, rx, code);
                }
                Some(RequestCode::QueryObject) => match programs.get(&name) {
                    Some(p) => reply_descriptor(ctx, rx, &program_descriptor(&name, p)),
                    None => reply_code(ctx, rx, ReplyCode::NotFound),
                },
                Some(RequestCode::CreateInstance) if name.is_empty() => {
                    let pattern = if req.extra.is_empty() {
                        None
                    } else {
                        Some(req.extra.clone())
                    };
                    let mut b = match pattern {
                        Some(p) => DirectoryBuilder::with_pattern(p),
                        None => DirectoryBuilder::new(),
                    };
                    for (n, p) in &programs {
                        b.push(&program_descriptor(n, p));
                    }
                    let snapshot = b.finish();
                    let size = snapshot.len() as u64;
                    let inst = dir_instances.open(rx.from, OpenMode::Directory, snapshot);
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                match dir_instances
                    .check(id, false)
                    .and_then(|inst| serve_read(&inst.state, offset, count).map(|w| w.to_vec()))
                {
                    Ok(w) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, w.len() as u16);
                        reply_data(ctx, rx, m, w);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if dir_instances.release(id).is_some() {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

fn program_descriptor(name: &[u8], p: &Program) -> ObjectDescriptor {
    ObjectDescriptor::new(DescriptorTag::Program, CsName::from(name))
        .with_object_id(p.id)
        .with_modified(p.started)
        .with_ext(DescriptorExt::Program { pid: p.pid })
}
