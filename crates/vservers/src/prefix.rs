//! The per-user context prefix server (paper §5.8, §6).
//!
//! "V makes available standard context prefix servers, which provide each
//! user with locally defined character string names for contexts on servers
//! of interest." A context prefix is the part of a CSname parsed by this
//! server to decide where to forward the request; the syntax is `[prefix]`
//! with the prefix terminated by the closing `]`.
//!
//! Entries are either *direct* — a concrete (server-pid, context-id) pair —
//! or *logical*: a (service, well-known-context) pair re-resolved via
//! `GetPid` on every use (paper §6), which is how generic services get
//! character string names and how rebinding after a server crash works
//! without updating the prefix table.
//!
//! With [`DegradedPrefixConfig`] the server also resolves *degraded*: when
//! forwarding through a direct entry times out (the bound host is alive
//! yet unreachable — a partition, which the kernel cannot tell from a
//! crash), the prefix is marked suspect for a TTL, and while suspect a
//! `QueryName` for the bare prefix is answered straight from the table
//! with the staleness flag set ([`vproto::fields::W_STALENESS`]) instead
//! of timing out again. Non-authoritative replicas (`authoritative:
//! false`) always answer from their table this way and can join a
//! multicast replica group, which is the client's last-resort fallback.

use crate::common::{forward_csname, reply_code, reply_data, reply_descriptor};
use crate::shard::{ShardedTable, Snapshot};
use crate::suspect::SuspectSet;
use crate::sync::{ApplyOutcome, MerkleWalk, SyncTable, TombstoneOutcome};
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use vio::{serve_read, InstanceTable};
use vkernel::{GroupId, Ipc, Received};
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, ContextId, ContextPair, CsName, DescriptorExt, DescriptorTag, InstanceId, Message,
    ObjectDescriptor, OpenMode, Pid, ReplyCode, RequestCode, ResolveAnswer, ResolveBatchMsg,
    ResolveBatchReply, Scope, ServiceId, SyncBinding, SyncDeltaMsg, SyncDigestMsg, SyncEntry,
    SyncProbeMsg, SyncProbeReply, SyncStatusRec, RESOLVE_NOT_FOUND, RESOLVE_NO_SERVER, RESOLVE_OK,
};

/// Cap on how many already-queued requests one loop iteration drains into
/// a resolution burst before replying — bounds the latency a queued
/// non-resolve request can suffer behind a burst.
const MAX_RESOLVE_BURST: usize = 64;

/// One prefix table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrefixTarget {
    /// Forward to a concrete (server, context) pair.
    Direct(ContextPair),
    /// Re-resolve the service via `GetPid` on each use (paper §6).
    Logical {
        service: ServiceId,
        context: ContextId,
    },
}

impl PrefixTarget {
    /// The wire form carried in anti-entropy deltas.
    fn to_binding(self) -> SyncBinding {
        match self {
            PrefixTarget::Direct(pair) => SyncBinding {
                logical: false,
                target: pair.server.raw(),
                context: pair.context.raw(),
            },
            PrefixTarget::Logical { service, context } => SyncBinding {
                logical: true,
                target: service.raw(),
                context: context.raw(),
            },
        }
    }

    /// The resolvable form of a wire binding.
    fn from_binding(b: &SyncBinding) -> Self {
        if b.logical {
            PrefixTarget::Logical {
                service: ServiceId::new(b.target),
                context: ContextId::new(b.context),
            }
        } else {
            PrefixTarget::Direct(ContextPair::new(
                Pid::from_raw(b.target),
                ContextId::new(b.context),
            ))
        }
    }
}

/// Cumulative anti-entropy bookkeeping, reported via `SyncStatus`.
#[derive(Debug, Clone, Copy, Default)]
struct SyncCounters {
    /// Completed sync rounds (replica side).
    rounds: u32,
    /// Delta entries adopted.
    adopted: u32,
    /// Live entries dropped by adopted tombstones.
    dropped: u32,
    /// Entries promoted unverified → verified.
    promoted: u32,
    /// Suspicion entries expired by the TTL sweep.
    suspects_expired: u32,
    /// Bare-prefix `QueryName` binding queries received.
    binding_queries: u32,
    /// Completed replica↔replica gossip rounds.
    gossip_rounds: u32,
    /// Entries adopted from gossip peers (held Suspect).
    gossip_adopted: u32,
    /// Tombstones dropped by horizon GC.
    gc_dropped: u32,
    /// Merkle subtree probes initiated as a round puller.
    probe_rounds: u32,
}

/// The advisory entry-count message word for sync payloads: saturates at
/// `u16::MAX` instead of silently truncating tables past 65 535 entries —
/// the 32-bit count inside the payload is authoritative.
fn count_word(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Degraded-mode resolution settings for a [`prefix_server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedPrefixConfig {
    /// How long a prefix stays suspect after a forward times out. While
    /// suspect, bare-prefix `QueryName`s are answered from the table
    /// (staleness flagged) instead of re-forwarding; when the TTL
    /// expires, the next request probes the bound server again.
    pub suspect_ttl: Duration,
    /// `true` (the default) forwards first and only answers degraded
    /// while a suspicion is armed. `false` marks a *replica*: every
    /// bare-prefix `QueryName` is answered from the table with the
    /// staleness flag — the replica never claims authority.
    pub authoritative: bool,
    /// A multicast group to join at boot, so clients can reach any
    /// surviving replica with one `send_group` when the authoritative
    /// server is unreachable.
    pub replica_group: Option<GroupId>,
    /// The authoritative peer this server reconciles against when it
    /// receives a `SyncPull`: one digest → delta → apply round per pull.
    /// `None` (the default) disables anti-entropy — a `SyncPull` answers
    /// `NoServer`.
    pub sync_peer: Option<Pid>,
    /// **Test-only differential oracle.** `true` drives this server's
    /// `SyncPull`/`SyncGossip` rounds over the legacy whole-table
    /// flat-digest path instead of the Merkle walk; responders always
    /// serve both. The harnesses flip this to prove the two paths leave
    /// byte-identical tables — production configs leave it `false`.
    pub flat_sync: bool,
}

impl Default for DegradedPrefixConfig {
    fn default() -> Self {
        DegradedPrefixConfig {
            suspect_ttl: Duration::from_millis(50),
            authoritative: true,
            replica_group: None,
            sync_peer: None,
            flat_sync: false,
        }
    }
}

/// Configuration for a [`prefix_server`] process.
#[derive(Debug, Clone)]
pub struct PrefixConfig {
    /// Registration scope for [`ServiceId::CONTEXT_PREFIX`]. Per-user
    /// prefix servers are `Local` — each workstation runs its own
    /// (paper §6).
    pub scope: Scope,
    /// Direct prefixes installed at boot — the user's "login script"
    /// bindings, which is what lets a *restarted* prefix server come back
    /// with its soft-state table already rebuilt (EXP-11 recovery).
    pub preload_direct: Vec<(String, ContextPair)>,
    /// Logical prefixes installed at boot: (prefix, service,
    /// well-known-context), re-resolved via `GetPid` on each use.
    pub preload_logical: Vec<(String, ServiceId, ContextId)>,
    /// Degraded-mode resolution; `None` (the default) times out like the
    /// paper's protocol.
    pub degraded: Option<DegradedPrefixConfig>,
}

impl Default for PrefixConfig {
    fn default() -> Self {
        PrefixConfig {
            scope: Scope::Local,
            preload_direct: Vec::new(),
            preload_logical: Vec::new(),
            degraded: None,
        }
    }
}

/// Estimated resident size of a prefix table with the given entries —
/// the reproduction's analogue of the paper's "4.5 kilobytes of code plus
/// 2.6 kilobytes of data" (§6), reported by EXP-5.
pub fn prefix_footprint_bytes(n_entries: usize, total_name_bytes: usize) -> usize {
    use std::mem::size_of;
    // Key Vec header + bytes, value, and an estimated B-tree per-entry share.
    n_entries * (size_of::<Vec<u8>>() + size_of::<ContextPair>() + size_of::<u32>() * 2 + 16)
        + total_name_bytes
}

/// Runs a context prefix server until the domain shuts down.
///
/// Implements the optional add/delete context-name operations (paper §5.7),
/// routing of every bracketed CSname request, a context directory of the
/// prefixes themselves, and the inverse (server, context) → `[prefix]`
/// mapping.
pub fn prefix_server(ctx: &dyn Ipc, config: PrefixConfig) {
    // An authoritative server's preloads are first-hand: stamped at boot
    // time and verified. A replica's preloads are hearsay (epoch 0,
    // unverified) until a sync round or a successful probe vouches for
    // them.
    let authoritative = config.degraded.is_none_or(|d| d.authoritative);
    let boot_ns = ctx.now().as_nanos() as u64;
    let mut table = SyncTable::new();
    for (name, pair) in &config.preload_direct {
        let b = PrefixTarget::Direct(*pair).to_binding();
        if authoritative {
            table.define(name.as_bytes().to_vec(), b, boot_ns);
        } else {
            table.preload(name.as_bytes().to_vec(), b);
        }
    }
    for (name, service, context) in &config.preload_logical {
        let b = PrefixTarget::Logical {
            service: *service,
            context: *context,
        }
        .to_binding();
        if authoritative {
            table.define(name.as_bytes().to_vec(), b, boot_ns);
        } else {
            table.preload(name.as_bytes().to_vec(), b);
        }
    }
    // The write-side table wraps into a sharded, snapshot-published view:
    // definitions and sync rounds mutate the `SyncTable` inside, and the
    // loop publishes a fresh read-only snapshot before serving the next
    // request — resolutions never read the write side.
    let mut sharded = ShardedTable::from_table(table);
    let mut instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    // Suspect prefixes, indexed by name and by TTL expiry.
    let mut suspects = SuspectSet::default();
    let mut counters = SyncCounters::default();
    // Requests drained by a resolution burst that turned out not to be
    // resolutions themselves; served in order before blocking again.
    let mut queued: VecDeque<Received> = VecDeque::new();
    ctx.set_pid(ServiceId::CONTEXT_PREFIX, config.scope);
    if let Some(group) = config.degraded.and_then(|d| d.replica_group) {
        let _ = ctx.join_group(group);
    }

    loop {
        // Publish any table mutations from the previous iteration before
        // blocking: either the whole batch of a sync round becomes visible
        // or none of it does, so a reader can never observe a half-applied
        // round. A no-op (and no allocation) when nothing changed.
        sharded.publish();
        let rx = match queued.pop_front() {
            Some(rx) => rx,
            None => match ctx.receive() {
                Ok(rx) => rx,
                Err(_) => break,
            },
        };
        let msg = rx.msg;
        // Sweep expired suspicions on every iteration — a suspicion whose
        // TTL elapsed must clear even if no query for that prefix ever
        // arrives again (any message wakes the sweep). The TTL-ordered
        // index pops exactly the expired entries: O(expired), not O(armed).
        {
            let now_ns = ctx.now().as_nanos() as u64;
            counters.suspects_expired += suspects.expire(now_ns);
        }
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            handle_csname(
                ctx,
                rx,
                &mut sharded,
                &mut instances,
                req,
                config.degraded,
                &mut suspects,
                &mut counters,
            );
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                match instances
                    .check(id, false)
                    .and_then(|inst| serve_read(&inst.state, offset, count))
                {
                    Ok(window) => {
                        let window = window.to_vec();
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, window.len() as u16);
                        reply_data(ctx, rx, m, window);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if instances.release(id).is_some() {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            Some(RequestCode::GetContextName) => {
                // Inverse mapping: (server, context) → "[prefix]" (§5.7).
                let server = msg.pid_at(fields::W_TARGET_PID_LO);
                let target_ctx = ContextId::new(msg.word32(fields::W_TARGET_CTX_LO));
                let looking_for = ContextPair::new(server, target_ctx);
                let found = sharded.table().live_iter().find_map(|(name, b, _)| {
                    match PrefixTarget::from_binding(b) {
                        PrefixTarget::Direct(pair) if pair == looking_for => Some(name.to_vec()),
                        _ => None,
                    }
                });
                match found {
                    Some(name) => {
                        let mut out = Vec::with_capacity(name.len() + 2);
                        out.push(b'[');
                        out.extend_from_slice(&name);
                        out.push(b']');
                        reply_data(ctx, rx, Message::ok(), out);
                    }
                    // Paper §6: "there is no guarantee that there is an
                    // inverse mapping".
                    None => reply_code(ctx, rx, ReplyCode::NotFound),
                }
            }
            Some(RequestCode::Echo) => {
                let _ = ctx.reply(rx, msg, Bytes::new());
            }
            Some(RequestCode::ResolveBatch) => {
                // Resolve a batch of bare prefixes against ONE published
                // snapshot. Any further `ResolveBatch` requests already
                // sitting in the mailbox join the burst (up to a cap) and
                // are served from the same snapshot; the first non-resolve
                // request drained ends the burst and is queued for the
                // next iteration, so ordering for mutations is preserved.
                let mut burst = vec![rx];
                while burst.len() < MAX_RESOLVE_BURST {
                    match ctx.try_receive() {
                        Ok(Some(drained))
                            if drained.msg.request_code() == Some(RequestCode::ResolveBatch) =>
                        {
                            burst.push(drained);
                        }
                        Ok(Some(drained)) => {
                            queued.push_back(drained);
                            break;
                        }
                        Ok(None) | Err(_) => break,
                    }
                }
                let snap = sharded.snapshot();
                let now_ns = ctx.now().as_nanos() as u64;
                for rx in burst {
                    serve_resolve_batch(ctx, rx, &snap, &suspects, now_ns, &mut counters);
                }
            }
            Some(RequestCode::SyncPull) => {
                // One anti-entropy round against the configured authority:
                // digest out, delta back, apply atomically. A successful
                // round is the authority vouching for the whole table, so
                // armed suspicions clear, everything becomes verified, and
                // the synced watermark advances to the authority's epoch.
                // If the authority is unreachable (partitioned or crashed)
                // and a replica group is configured, fall back to one
                // gossip round against a peer replica — adopted entries
                // stay Suspect and the watermark does not move.
                let Some(d) = config.degraded.filter(|d| d.sync_peer.is_some()) else {
                    reply_code(ctx, rx, ReplyCode::NoServer);
                    continue;
                };
                let mut via_gossip = false;
                let mut applied: Option<ApplyOutcome> = None;
                if let Some(peer) = d.sync_peer {
                    let out = if d.flat_sync {
                        authority_round(
                            ctx,
                            sharded.table_mut(),
                            peer,
                            &mut counters,
                            &mut suspects,
                        )
                    } else {
                        merkle_authority_round(
                            ctx,
                            sharded.table_mut(),
                            peer,
                            &mut counters,
                            &mut suspects,
                        )
                    };
                    if let Some(out) = out {
                        applied = Some(out);
                    }
                }
                if applied.is_none() {
                    if let Some(group) = d.replica_group {
                        let out = if d.flat_sync {
                            gossip_round(ctx, sharded.table_mut(), group, &mut counters)
                        } else {
                            merkle_gossip_round(ctx, sharded.table_mut(), group, &mut counters)
                        };
                        if let Some(out) = out {
                            via_gossip = true;
                            applied = Some(out);
                        }
                    }
                }
                match applied {
                    Some(out) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_SYNC_ADOPTED, out.adopted as u16)
                            .set_word(fields::W_SYNC_DROPPED, out.dropped_live as u16)
                            .set_word(fields::W_SYNC_PROMOTED, out.promoted as u16)
                            .set_word32(fields::W_SYNC_EPOCH_LO, sharded.table().max_epoch() as u32)
                            .set_word(fields::W_SYNC_GOSSIP, u16::from(via_gossip));
                        reply_data(ctx, rx, m, Vec::new());
                    }
                    // Nothing was applied: the round is atomic, the peer
                    // just wasn't reachable this time. That is a transient
                    // condition, so answer `Retry` — `NoServer` is reserved
                    // for anti-entropy not being configured at all.
                    None => reply_code(ctx, rx, ReplyCode::Retry),
                }
            }
            Some(RequestCode::SyncGossip) => {
                let phase = msg.word(fields::W_SYNC_PHASE);
                if phase == 1 {
                    // Probe (multicast on the replica group): group replies
                    // carry no payload, so just volunteer this server's pid
                    // — the prober runs the digest round unicast.
                    let mut m = Message::ok();
                    m.set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    let _ = ctx.reply(rx, m, Bytes::new());
                    continue;
                }
                // Trigger (unicast): run one gossip round now.
                let Some(group) = config.degraded.and_then(|d| d.replica_group) else {
                    reply_code(ctx, rx, ReplyCode::NoServer);
                    continue;
                };
                let flat = config.degraded.is_some_and(|d| d.flat_sync);
                let out = if flat {
                    gossip_round(ctx, sharded.table_mut(), group, &mut counters)
                } else {
                    merkle_gossip_round(ctx, sharded.table_mut(), group, &mut counters)
                };
                match out {
                    Some(out) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_SYNC_ADOPTED, out.adopted as u16)
                            .set_word(fields::W_SYNC_DROPPED, out.dropped_live as u16)
                            .set_word(fields::W_SYNC_PROMOTED, out.promoted as u16)
                            .set_word32(fields::W_SYNC_EPOCH_LO, sharded.table().max_epoch() as u32)
                            .set_word(fields::W_SYNC_GOSSIP, 1);
                        reply_data(ctx, rx, m, Vec::new());
                    }
                    // Transient: no peer answered this round's probe.
                    None => reply_code(ctx, rx, ReplyCode::Retry),
                }
            }
            Some(RequestCode::SyncDigest) => {
                let payload = match ctx.move_from(&rx) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                match SyncDigestMsg::decode(&payload) {
                    Ok(digest) => {
                        let now_ns = ctx.now().as_nanos() as u64;
                        let table = sharded.table_mut();
                        if authoritative {
                            // The digest doubles as the sender's watermark
                            // ack: record it, recompute the GC horizon
                            // (min watermark across known replicas), and
                            // collect what every replica has provably
                            // adopted — before computing the delta, so the
                            // fresh horizon governs the round.
                            table.record_watermark(rx.from.raw(), digest.watermark);
                            let horizon = table.horizon();
                            counters.gc_dropped += table.gc_below(horizon);
                        }
                        let delta = SyncDeltaMsg {
                            epoch: 0, // filled below, after stamping
                            horizon: if authoritative { table.gc_horizon() } else { 0 },
                            entries: table.delta_for(&digest.entries, authoritative, now_ns),
                        };
                        // The epoch header is stamped after `delta_for` so
                        // it covers any tombstones freshly minted for the
                        // digest's unknown prefixes: a replica that applies
                        // this whole delta really has synced through it.
                        let delta = SyncDeltaMsg {
                            epoch: table.max_epoch(),
                            ..delta
                        };
                        let mut m = Message::ok();
                        m.set_word(fields::W_SYNC_COUNT, count_word(delta.entries.len()));
                        reply_data(ctx, rx, m, delta.encode());
                    }
                    Err(_) => reply_code(ctx, rx, ReplyCode::BadArgs),
                }
            }
            Some(RequestCode::SyncProbe) => {
                // One step of a puller's Merkle walk. The responder's role
                // mirrors the flat `SyncDigest` handler: an authoritative
                // server records the probe's watermark and GCs behind the
                // fresh horizon on *every* probe (both operations are
                // idempotent and monotone, so a multi-probe round leaves
                // the same state one digest would), then answers child
                // hashes for the probed interior nodes and the delta for
                // the probed leaf buckets.
                let payload = match ctx.move_from(&rx) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                match SyncProbeMsg::decode(&payload) {
                    Ok(probe) => {
                        let now_ns = ctx.now().as_nanos() as u64;
                        let (reply, gc_dropped) = sharded.table_mut().answer_probe(
                            &probe,
                            authoritative,
                            Some(rx.from.raw()),
                            now_ns,
                        );
                        counters.gc_dropped += gc_dropped;
                        let mut m = Message::ok();
                        m.set_word(fields::W_SYNC_COUNT, count_word(reply.entries.len()))
                            .set_word(fields::W_SYNC_NODES, count_word(reply.nodes.len()));
                        reply_data(ctx, rx, m, reply.encode());
                    }
                    Err(_) => reply_code(ctx, rx, ReplyCode::BadArgs),
                }
            }
            Some(RequestCode::SyncStatus) => {
                let table = sharded.table_mut();
                let rec = SyncStatusRec {
                    epoch: table.max_epoch(),
                    live_entries: table.live_len() as u32,
                    tombstones: table.tombstone_len() as u32,
                    suspects: suspects.len() as u32,
                    table_hash: table.table_hash(),
                    rounds: counters.rounds,
                    adopted: counters.adopted,
                    dropped: counters.dropped,
                    promoted: counters.promoted,
                    suspects_expired: counters.suspects_expired,
                    binding_queries: counters.binding_queries,
                    watermark: table.watermark(),
                    gc_horizon: table.gc_horizon(),
                    gossip_rounds: counters.gossip_rounds,
                    gossip_adopted: counters.gossip_adopted,
                    gc_dropped: counters.gc_dropped,
                    probe_rounds: counters.probe_rounds,
                };
                reply_data(ctx, rx, Message::ok(), rec.encode());
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

/// Answers one `ResolveBatch` request from a published snapshot.
///
/// Every name in the batch (and every request in a drained burst sharing
/// `snap`) is resolved against the same immutable snapshot, so the whole
/// batch observes one internally consistent table state. The batched
/// probe walks the names shard by shard ([`Snapshot::resolve_batch`]), so
/// a burst touches each shard's map once while it is cache-hot.
fn serve_resolve_batch(
    ctx: &dyn Ipc,
    rx: Received,
    snap: &Arc<Snapshot>,
    suspects: &SuspectSet,
    now_ns: u64,
    counters: &mut SyncCounters,
) {
    let payload = match ctx.move_from(&rx) {
        Ok(p) => p,
        Err(_) => return,
    };
    let batch = match ResolveBatchMsg::decode(&payload) {
        Ok(b) => b,
        Err(_) => return reply_code(ctx, rx, ReplyCode::BadArgs),
    };
    counters.binding_queries += batch.names.len() as u32;
    let refs: Vec<&[u8]> = batch.names.iter().map(Vec::as_slice).collect();
    let answers: Vec<ResolveAnswer> = snap
        .resolve_batch(&refs)
        .into_iter()
        .zip(&batch.names)
        .map(|(hit, name)| match hit {
            None => ResolveAnswer {
                status: RESOLVE_NOT_FOUND,
                pid: 0,
                context: 0,
                staleness: 0,
            },
            Some(entry) => {
                let staleness = u16::from(!entry.verified || suspects.is_armed(name, now_ns));
                match PrefixTarget::from_binding(&entry.binding) {
                    PrefixTarget::Direct(pair) => ResolveAnswer {
                        status: RESOLVE_OK,
                        pid: pair.server.raw(),
                        context: pair.context.raw(),
                        staleness,
                    },
                    // Logical entries re-resolve via `GetPid` on each use
                    // (paper §6) — the binding names a service, not a pid.
                    PrefixTarget::Logical { service, context } => {
                        match ctx.get_pid(service, Scope::Both) {
                            Some(pid) => ResolveAnswer {
                                status: RESOLVE_OK,
                                pid: pid.raw(),
                                context: context.raw(),
                                staleness,
                            },
                            None => ResolveAnswer {
                                status: RESOLVE_NO_SERVER,
                                pid: 0,
                                context: 0,
                                staleness,
                            },
                        }
                    }
                }
            }
        })
        .collect();
    let reply = ResolveBatchReply { answers };
    let mut m = Message::ok();
    m.set_word(fields::W_SYNC_COUNT, count_word(reply.answers.len()));
    reply_data(ctx, rx, m, reply.encode());
}

/// One digest → delta → apply round against the configured authority.
///
/// On success the authority has vouched for the whole table: everything
/// becomes verified, armed suspicions clear, the synced watermark advances
/// to the authority's epoch header, and tombstones at or below the
/// advertised GC horizon are collected. On any failure (unreachable peer,
/// error reply, undecodable delta) nothing changes — the round is atomic.
fn authority_round(
    ctx: &dyn Ipc,
    table: &mut SyncTable,
    peer: Pid,
    counters: &mut SyncCounters,
    suspects: &mut SuspectSet,
) -> Option<ApplyOutcome> {
    let digest = SyncDigestMsg {
        watermark: table.watermark(),
        entries: table.digest(),
    };
    let mut req = Message::request(RequestCode::SyncDigest);
    req.set_word(fields::W_SYNC_COUNT, count_word(digest.entries.len()));
    let reply = ctx
        .send(peer, req, Bytes::from(digest.encode()), 65536)
        .ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    let delta = SyncDeltaMsg::decode(&reply.data).ok()?;
    let mut out = table.apply(&delta.entries, true);
    table.note_synced(delta.epoch);
    counters.gc_dropped += table.gc_below(delta.horizon);
    out.promoted += table.mark_all_verified();
    counters.rounds += 1;
    counters.adopted += out.adopted;
    counters.dropped += out.dropped_live;
    counters.promoted += out.promoted;
    suspects.clear();
    Some(out)
}

/// One replica↔replica gossip round (Grapevine-style: peers reconcile
/// without a live authority). Multicasts a phase-1 probe on the replica
/// group, then runs a unicast digest → delta round against the first peer
/// that answers. Adopted entries stay unverified — *Suspect*, served with
/// the staleness flag — until an authority round vouches for them, and
/// the synced watermark does not move: gossip spreads data, only the
/// authority spreads certainty.
fn gossip_round(
    ctx: &dyn Ipc,
    table: &mut SyncTable,
    group: GroupId,
    counters: &mut SyncCounters,
) -> Option<ApplyOutcome> {
    let peer = gossip_peer(ctx, group)?;
    let digest = SyncDigestMsg {
        watermark: table.watermark(),
        entries: table.digest(),
    };
    let mut req = Message::request(RequestCode::SyncDigest);
    req.set_word(fields::W_SYNC_COUNT, count_word(digest.entries.len()));
    let reply = ctx
        .send(peer, req, Bytes::from(digest.encode()), 65536)
        .ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    let delta = SyncDeltaMsg::decode(&reply.data).ok()?;
    let out = table.apply(&delta.entries, false);
    counters.gossip_rounds += 1;
    counters.gossip_adopted += out.adopted;
    Some(out)
}

/// Solicits a gossip peer: multicasts a phase-1 `SyncGossip` probe on the
/// replica group and returns the first pid that volunteers (rejecting a
/// null pid and this server itself).
fn gossip_peer(ctx: &dyn Ipc, group: GroupId) -> Option<Pid> {
    let mut probe = Message::request(RequestCode::SyncGossip);
    probe.set_word(fields::W_SYNC_PHASE, 1);
    let reply = ctx.send_group(group, probe, Bytes::new()).ok()?;
    if !reply.msg.reply_code().is_ok() {
        return None;
    }
    let peer = reply.msg.pid_at(fields::W_PID_LO);
    if peer == Pid::NULL || peer == ctx.my_pid() {
        return None;
    }
    Some(peer)
}

/// Drives one Merkle walk over IPC against `peer`: sends `SyncProbe`
/// requests until the diverging frontier drains, and returns the
/// accumulated delta plus the final reply's epoch/horizon header. Any
/// unreachable peer, error reply, or undecodable payload kills the whole
/// round — the caller applies nothing (atomicity matches the flat round).
fn merkle_walk_ipc(
    ctx: &dyn Ipc,
    table: &mut SyncTable,
    peer: Pid,
    counters: &mut SyncCounters,
) -> Option<(Vec<SyncEntry>, u64, u64)> {
    let mut walk = MerkleWalk::start();
    while let Some(probe) = walk.next_probe(table) {
        let mut req = Message::request(RequestCode::SyncProbe);
        req.set_word(
            fields::W_SYNC_NODES,
            count_word(probe.nodes.len() + probe.leaves.len()),
        );
        let reply = ctx
            .send(peer, req, Bytes::from(probe.encode()), 65536)
            .ok()?;
        if !reply.msg.reply_code().is_ok() {
            return None;
        }
        let reply = SyncProbeReply::decode(&reply.data).ok()?;
        counters.probe_rounds += 1;
        walk.absorb(table, &reply);
    }
    let (delta, epoch, horizon, _probes) = walk.finish();
    Some((delta, epoch, horizon))
}

/// The Merkle-walk counterpart of [`authority_round`]: identical contract
/// (atomic; on success the authority has vouched for the whole table),
/// but the wire cost is proportional to divergence — an in-sync round is
/// a single root-hash probe.
fn merkle_authority_round(
    ctx: &dyn Ipc,
    table: &mut SyncTable,
    peer: Pid,
    counters: &mut SyncCounters,
    suspects: &mut SuspectSet,
) -> Option<ApplyOutcome> {
    let (delta, epoch, horizon) = merkle_walk_ipc(ctx, table, peer, counters)?;
    let mut out = table.apply(&delta, true);
    table.note_synced(epoch);
    counters.gc_dropped += table.gc_below(horizon);
    out.promoted += table.mark_all_verified();
    counters.rounds += 1;
    counters.adopted += out.adopted;
    counters.dropped += out.dropped_live;
    counters.promoted += out.promoted;
    suspects.clear();
    Some(out)
}

/// The Merkle-walk counterpart of [`gossip_round`]: same peer discovery,
/// same hearsay rules (adopted entries stay Suspect, the watermark and
/// horizon never move), with the digest exchange replaced by a walk.
fn merkle_gossip_round(
    ctx: &dyn Ipc,
    table: &mut SyncTable,
    group: GroupId,
    counters: &mut SyncCounters,
) -> Option<ApplyOutcome> {
    let peer = gossip_peer(ctx, group)?;
    let (delta, _epoch, _horizon) = merkle_walk_ipc(ctx, table, peer, counters)?;
    let out = table.apply(&delta, false);
    counters.gossip_rounds += 1;
    counters.gossip_adopted += out.adopted;
    Some(out)
}

fn strip_brackets(name: &[u8]) -> &[u8] {
    if name.first() == Some(&b'[') && name.last() == Some(&b']') && name.len() >= 2 {
        &name[1..name.len() - 1]
    } else {
        name
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_csname(
    ctx: &dyn Ipc,
    rx: Received,
    sharded: &mut ShardedTable,
    instances: &mut InstanceTable<Vec<u8>>,
    req: CsRequest,
    degraded: Option<DegradedPrefixConfig>,
    suspects: &mut SuspectSet,
    counters: &mut SyncCounters,
) {
    let msg = rx.msg;
    // Add/delete with a bracketed name and a nonempty remainder are meant
    // for the server behind the prefix (e.g. creating a cross-server link
    // in a file server directory) — those fall through to forwarding below.
    let is_definition = matches!(
        msg.request_code(),
        Some(RequestCode::AddContextName) | Some(RequestCode::DeleteContextName)
    ) && match CsName::from(req.remaining()).parse_prefix() {
        Some(p) => req.remaining()[p.rest_index..].is_empty(),
        None => true,
    };
    match msg.request_code() {
        Some(RequestCode::AddContextName) if !is_definition => {}
        Some(RequestCode::DeleteContextName) if !is_definition => {}
        Some(RequestCode::AddContextName) => {
            // The optional definition operation (paper §5.7): bind a prefix
            // to an existing context.
            let name = strip_brackets(req.remaining()).to_vec();
            if name.is_empty() || name.contains(&b'[') || name.contains(&b']') {
                return reply_code(ctx, rx, ReplyCode::IllegalName);
            }
            let target = if msg.word(fields::W_LOGICAL) != 0 {
                PrefixTarget::Logical {
                    service: ServiceId::new(msg.word32(fields::W_TARGET_PID_LO)),
                    context: ContextId::new(msg.word32(fields::W_TARGET_CTX_LO)),
                }
            } else {
                PrefixTarget::Direct(ContextPair::new(
                    msg.pid_at(fields::W_TARGET_PID_LO),
                    ContextId::new(msg.word32(fields::W_TARGET_CTX_LO)),
                ))
            };
            let now_ns = ctx.now().as_nanos() as u64;
            sharded
                .table_mut()
                .define(name, target.to_binding(), now_ns);
            reply_code(ctx, rx, ReplyCode::Ok);
            return;
        }
        Some(RequestCode::DeleteContextName) => {
            // Deletion is a stamped tombstone, not a removal: sync rounds
            // must propagate the delete rather than resurrect the binding.
            // A name this table never held is a no-op — nothing to
            // propagate, and stamping anyway would grow the table without
            // bound under delete-of-unknown churn.
            let name = strip_brackets(req.remaining()).to_vec();
            let now_ns = ctx.now().as_nanos() as u64;
            let code = match sharded.table_mut().tombstone(&name, now_ns) {
                TombstoneOutcome::DroppedLive => ReplyCode::Ok,
                TombstoneOutcome::AlreadyDead | TombstoneOutcome::Unknown => ReplyCode::NotFound,
            };
            reply_code(ctx, rx, code);
            return;
        }
        _ => {}
    }

    let remaining = req.remaining();
    if remaining.is_empty() {
        // The name denotes the prefix context itself.
        return handle_own_context(ctx, rx, sharded.table(), instances, &req);
    }
    let parsed = match CsName::from(remaining).parse_prefix() {
        Some(p) => (p.prefix.to_vec(), p.rest_index),
        None => {
            // Not a bracketed name: this server defines no other bindings.
            return reply_code(ctx, rx, ReplyCode::IllegalName);
        }
    };
    let (prefix, rest_index) = parsed;

    // The measured cost of the paper's §6 table lives here: parsing the
    // prefix, scanning the table, rewriting and forwarding the message.
    if let Some(net) = ctx.net() {
        ctx.charge(net.params().t_prefix_processing);
    }

    // The hot path reads the published snapshot — a hash probe against
    // an immutable shard, no tree walk, no write-side coupling. The
    // snapshot holds only live entries, so a tombstone is a plain miss.
    let entry = match sharded.snapshot().lookup(&prefix) {
        Some(e) => *e,
        None => return reply_code(ctx, rx, ReplyCode::NotFound),
    };
    let target = PrefixTarget::from_binding(&entry.binding);

    let binding_query =
        msg.request_code() == Some(RequestCode::QueryName) && remaining[rest_index..].is_empty();
    if binding_query {
        counters.binding_queries += 1;
    }

    // Degraded-mode resolution: a bare-prefix `QueryName` asks only for
    // the binding, which this table already knows. While the bound host
    // is suspect (a recent forward timed out — unreachable, not
    // necessarily dead), or always on a non-authoritative replica, answer
    // it from the table with the staleness flag set instead of burning
    // another retransmission ladder. Only direct entries qualify: a
    // logical entry's authority is `GetPid`, which has its own recovery.
    // An entry the authority has vouched for (verified, no suspicion
    // armed) answers *fresh*: anti-entropy is what lets a replica hand
    // out first-class bindings without a probe to the authority.
    if let Some(d) = degraded {
        let now_ns = ctx.now().as_nanos() as u64;
        let suspect_armed = suspects.is_armed(&prefix, now_ns);
        if binding_query && (suspect_armed || !d.authoritative) {
            if let PrefixTarget::Direct(pair) = target {
                let staleness = if entry.verified && !suspect_armed {
                    0
                } else {
                    1
                };
                let mut m = Message::ok();
                m.set_context_id(pair.context);
                m.set_pid_at(fields::W_PID_LO, pair.server);
                m.set_word(fields::W_STALENESS, staleness);
                return reply_data(ctx, rx, m, Vec::new());
            }
        }
    }

    let (server, target_ctx) = match target {
        PrefixTarget::Direct(pair) => (pair.server, pair.context),
        PrefixTarget::Logical { service, context } => {
            // Re-resolved on every use (paper §6) — this is what makes the
            // entry survive server restarts.
            match ctx.get_pid(service, Scope::Both) {
                Some(pid) => (pid, context),
                None => return reply_code(ctx, rx, ReplyCode::NoServer),
            }
        }
    };
    let absolute_index = req.index + rest_index;
    match forward_csname(ctx, rx, server, target_ctx, absolute_index) {
        Err(vkernel::IpcError::NoProcess) => {
            // The bound server is permanently gone (not a transient loss
            // timeout): a direct entry is now a stale binding, so
            // tombstone it — the next definition re-binds, and sync
            // rounds propagate the removal. Logical entries stay; they
            // re-resolve via `GetPid` and survive restarts by design.
            if matches!(target, PrefixTarget::Direct(_)) {
                let now_ns = ctx.now().as_nanos() as u64;
                sharded.table_mut().tombstone(&prefix, now_ns);
            }
        }
        Err(vkernel::IpcError::Timeout) => {
            // The bound host did not answer the kernel's full ladder: it
            // may be alive yet unreachable (a partition). Arm a suspicion
            // so binding queries are served degraded until the TTL
            // expires — then the next request probes again. The *current*
            // request is already resolved as a timeout for its sender;
            // the client's retry is what lands on the degraded path.
            if let Some(d) = degraded {
                let until = ctx.now() + d.suspect_ttl;
                suspects.arm(prefix, until.as_nanos() as u64);
            }
        }
        Ok(()) => {
            // The path works again; any armed suspicion is disproved.
            suspects.disarm(&prefix);
        }
        Err(_) => {}
    }
}

/// Operations on the prefix server's own (single) context: directory
/// listing, query, mapping.
fn handle_own_context(
    ctx: &dyn Ipc,
    rx: Received,
    table: &SyncTable,
    instances: &mut InstanceTable<Vec<u8>>,
    req: &CsRequest,
) {
    let msg = rx.msg;
    match msg.request_code() {
        Some(RequestCode::CreateInstance)
            if matches!(msg.mode(), Some(OpenMode::Directory) | Some(OpenMode::Read)) =>
        {
            let pattern = if req.extra.is_empty() {
                None
            } else {
                Some(req.extra.clone())
            };
            let mut b = match pattern {
                Some(p) => DirectoryBuilder::with_pattern(p),
                None => DirectoryBuilder::new(),
            };
            for (name, binding, _) in table.live_iter() {
                let (pair, logical) = match PrefixTarget::from_binding(binding) {
                    PrefixTarget::Direct(pair) => (pair, 0u32),
                    PrefixTarget::Logical { service, context } => {
                        (ContextPair::new(Pid::NULL, context), service.raw())
                    }
                };
                let d = ObjectDescriptor::new(
                    DescriptorTag::ContextPrefix,
                    CsName::from(name.to_vec()),
                )
                .with_ext(DescriptorExt::ContextPrefix {
                    target: pair,
                    logical_service: logical,
                });
                b.push(&d);
            }
            let snapshot = b.finish();
            let size = snapshot.len() as u64;
            let inst = instances.open(rx.from, OpenMode::Directory, snapshot);
            let mut m = Message::ok();
            m.set_word(fields::W_INSTANCE, inst.0)
                .set_word32(fields::W_SIZE_LO, size as u32)
                .set_pid_at(fields::W_PID_LO, ctx.my_pid());
            reply_data(ctx, rx, m, Vec::new());
        }
        Some(RequestCode::QueryName) => {
            let mut m = Message::ok();
            m.set_context_id(ContextId::DEFAULT);
            m.set_pid_at(fields::W_PID_LO, ctx.my_pid());
            reply_data(ctx, rx, m, Vec::new());
        }
        Some(RequestCode::QueryObject) => {
            let d = ObjectDescriptor::new(DescriptorTag::Directory, CsName::from("[]"))
                .with_size(table.live_len() as u64)
                .with_ext(DescriptorExt::Directory {
                    context: ContextId::DEFAULT,
                    entries: table.live_len() as u32,
                });
            reply_descriptor(ctx, rx, &d);
        }
        _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
    }
}
