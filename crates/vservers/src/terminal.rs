//! The virtual (graphics) terminal server (paper §3, §6).
//!
//! Terminals are *temporary* objects (paper §4.3): created on demand, named
//! by short instance ids internally and by CSnames for user convenience,
//! gone when destroyed. The server demonstrates that the same protocol that
//! names disk files also names transient, memory-resident objects.

use crate::common::{reply_code, reply_data, reply_descriptor};
use std::collections::BTreeMap;
use vio::{serve_read, InstanceTable};
use vkernel::Ipc;
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, ContextId, CsName, DescriptorExt, DescriptorTag, InstanceId, Message, ObjectDescriptor,
    ObjectId, OpenMode, ReplyCode, RequestCode, Scope, ServiceId,
};

/// Configuration for a [`terminal_server`] process.
#[derive(Debug, Clone)]
pub struct TerminalConfig {
    /// Registration scope (virtual terminal servers are per-workstation,
    /// hence `Local` by default — paper §6).
    pub scope: Scope,
    /// Geometry assigned to new terminals.
    pub columns: u16,
    /// Geometry assigned to new terminals.
    pub rows: u16,
}

impl Default for TerminalConfig {
    fn default() -> Self {
        TerminalConfig {
            scope: Scope::Local,
            columns: 80,
            rows: 24,
        }
    }
}

struct Term {
    id: ObjectId,
    screen: Vec<u8>,
    modified: u64,
}

/// Runs a virtual terminal server until the domain shuts down.
pub fn terminal_server(ctx: &dyn Ipc, config: TerminalConfig) {
    let mut terms: BTreeMap<Vec<u8>, Term> = BTreeMap::new();
    let mut instances: InstanceTable<Vec<u8>> = InstanceTable::new(); // name or snapshot key
    let mut dir_instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut next_obj = 0u32;
    let mut clock = 0u64;
    ctx.set_pid(ServiceId::TERMINAL_SERVER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let name = req.remaining().to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateInstance) => {
                    let mode = msg.mode().unwrap_or(OpenMode::Read);
                    if name.is_empty() {
                        // Context directory of terminals.
                        let mut b = DirectoryBuilder::new();
                        for (n, t) in &terms {
                            b.push(&descriptor(n, t, &config));
                        }
                        let snapshot = b.finish();
                        let size = snapshot.len() as u64;
                        let inst = dir_instances.open(rx.from, OpenMode::Directory, snapshot);
                        let mut m = Message::ok();
                        m.set_word(fields::W_INSTANCE, inst.0)
                            .set_word32(fields::W_SIZE_LO, size as u32)
                            .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                        reply_data(ctx, rx, m, Vec::new());
                        continue;
                    }
                    if !terms.contains_key(&name) {
                        if mode == OpenMode::Create {
                            next_obj += 1;
                            clock += 1;
                            terms.insert(
                                name.clone(),
                                Term {
                                    id: ObjectId(next_obj),
                                    screen: Vec::new(),
                                    modified: clock,
                                },
                            );
                        } else {
                            reply_code(ctx, rx, ReplyCode::NotFound);
                            continue;
                        }
                    }
                    let size = terms[&name].screen.len() as u64;
                    let inst = instances.open(rx.from, mode, name);
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Some(RequestCode::QueryObject) => match terms.get(&name) {
                    Some(t) => reply_descriptor(ctx, rx, &descriptor(&name, t, &config)),
                    None => reply_code(ctx, rx, ReplyCode::NotFound),
                },
                Some(RequestCode::RemoveObject) => {
                    let code = if terms.remove(&name).is_some() {
                        ReplyCode::Ok
                    } else {
                        ReplyCode::NotFound
                    };
                    reply_code(ctx, rx, code);
                }
                Some(RequestCode::QueryName) if name.is_empty() => {
                    let mut m = Message::ok();
                    m.set_context_id(ContextId::DEFAULT);
                    m.set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                // Terminal instance or directory instance?
                let window: Result<Vec<u8>, ReplyCode> =
                    if let Ok(inst) = instances.check(id, false) {
                        match terms.get(&inst.state) {
                            Some(t) => serve_read(&t.screen, offset, count).map(|w| w.to_vec()),
                            None => Err(ReplyCode::InvalidInstance),
                        }
                    } else if let Ok(inst) = dir_instances.check(id, false) {
                        serve_read(&inst.state, offset, count).map(|w| w.to_vec())
                    } else {
                        Err(ReplyCode::InvalidInstance)
                    };
                match window {
                    Ok(w) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, w.len() as u16);
                        reply_data(ctx, rx, m, w);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::WriteInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let data = match ctx.move_from(&rx) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let code = match instances.check(id, true) {
                    Ok(inst) => match terms.get_mut(&inst.state) {
                        Some(t) => {
                            clock += 1;
                            t.screen.extend_from_slice(&data);
                            t.modified = clock;
                            ReplyCode::Ok
                        }
                        None => ReplyCode::InvalidInstance,
                    },
                    Err(c) => c,
                };
                let mut m = Message::reply(code);
                m.set_word(fields::W_IO_COUNT, data.len() as u16);
                reply_data(ctx, rx, m, Vec::new());
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if instances.release(id).is_some() || dir_instances.release(id).is_some()
                {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

fn descriptor(name: &[u8], t: &Term, config: &TerminalConfig) -> ObjectDescriptor {
    ObjectDescriptor::new(DescriptorTag::Terminal, CsName::from(name))
        .with_object_id(t.id)
        .with_size(t.screen.len() as u64)
        .with_modified(t.modified)
        .with_ext(DescriptorExt::Terminal {
            columns: config.columns,
            rows: config.rows,
        })
}
