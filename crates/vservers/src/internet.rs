//! The internet server (paper §6: "an Internet server that runs a V
//! kernel-based implementation of IP/TCP").
//!
//! The physical network stack is out of scope; what matters for the naming
//! paper is that **TCP connections are named objects in a context**, listed
//! by the same directory machinery as files and terminals. Connections here
//! are simulated loopbacks: written bytes become readable, state follows a
//! tiny open/established/closed automaton.

use crate::common::{reply_code, reply_data, reply_descriptor};
use std::collections::BTreeMap;
use vio::{serve_read, InstanceTable};
use vkernel::Ipc;
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, CsName, DescriptorExt, DescriptorTag, InstanceId, Message, ObjectDescriptor, ObjectId,
    OpenMode, ReplyCode, RequestCode, Scope, ServiceId,
};

/// Connection states reported in descriptors.
const STATE_ESTABLISHED: u16 = 1;
const STATE_CLOSED: u16 = 2;

/// Configuration for an [`internet_server`] process.
#[derive(Debug, Clone)]
pub struct InternetConfig {
    /// Registration scope.
    pub scope: Scope,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig { scope: Scope::Both }
    }
}

struct Conn {
    id: ObjectId,
    remote_host: u32,
    remote_port: u16,
    state: u16,
    buffer: Vec<u8>,
}

/// Parses a connection name of the form `a.b.c.d:port`.
fn parse_conn_name(name: &[u8]) -> Option<(u32, u16)> {
    let s = std::str::from_utf8(name).ok()?;
    let (host, port) = s.split_once(':')?;
    let port: u16 = port.parse().ok()?;
    let mut addr: u32 = 0;
    let mut octets = 0;
    for part in host.split('.') {
        let o: u8 = part.parse().ok()?;
        addr = (addr << 8) | o as u32;
        octets += 1;
    }
    if octets != 4 {
        return None;
    }
    Some((addr, port))
}

/// Runs an internet (TCP) server until the domain shuts down.
pub fn internet_server(ctx: &dyn Ipc, config: InternetConfig) {
    let mut conns: BTreeMap<Vec<u8>, Conn> = BTreeMap::new();
    let mut instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut dir_instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut next_obj = 0u32;
    ctx.set_pid(ServiceId::INTERNET_SERVER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let name = req.remaining().to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateInstance) => {
                    if name.is_empty() {
                        let mut b = DirectoryBuilder::new();
                        for (n, c) in &conns {
                            b.push(&conn_descriptor(n, c));
                        }
                        let snapshot = b.finish();
                        let size = snapshot.len() as u64;
                        let inst = dir_instances.open(rx.from, OpenMode::Directory, snapshot);
                        let mut m = Message::ok();
                        m.set_word(fields::W_INSTANCE, inst.0)
                            .set_word32(fields::W_SIZE_LO, size as u32)
                            .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                        reply_data(ctx, rx, m, Vec::new());
                        continue;
                    }
                    let mode = msg.mode().unwrap_or(OpenMode::Read);
                    if !conns.contains_key(&name) {
                        if mode == OpenMode::Create {
                            match parse_conn_name(&name) {
                                Some((remote_host, remote_port)) => {
                                    next_obj += 1;
                                    conns.insert(
                                        name.clone(),
                                        Conn {
                                            id: ObjectId(next_obj),
                                            remote_host,
                                            remote_port,
                                            state: STATE_ESTABLISHED,
                                            buffer: Vec::new(),
                                        },
                                    );
                                }
                                None => {
                                    reply_code(ctx, rx, ReplyCode::IllegalName);
                                    continue;
                                }
                            }
                        } else {
                            reply_code(ctx, rx, ReplyCode::NotFound);
                            continue;
                        }
                    }
                    let size = conns[&name].buffer.len() as u64;
                    let inst = instances.open(rx.from, mode, name);
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Some(RequestCode::QueryObject) => match conns.get(&name) {
                    Some(c) => reply_descriptor(ctx, rx, &conn_descriptor(&name, c)),
                    None => reply_code(ctx, rx, ReplyCode::NotFound),
                },
                Some(RequestCode::RemoveObject) => {
                    // Closing a connection: it lingers as CLOSED until the
                    // next remove, then disappears (a nod to TIME_WAIT).
                    let code = match conns.get_mut(&name) {
                        Some(c) if c.state == STATE_ESTABLISHED => {
                            c.state = STATE_CLOSED;
                            ReplyCode::Ok
                        }
                        Some(_) => {
                            conns.remove(&name);
                            ReplyCode::Ok
                        }
                        None => ReplyCode::NotFound,
                    };
                    reply_code(ctx, rx, code);
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::WriteInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let data = match ctx.move_from(&rx) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let code = match instances.check(id, true) {
                    Ok(inst) => match conns.get_mut(&inst.state) {
                        Some(c) if c.state == STATE_ESTABLISHED => {
                            c.buffer.extend_from_slice(&data);
                            ReplyCode::Ok
                        }
                        Some(_) => ReplyCode::BadMode,
                        None => ReplyCode::InvalidInstance,
                    },
                    Err(c) => c,
                };
                let mut m = Message::reply(code);
                m.set_word(fields::W_IO_COUNT, data.len() as u16);
                reply_data(ctx, rx, m, Vec::new());
            }
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                let window: Result<Vec<u8>, ReplyCode> =
                    if let Ok(inst) = instances.check(id, false) {
                        match conns.get(&inst.state) {
                            Some(c) => serve_read(&c.buffer, offset, count).map(|w| w.to_vec()),
                            None => Err(ReplyCode::InvalidInstance),
                        }
                    } else if let Ok(inst) = dir_instances.check(id, false) {
                        serve_read(&inst.state, offset, count).map(|w| w.to_vec())
                    } else {
                        Err(ReplyCode::InvalidInstance)
                    };
                match window {
                    Ok(w) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, w.len() as u16);
                        reply_data(ctx, rx, m, w);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if instances.release(id).is_some() || dir_instances.release(id).is_some()
                {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

fn conn_descriptor(name: &[u8], c: &Conn) -> ObjectDescriptor {
    ObjectDescriptor::new(DescriptorTag::TcpConnection, CsName::from(name))
        .with_object_id(c.id)
        .with_size(c.buffer.len() as u64)
        .with_ext(DescriptorExt::TcpConnection {
            remote_host: c.remote_host,
            remote_port: c.remote_port,
            state: c.state,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_name_parsing() {
        assert_eq!(parse_conn_name(b"10.0.0.1:25"), Some((0x0A000001, 25)));
        assert_eq!(
            parse_conn_name(b"255.255.255.255:65535"),
            Some((u32::MAX, 65535))
        );
        assert_eq!(parse_conn_name(b"10.0.0:25"), None);
        assert_eq!(parse_conn_name(b"10.0.0.1"), None);
        assert_eq!(parse_conn_name(b"10.0.0.256:1"), None);
        assert_eq!(parse_conn_name(b"host:1"), None);
        assert_eq!(parse_conn_name(&[0xFF, 0xFE]), None);
    }
}
