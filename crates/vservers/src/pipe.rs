//! The pipe server — pipes are among the data sources and sinks the V I/O
//! protocol unifies (paper §3.2).
//!
//! Pipes are the one server here that needs *deferred replies*: a read on
//! an empty pipe must block the reader until a writer produces data. The
//! synchronous V model supports this naturally — the server simply holds
//! the received-but-unanswered transaction (the reader stays blocked in its
//! `Send`) and keeps serving other requests; the eventual `Reply` releases
//! the reader. No special kernel support is involved.

use crate::common::{reply_code, reply_data};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use vio::InstanceTable;
use vkernel::{Ipc, Received};
use vnaming::CsRequest;
use vproto::{fields, InstanceId, Message, OpenMode, ReplyCode, RequestCode, Scope, ServiceId};

/// Configuration for a [`pipe_server`] process.
#[derive(Debug, Clone)]
pub struct PipeConfig {
    /// Registration scope (pipes are per-workstation plumbing: `Local`).
    pub scope: Scope,
    /// Maximum buffered bytes per pipe before writers are refused.
    pub capacity: usize,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            scope: Scope::Local,
            capacity: 4096,
        }
    }
}

/// A blocked reader: the held transaction plus how much it asked for.
struct PendingRead {
    rx: Received,
    count: usize,
}

struct Pipe {
    buffer: VecDeque<u8>,
    writers: usize,
    readers: usize,
    /// Whether a writer has ever opened this pipe: reads block (rather
    /// than report end-of-file) until the first writer appears.
    had_writer: bool,
    pending: VecDeque<PendingRead>,
}

impl Pipe {
    fn new() -> Pipe {
        Pipe {
            buffer: VecDeque::new(),
            writers: 0,
            readers: 0,
            had_writer: false,
            pending: VecDeque::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct End {
    name: Vec<u8>,
    writer: bool,
}

/// Satisfies as many blocked readers as the buffer (or writer EOF) allows.
fn drain_pending(ctx: &dyn Ipc, pipe: &mut Pipe) {
    while !pipe.pending.is_empty() {
        if pipe.buffer.is_empty() {
            if pipe.writers == 0 && pipe.had_writer {
                // EOF: release every waiter empty-handed.
                let pending = std::mem::take(&mut pipe.pending);
                for p in pending {
                    reply_code(ctx, p.rx, ReplyCode::EndOfFile);
                }
            }
            return;
        }
        let Some(p) = pipe.pending.pop_front() else {
            return;
        };
        let take = p.count.min(pipe.buffer.len());
        let data: Vec<u8> = pipe.buffer.drain(..take).collect();
        let mut m = Message::ok();
        m.set_word(fields::W_IO_COUNT, data.len() as u16);
        reply_data(ctx, p.rx, m, data);
    }
}

/// Runs a pipe server until the domain shuts down.
///
/// Protocol: `CreateInstance name` in `Read` mode opens (or creates) the
/// read end, `Write`/`Create`/`Append` the write end. Reads block while the
/// pipe is empty and some writer is open; they return end-of-file once the
/// last writer releases and the buffer drains. Writes beyond the capacity
/// are refused with [`ReplyCode::NoServerResources`].
pub fn pipe_server(ctx: &dyn Ipc, config: PipeConfig) {
    let mut pipes: BTreeMap<Vec<u8>, Pipe> = BTreeMap::new();
    let mut instances: InstanceTable<End> = InstanceTable::new();
    ctx.set_pid(ServiceId::PIPE_SERVER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let name = req.remaining().to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateInstance) => {
                    if name.is_empty() {
                        reply_code(ctx, rx, ReplyCode::IllegalName);
                        continue;
                    }
                    let mode = msg.mode().unwrap_or(OpenMode::Read);
                    let pipe = pipes.entry(name.clone()).or_insert_with(Pipe::new);
                    let writer = mode.writes();
                    if writer {
                        pipe.writers += 1;
                        pipe.had_writer = true;
                    } else {
                        pipe.readers += 1;
                    }
                    let inst = instances.open(rx.from, mode, End { name, writer });
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Some(RequestCode::RemoveObject) => {
                    match pipes.remove(&name) {
                        Some(mut pipe) => {
                            pipe.writers = 0;
                            pipe.had_writer = true; // force EOF for waiters
                            drain_pending(ctx, &mut pipe);
                            reply_code(ctx, rx, ReplyCode::Ok);
                        }
                        None => reply_code(ctx, rx, ReplyCode::NotFound),
                    }
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::WriteInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let data = match ctx.move_from(&rx) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let outcome = match instances.check(id, true) {
                    Ok(inst) => match pipes.get_mut(&inst.state.name) {
                        Some(pipe) if pipe.buffer.len() + data.len() > config.capacity => {
                            Err(ReplyCode::NoServerResources)
                        }
                        Some(pipe) => {
                            pipe.buffer.extend(data.iter());
                            drain_pending(ctx, pipe);
                            Ok(data.len())
                        }
                        None => Err(ReplyCode::InvalidInstance),
                    },
                    Err(c) => Err(c),
                };
                match outcome {
                    Ok(n) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, n as u16);
                        reply_data(ctx, rx, m, Vec::new());
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let count = msg.word(fields::W_IO_COUNT) as usize;
                let name = match instances.check(id, false) {
                    Ok(inst) if !inst.state.writer => inst.state.name.clone(),
                    Ok(_) => {
                        reply_code(ctx, rx, ReplyCode::BadMode);
                        continue;
                    }
                    Err(c) => {
                        reply_code(ctx, rx, c);
                        continue;
                    }
                };
                match pipes.get_mut(&name) {
                    Some(pipe) => {
                        // Defer the reply: enqueue, then satisfy whatever is
                        // possible right now.
                        pipe.pending.push_back(PendingRead { rx, count });
                        drain_pending(ctx, pipe);
                    }
                    None => reply_code(ctx, rx, ReplyCode::InvalidInstance),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                match instances.release(id) {
                    Some(end) => {
                        if let Some(pipe) = pipes.get_mut(&end.name) {
                            if end.writer {
                                pipe.writers = pipe.writers.saturating_sub(1);
                                drain_pending(ctx, pipe);
                            } else {
                                pipe.readers = pipe.readers.saturating_sub(1);
                            }
                            if pipe.writers == 0
                                && pipe.readers == 0
                                && pipe.buffer.is_empty()
                                && pipe.pending.is_empty()
                            {
                                pipes.remove(&end.name);
                            }
                        }
                        reply_code(ctx, rx, ReplyCode::Ok);
                    }
                    None => reply_code(ctx, rx, ReplyCode::InvalidInstance),
                }
            }
            _ => {
                let _ = ctx.reply(rx, Message::reply(ReplyCode::UnknownRequest), Bytes::new());
            }
        }
    }
}
