//! The V file server (paper §6): hierarchical directories as contexts.
//!
//! "The file server software maps context identifiers onto directories that
//! act as starting points for interpreting relative pathnames, similar to
//! the current working directory in Unix." Directories are contexts; files
//! are permanent objects named by CSnames; object ids play the role of
//! i-node numbers (names and descriptions are stored separately and
//! directory records are fabricated on demand, exactly as §5.6 recommends).
//! Cross-server links — the curved arrow of Figure 4 — are directory
//! entries that point at a context on another server; interpretation
//! forwards there mid-name.

use crate::common::{
    forward_csname, reply_code, reply_data, reply_descriptor, reply_fail, OpClock,
};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::collections::HashMap;
use vio::{serve_read, InstanceTable};
use vkernel::{Ipc, Received};
use vnaming::{
    resolve, ComponentSpace, ContextTable, CsRequest, DirectoryBuilder, Outcome, ResolvedTarget,
    Step,
};
use vproto::{
    fields, ContextId, ContextPair, CsName, DescriptorExt, DescriptorTag, InstanceId, Message,
    ObjectDescriptor, ObjectId, OpenMode, Permissions, Pid, ReplyCode, RequestCode, Scope,
};

/// Component separator used by the file server's hierarchical names.
const SEP: u8 = b'/';

/// Configuration for a [`file_server`] process.
#[derive(Debug, Clone)]
pub struct FileServerConfig {
    /// Register as [`vproto::ServiceId::FILE_SERVER`] with this scope.
    pub service_scope: Option<Scope>,
    /// Initial files: `(path, contents)`, with intermediate directories
    /// created as needed.
    pub preload: Vec<(String, Vec<u8>)>,
    /// Directory path to bind to the well-known HOME context.
    pub home: Option<String>,
    /// Directory path to bind to the well-known standard-programs context.
    pub bin: Option<String>,
    /// Charge 1984 disk latency on file reads/writes (virtual-time kernel
    /// only). Off for "already in memory buffers" experiments.
    pub simulate_disk: bool,
}

impl Default for FileServerConfig {
    fn default() -> Self {
        FileServerConfig {
            service_scope: Some(Scope::Both),
            preload: Vec::new(),
            home: None,
            bin: None,
            simulate_disk: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DirEntry {
    Local(ObjectId),
    /// A pointer to a context on another server (paper Figure 4).
    Remote(ContextPair),
}

#[derive(Debug)]
enum NodeKind {
    File(Vec<u8>),
    Dir {
        entries: BTreeMap<Vec<u8>, DirEntry>,
        ctx: ContextId,
    },
}

#[derive(Debug)]
struct Node {
    parent: Option<(ObjectId, Vec<u8>)>,
    kind: NodeKind,
    owner: CsName,
    modified: u64,
    perms: Permissions,
}

/// The in-memory file system state.
struct Fs {
    nodes: HashMap<ObjectId, Node>,
    next: u32,
    contexts: ContextTable<ObjectId>,
    root: ObjectId,
    clock: OpClock,
}

impl Fs {
    fn new() -> Fs {
        let mut contexts = ContextTable::new();
        let root = ObjectId(1);
        let root_ctx = contexts.alloc(root);
        contexts.bind_well_known(ContextId::DEFAULT, root_ctx);
        let mut nodes = HashMap::new();
        nodes.insert(
            root,
            Node {
                parent: None,
                kind: NodeKind::Dir {
                    entries: BTreeMap::new(),
                    ctx: root_ctx,
                },
                owner: CsName::from("system"),
                modified: 0,
                perms: Permissions::default(),
            },
        );
        Fs {
            nodes,
            next: 1,
            contexts,
            root,
            clock: OpClock::default(),
        }
    }

    fn alloc_id(&mut self) -> ObjectId {
        self.next += 1;
        ObjectId(self.next)
    }

    fn dir_node_of_ctx(&self, ctx: ContextId) -> Option<ObjectId> {
        self.contexts.get(ctx).copied()
    }

    fn dir_entries(&self, id: ObjectId) -> Option<&BTreeMap<Vec<u8>, DirEntry>> {
        match &self.nodes.get(&id)?.kind {
            NodeKind::Dir { entries, .. } => Some(entries),
            NodeKind::File(_) => None,
        }
    }

    fn ctx_of_dir(&self, id: ObjectId) -> Option<ContextId> {
        match &self.nodes.get(&id)?.kind {
            NodeKind::Dir { ctx, .. } => Some(*ctx),
            NodeKind::File(_) => None,
        }
    }

    fn mkdir_in(
        &mut self,
        parent: ObjectId,
        name: &[u8],
        owner: &CsName,
    ) -> Result<ObjectId, ReplyCode> {
        if name.is_empty() || name.contains(&SEP) {
            return Err(ReplyCode::IllegalName);
        }
        let id = self.alloc_id();
        let ctx = self.contexts.alloc(id);
        let t = self.clock.tick();
        match &mut self.nodes.get_mut(&parent).ok_or(ReplyCode::NotFound)?.kind {
            NodeKind::Dir { entries, .. } => {
                if entries.contains_key(name) {
                    return Err(ReplyCode::NameInUse);
                }
                entries.insert(name.to_vec(), DirEntry::Local(id));
            }
            NodeKind::File(_) => return Err(ReplyCode::NotAContext),
        }
        self.nodes.insert(
            id,
            Node {
                parent: Some((parent, name.to_vec())),
                kind: NodeKind::Dir {
                    entries: BTreeMap::new(),
                    ctx,
                },
                owner: owner.clone(),
                modified: t,
                perms: Permissions::default(),
            },
        );
        Ok(id)
    }

    fn create_file_in(
        &mut self,
        parent: ObjectId,
        name: &[u8],
        data: Vec<u8>,
        owner: &CsName,
    ) -> Result<ObjectId, ReplyCode> {
        if name.is_empty() || name.contains(&SEP) {
            return Err(ReplyCode::IllegalName);
        }
        let id = self.alloc_id();
        let t = self.clock.tick();
        match &mut self.nodes.get_mut(&parent).ok_or(ReplyCode::NotFound)?.kind {
            NodeKind::Dir { entries, .. } => {
                if entries.contains_key(name) {
                    return Err(ReplyCode::NameInUse);
                }
                entries.insert(name.to_vec(), DirEntry::Local(id));
            }
            NodeKind::File(_) => return Err(ReplyCode::NotAContext),
        }
        self.nodes.insert(
            id,
            Node {
                parent: Some((parent, name.to_vec())),
                kind: NodeKind::File(data),
                owner: owner.clone(),
                modified: t,
                perms: Permissions::default(),
            },
        );
        Ok(id)
    }

    /// Creates all directories along `path` and returns the last one.
    fn mkdir_path(&mut self, path: &str) -> ObjectId {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let existing = self
                .dir_entries(cur)
                .and_then(|e| e.get(comp.as_bytes()).cloned());
            cur = match existing {
                Some(DirEntry::Local(id)) => id,
                Some(DirEntry::Remote(_)) => panic!("preload path crosses a remote link"), // vcheck: allow(panic-path) startup preload, before serving
                None => self
                    .mkdir_in(cur, comp.as_bytes(), &CsName::from("system"))
                    .expect("preload mkdir"), // vcheck: allow(panic-path) startup preload, before serving
            };
        }
        cur
    }

    fn preload_file(&mut self, path: &str, data: Vec<u8>) {
        let (dir, leaf) = match path.rfind('/') {
            Some(i) => (self.mkdir_path(&path[..i]), &path[i + 1..]),
            None => (self.root, path),
        };
        self.create_file_in(dir, leaf.as_bytes(), data, &CsName::from("system"))
            .expect("preload file"); // vcheck: allow(panic-path) startup preload, before serving
    }

    /// Reverse name mapping: absolute path of a node (paper §6 notes this
    /// inverse is hard in general; within one server the parent chain makes
    /// it exact).
    fn path_of(&self, id: ObjectId) -> Vec<u8> {
        let mut parts: Vec<Vec<u8>> = Vec::new();
        let mut cur = id;
        while let Some(node) = self.nodes.get(&cur) {
            match &node.parent {
                Some((parent, name)) => {
                    parts.push(name.clone());
                    cur = *parent;
                }
                None => break,
            }
        }
        let mut out = Vec::new();
        for part in parts.iter().rev() {
            out.push(SEP);
            out.extend_from_slice(part);
        }
        if out.is_empty() {
            out.push(SEP);
        }
        out
    }

    fn descriptor_of(&self, id: ObjectId, name_in_ctx: &[u8]) -> Option<ObjectDescriptor> {
        let node = self.nodes.get(&id)?;
        let d = match &node.kind {
            NodeKind::File(data) => {
                ObjectDescriptor::new(DescriptorTag::File, CsName::from(name_in_ctx))
                    .with_size(data.len() as u64)
            }
            NodeKind::Dir { entries, ctx } => {
                ObjectDescriptor::new(DescriptorTag::Directory, CsName::from(name_in_ctx))
                    .with_size(entries.len() as u64)
                    .with_ext(DescriptorExt::Directory {
                        context: *ctx,
                        entries: entries.len() as u32,
                    })
            }
        };
        Some(
            d.with_object_id(id)
                .with_owner(node.owner.clone())
                .with_modified(node.modified)
                .with_permissions(node.perms),
        )
    }

    /// Fabricates a context directory for `ctx` on demand (paper §5.6).
    fn fabricate_directory(&self, ctx: ContextId, pattern: Option<&[u8]>) -> Option<Vec<u8>> {
        let dir = self.dir_node_of_ctx(ctx)?;
        let entries = self.dir_entries(dir)?;
        let mut b = match pattern {
            Some(p) if !p.is_empty() => DirectoryBuilder::with_pattern(p.to_vec()),
            _ => DirectoryBuilder::new(),
        };
        for (name, entry) in entries {
            match entry {
                DirEntry::Local(id) => {
                    if let Some(d) = self.descriptor_of(*id, name) {
                        b.push(&d);
                    }
                }
                DirEntry::Remote(pair) => {
                    let d = ObjectDescriptor::new(
                        DescriptorTag::ContextPrefix,
                        CsName::from(name.clone()),
                    )
                    .with_ext(DescriptorExt::ContextPrefix {
                        target: *pair,
                        logical_service: 0,
                    });
                    b.push(&d);
                }
            }
        }
        Some(b.finish())
    }

    fn apply_modify(&mut self, id: ObjectId, d: &ObjectDescriptor) -> ReplyCode {
        let t = self.clock.tick();
        match self.nodes.get_mut(&id) {
            Some(node) => {
                // Per §5.5: overwrite what makes sense, ignore the rest.
                node.perms = d.permissions;
                if !d.owner.is_empty() {
                    node.owner = d.owner.clone();
                }
                node.modified = t;
                ReplyCode::Ok
            }
            None => ReplyCode::NotFound,
        }
    }

    fn remove(&mut self, parent_ctx: ContextId, leaf: &[u8]) -> ReplyCode {
        let Some(dir_id) = self.dir_node_of_ctx(parent_ctx) else {
            return ReplyCode::InvalidContext;
        };
        let entry = match self.dir_entries(dir_id).and_then(|e| e.get(leaf)).cloned() {
            Some(e) => e,
            None => return ReplyCode::NotFound,
        };
        if let DirEntry::Local(id) = entry {
            if let Some(entries) = self.dir_entries(id) {
                if !entries.is_empty() {
                    return ReplyCode::NotEmpty;
                }
            }
            if let Some(node) = self.nodes.remove(&id) {
                if let NodeKind::Dir { ctx, .. } = node.kind {
                    self.contexts.remove(ctx);
                }
            }
        }
        if let Some(node) = self.nodes.get_mut(&dir_id) {
            if let NodeKind::Dir { entries, .. } = &mut node.kind {
                entries.remove(leaf);
            }
        }
        ReplyCode::Ok
    }
}

impl ComponentSpace for Fs {
    type Object = ObjectId;

    fn step(&self, ctx: ContextId, component: &[u8]) -> Step<ObjectId> {
        let Some(dir) = self.dir_node_of_ctx(ctx) else {
            return Step::NotFound;
        };
        match self.dir_entries(dir).and_then(|e| e.get(component)) {
            Some(DirEntry::Local(id)) => match self.nodes.get(id).map(|n| &n.kind) {
                Some(NodeKind::Dir { ctx, .. }) => Step::Context(*ctx),
                Some(NodeKind::File(_)) => Step::Object(*id),
                None => Step::NotFound,
            },
            Some(DirEntry::Remote(pair)) => Step::Remote(*pair),
            None => Step::NotFound,
        }
    }

    fn valid_context(&self, ctx: ContextId) -> bool {
        self.contexts.contains(ctx)
    }
}

/// Result of resolving a name for create-like operations.
enum CreateTarget {
    Exists(ResolvedTarget<ObjectId>, ContextId),
    /// Parent context resolved locally; the final component is absent.
    Creatable {
        parent_ctx: ContextId,
        leaf: Vec<u8>,
    },
    Forward {
        server: Pid,
        ctx: ContextId,
        index: usize,
    },
    Fail(ReplyCode),
}

fn resolve_for_create(fs: &Fs, req: &CsRequest) -> CreateTarget {
    match resolve(fs, &req.name, req.index, req.context, SEP) {
        Outcome::Done { target, parent, .. } => CreateTarget::Exists(target, parent),
        Outcome::Forward { target, index } => CreateTarget::Forward {
            server: target.server,
            ctx: target.context,
            index,
        },
        Outcome::Fail(fail) if fail.code == ReplyCode::NotFound => {
            // Is the missing component the last one?
            let rest = &req.name[fail.index..];
            let leaf_end = rest.iter().position(|&b| b == SEP).unwrap_or(rest.len());
            let after = &rest[leaf_end..];
            if !after.iter().all(|&b| b == SEP) {
                return CreateTarget::Fail(ReplyCode::NotFound);
            }
            let leaf = rest[..leaf_end].to_vec();
            if leaf.is_empty() {
                return CreateTarget::Fail(ReplyCode::IllegalName);
            }
            // Resolve the parent portion (everything before the leaf).
            match resolve(fs, &req.name[..fail.index], req.index, req.context, SEP) {
                Outcome::Done {
                    target: ResolvedTarget::Context(parent_ctx),
                    ..
                } => CreateTarget::Creatable { parent_ctx, leaf },
                Outcome::Done { .. } => CreateTarget::Fail(ReplyCode::NotAContext),
                Outcome::Forward { target, index } => CreateTarget::Forward {
                    server: target.server,
                    ctx: target.context,
                    index,
                },
                Outcome::Fail(f) => CreateTarget::Fail(f.code),
            }
        }
        Outcome::Fail(fail) => CreateTarget::Fail(fail.code),
    }
}

#[derive(Debug)]
enum InstState {
    File(ObjectId),
    Directory { snapshot: Vec<u8>, ctx: ContextId },
}

/// Runs a V file server until the domain shuts down.
///
/// Handles the full name-handling protocol (paper §5): CSname requests
/// (open, query, modify, remove, rename, create, add/delete context name
/// for cross-server links), the I/O protocol on instances, context
/// directories, and the inverse mapping operations.
pub fn file_server(ctx: &dyn Ipc, config: FileServerConfig) {
    let mut fs = Fs::new();
    for (path, data) in &config.preload {
        fs.preload_file(path, data.clone());
    }
    if let Some(home) = &config.home {
        let dir = fs.mkdir_path(home);
        let home_ctx = fs.ctx_of_dir(dir).expect("home is a directory"); // vcheck: allow(panic-path) startup config, before serving
        fs.contexts.bind_well_known(ContextId::HOME, home_ctx);
    }
    if let Some(bin) = &config.bin {
        let dir = fs.mkdir_path(bin);
        let bin_ctx = fs.ctx_of_dir(dir).expect("bin is a directory"); // vcheck: allow(panic-path) startup config, before serving
        fs.contexts
            .bind_well_known(ContextId::STANDARD_PROGRAMS, bin_ctx);
    }
    if let Some(scope) = config.service_scope {
        ctx.set_pid(vproto::ServiceId::FILE_SERVER, scope);
    }
    let mut instances: InstanceTable<InstState> = InstanceTable::new();

    while let Ok(rx) = ctx.receive() {
        dispatch(ctx, rx, &mut fs, &mut instances, &config);
    }
}

fn dispatch(
    ctx: &dyn Ipc,
    rx: Received,
    fs: &mut Fs,
    instances: &mut InstanceTable<InstState>,
    config: &FileServerConfig,
) {
    let msg = rx.msg;
    if msg.is_csname_request() {
        // Paper §5.3-5.4: begin with the name, not the operation code.
        let payload = match ctx.move_from(&rx) {
            Ok(p) => p,
            Err(_) => return,
        };
        let req = match CsRequest::parse(&msg, &payload) {
            Ok(r) => r,
            Err(code) => return reply_code(ctx, rx, code),
        };
        dispatch_csname(ctx, rx, fs, instances, config, req);
        return;
    }
    match msg.request_code() {
        Some(RequestCode::ReadInstance) => {
            let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
            let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
            let count = msg.word(fields::W_IO_COUNT) as usize;
            let window: Result<Vec<u8>, ReplyCode> = instances.check(id, false).and_then(|inst| {
                let data: &[u8] = match &inst.state {
                    InstState::File(node) => match fs.nodes.get(node).map(|n| &n.kind) {
                        Some(NodeKind::File(d)) => d,
                        _ => return Err(ReplyCode::InvalidInstance),
                    },
                    InstState::Directory { snapshot, .. } => snapshot,
                };
                serve_read(data, offset, count).map(|w| w.to_vec())
            });
            match window {
                Ok(w) => {
                    let is_file = matches!(
                        instances.get(id).map(|i| &i.state),
                        Some(InstState::File(_))
                    );
                    if is_file && config.simulate_disk {
                        if let Some(net) = ctx.net() {
                            ctx.sleep(net.disk_cost(w.len()));
                        }
                    }
                    let mut m = Message::ok();
                    m.set_word(fields::W_IO_COUNT, w.len() as u16);
                    reply_data(ctx, rx, m, w);
                }
                Err(code) => reply_code(ctx, rx, code),
            }
        }
        Some(RequestCode::WriteInstance) => {
            let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
            let offset = msg.word32(fields::W_IO_OFFSET_LO) as usize;
            let data = match ctx.move_from(&rx) {
                Ok(d) => d,
                Err(_) => return,
            };
            let result: Result<usize, ReplyCode> = (|| {
                // Directory instances accept descriptor writes in Directory
                // mode (paper §5.6); file writes need a writable mode.
                let inst = instances.check(id, false)?;
                if matches!(inst.state, InstState::File(_)) && !inst.mode.writes() {
                    return Err(ReplyCode::BadMode);
                }
                match &inst.state {
                    InstState::File(node_id) => {
                        let node_id = *node_id;
                        let t = fs.clock.tick();
                        let node = fs
                            .nodes
                            .get_mut(&node_id)
                            .ok_or(ReplyCode::InvalidInstance)?;
                        match &mut node.kind {
                            NodeKind::File(content) => {
                                if content.len() < offset + data.len() {
                                    content.resize(offset + data.len(), 0);
                                }
                                content[offset..offset + data.len()].copy_from_slice(&data);
                                node.modified = t;
                                Ok(data.len())
                            }
                            NodeKind::Dir { .. } => Err(ReplyCode::BadMode),
                        }
                    }
                    InstState::Directory { ctx: dctx, .. } => {
                        // Paper §5.6: writing a description record has the
                        // semantics of the modification operation.
                        let dctx = *dctx;
                        let d =
                            ObjectDescriptor::decode_one(&data).map_err(|_| ReplyCode::BadArgs)?;
                        let dir_id = fs.dir_node_of_ctx(dctx).ok_or(ReplyCode::InvalidContext)?;
                        let entry = fs
                            .dir_entries(dir_id)
                            .and_then(|e| e.get(d.name.as_bytes()).cloned())
                            .ok_or(ReplyCode::NotFound)?;
                        match entry {
                            DirEntry::Local(target) => {
                                let code = fs.apply_modify(target, &d);
                                if code.is_ok() {
                                    Ok(data.len())
                                } else {
                                    Err(code)
                                }
                            }
                            DirEntry::Remote(_) => Err(ReplyCode::BadMode),
                        }
                    }
                }
            })();
            if config.simulate_disk && result.is_ok() {
                if let Some(net) = ctx.net() {
                    ctx.sleep(net.disk_cost(data.len()));
                }
            }
            match result {
                Ok(n) => {
                    let mut m = Message::ok();
                    m.set_word(fields::W_IO_COUNT, n as u16);
                    reply_data(ctx, rx, m, Vec::new());
                }
                Err(code) => reply_code(ctx, rx, code),
            }
        }
        Some(RequestCode::ReleaseInstance) => {
            let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
            let code = if instances.release(id).is_some() {
                ReplyCode::Ok
            } else {
                ReplyCode::InvalidInstance
            };
            reply_code(ctx, rx, code);
        }
        Some(RequestCode::QueryInstance) => {
            let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
            match instances.get(id).map(|i| &i.state) {
                Some(InstState::File(node)) => {
                    let path = fs.path_of(*node);
                    match fs.descriptor_of(*node, &path) {
                        Some(d) => reply_descriptor(ctx, rx, &d),
                        None => reply_code(ctx, rx, ReplyCode::InvalidInstance),
                    }
                }
                Some(InstState::Directory {
                    snapshot,
                    ctx: dctx,
                }) => {
                    let d = ObjectDescriptor::new(DescriptorTag::Directory, CsName::from("."))
                        .with_size(snapshot.len() as u64)
                        .with_ext(DescriptorExt::Directory {
                            context: *dctx,
                            entries: 0,
                        });
                    reply_descriptor(ctx, rx, &d);
                }
                None => reply_code(ctx, rx, ReplyCode::InvalidInstance),
            }
        }
        Some(RequestCode::GetContextName) => {
            // Inverse mapping: context id → CSname (paper §5.7, §6).
            let ctx_id = ContextId::new(msg.word32(fields::W_INVERT_ID_LO));
            match fs.dir_node_of_ctx(ctx_id) {
                Some(dir) => {
                    let path = fs.path_of(dir);
                    reply_data(ctx, rx, Message::ok(), path);
                }
                None => reply_code(ctx, rx, ReplyCode::InvalidContext),
            }
        }
        Some(RequestCode::GetInstanceName) => {
            let id = InstanceId(msg.word32(fields::W_INVERT_ID_LO) as u16);
            match instances.get(id).map(|i| &i.state) {
                Some(InstState::File(node)) => {
                    let path = fs.path_of(*node);
                    reply_data(ctx, rx, Message::ok(), path);
                }
                _ => reply_code(ctx, rx, ReplyCode::InvalidInstance),
            }
        }
        Some(RequestCode::SetInstanceOwner) => {
            // The new owner CSname travels as the payload; the instance
            // names the object whose ownership changes (paper §5.5's
            // modify-descriptor path, scoped to one field).
            let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
            let owner = match ctx.move_from(&rx) {
                Ok(d) => d,
                Err(_) => return,
            };
            let result: Result<(), ReplyCode> = (|| {
                if owner.is_empty() {
                    return Err(ReplyCode::BadArgs);
                }
                let inst = instances.check(id, false)?;
                match &inst.state {
                    InstState::File(node_id) => {
                        let node_id = *node_id;
                        let t = fs.clock.tick();
                        let node = fs
                            .nodes
                            .get_mut(&node_id)
                            .ok_or(ReplyCode::InvalidInstance)?;
                        node.owner = CsName::from_bytes(owner.to_vec());
                        node.modified = t;
                        Ok(())
                    }
                    // A directory snapshot instance has no single object
                    // to re-own.
                    InstState::Directory { .. } => Err(ReplyCode::BadMode),
                }
            })();
            match result {
                Ok(()) => reply_code(ctx, rx, ReplyCode::Ok),
                Err(code) => reply_code(ctx, rx, code),
            }
        }
        Some(RequestCode::Echo) => {
            let _ = ctx.reply(rx, msg, Bytes::new());
        }
        _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
    }
}

fn dispatch_csname(
    ctx: &dyn Ipc,
    rx: Received,
    fs: &mut Fs,
    instances: &mut InstanceTable<InstState>,
    _config: &FileServerConfig,
    req: CsRequest,
) {
    let msg = rx.msg;
    let op = msg.request_code();

    // Create-like operations resolve with missing-leaf tolerance.
    let create_like = matches!(
        op,
        Some(RequestCode::CreateObject) | Some(RequestCode::AddContextName)
    ) || (op == Some(RequestCode::CreateInstance)
        && msg.mode() == Some(OpenMode::Create));

    if create_like {
        match resolve_for_create(fs, &req) {
            CreateTarget::Forward {
                server,
                ctx: c,
                index,
            } => {
                let _ = forward_csname(ctx, rx, server, c, index);
                return;
            }
            CreateTarget::Fail(code) => return reply_code(ctx, rx, code),
            CreateTarget::Exists(target, parent) => {
                return handle_resolved(ctx, rx, fs, instances, req, target, parent);
            }
            CreateTarget::Creatable { parent_ctx, leaf } => {
                return handle_create(ctx, rx, fs, instances, req, parent_ctx, leaf);
            }
        }
    }

    match resolve(fs, &req.name, req.index, req.context, SEP) {
        Outcome::Forward { target, index } => {
            let _ = forward_csname(ctx, rx, target.server, target.context, index);
        }
        Outcome::Fail(fail) => reply_fail(ctx, rx, fail),
        Outcome::Done { target, parent, .. } => {
            handle_resolved(ctx, rx, fs, instances, req, target, parent);
        }
    }
}

/// Handles create-like operations whose final component does not exist yet.
fn handle_create(
    ctx: &dyn Ipc,
    rx: Received,
    fs: &mut Fs,
    instances: &mut InstanceTable<InstState>,
    req: CsRequest,
    parent_ctx: ContextId,
    leaf: Vec<u8>,
) {
    let msg = rx.msg;
    let parent_id = match fs.dir_node_of_ctx(parent_ctx) {
        Some(id) => id,
        None => return reply_code(ctx, rx, ReplyCode::InvalidContext),
    };
    let owner = CsName::from("user");
    match msg.request_code() {
        Some(RequestCode::CreateInstance) => {
            match fs.create_file_in(parent_id, &leaf, Vec::new(), &owner) {
                Ok(id) => {
                    let inst = instances.open(rx.from, OpenMode::Create, InstState::File(id));
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, 0)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Err(code) => reply_code(ctx, rx, code),
            }
        }
        Some(RequestCode::CreateObject) => {
            // Descriptor template (if any) selects file vs directory; only
            // the tag word matters, so peek it rather than requiring a
            // fully well-formed record.
            let tag = vproto::WireReader::new(&req.extra)
                .u16()
                .ok()
                .and_then(DescriptorTag::from_u16)
                .unwrap_or(DescriptorTag::File);
            let result = match tag {
                DescriptorTag::Directory => fs.mkdir_in(parent_id, &leaf, &owner).map(|_| ()),
                _ => fs
                    .create_file_in(parent_id, &leaf, Vec::new(), &owner)
                    .map(|_| ()),
            };
            match result {
                Ok(()) => reply_code(ctx, rx, ReplyCode::Ok),
                Err(code) => reply_code(ctx, rx, code),
            }
        }
        Some(RequestCode::AddContextName) => {
            // A context pointer. If the target is one of *our own*
            // contexts, this is a local alias (a second name for the same
            // directory — the many-to-one situation that makes reverse
            // mapping ambiguous, paper §6); otherwise it is a cross-server
            // link, the curved arrow of Figure 4.
            let target = ContextPair::new(
                msg.pid_at(fields::W_TARGET_PID_LO),
                ContextId::new(msg.word32(fields::W_TARGET_CTX_LO)),
            );
            let entry = if target.server == ctx.my_pid() {
                match fs.dir_node_of_ctx(target.context) {
                    Some(dir_id) => DirEntry::Local(dir_id),
                    None => return reply_code(ctx, rx, ReplyCode::InvalidContext),
                }
            } else {
                DirEntry::Remote(target)
            };
            let t = fs.clock.tick();
            let Some(node) = fs.nodes.get_mut(&parent_id) else {
                return reply_code(ctx, rx, ReplyCode::InvalidContext);
            };
            node.modified = t;
            match &mut node.kind {
                NodeKind::Dir { entries, .. } => {
                    entries.insert(leaf, entry);
                    reply_code(ctx, rx, ReplyCode::Ok);
                }
                NodeKind::File(_) => reply_code(ctx, rx, ReplyCode::NotAContext),
            }
        }
        _ => reply_code(ctx, rx, ReplyCode::NotFound),
    }
}

/// Handles CSname operations whose name resolved locally.
fn handle_resolved(
    ctx: &dyn Ipc,
    rx: Received,
    fs: &mut Fs,
    instances: &mut InstanceTable<InstState>,
    req: CsRequest,
    target: ResolvedTarget<ObjectId>,
    parent: ContextId,
) {
    let msg = rx.msg;
    match msg.request_code() {
        Some(RequestCode::CreateInstance) => {
            let mode = match msg.mode() {
                Some(m) => m,
                None => return reply_code(ctx, rx, ReplyCode::BadArgs),
            };
            match (&target, mode) {
                (ResolvedTarget::Object(id), OpenMode::Directory) => {
                    let _ = id;
                    reply_code(ctx, rx, ReplyCode::NotAContext);
                }
                (ResolvedTarget::Object(id), _) => {
                    // Enforce the access-control bits a modify operation may
                    // have set (the paper's §5.5 example).
                    let perms = fs.nodes.get(id).map(|n| n.perms).unwrap_or_default();
                    let denied = (mode.writes() && !perms.has(Permissions::WRITE))
                        || (!mode.writes() && !perms.has(Permissions::READ));
                    if denied {
                        return reply_code(ctx, rx, ReplyCode::NoPermission);
                    }
                    let size = match fs.nodes.get(id).map(|n| &n.kind) {
                        Some(NodeKind::File(d)) => d.len() as u64,
                        _ => 0,
                    };
                    let inst = instances.open(rx.from, mode, InstState::File(*id));
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                (ResolvedTarget::Context(c), OpenMode::Directory)
                | (ResolvedTarget::Context(c), OpenMode::Read) => {
                    // Open the context directory (paper §5.6); the extra
                    // payload optionally carries a filter pattern.
                    let pattern = if req.extra.is_empty() {
                        None
                    } else {
                        Some(&req.extra[..])
                    };
                    match fs.fabricate_directory(*c, pattern) {
                        Some(snapshot) => {
                            let size = snapshot.len() as u64;
                            let inst = instances.open(
                                rx.from,
                                OpenMode::Directory,
                                InstState::Directory { snapshot, ctx: *c },
                            );
                            let mut m = Message::ok();
                            m.set_word(fields::W_INSTANCE, inst.0)
                                .set_word32(fields::W_SIZE_LO, size as u32)
                                .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                            reply_data(ctx, rx, m, Vec::new());
                        }
                        None => reply_code(ctx, rx, ReplyCode::InvalidContext),
                    }
                }
                (ResolvedTarget::Context(_), _) => {
                    reply_code(ctx, rx, ReplyCode::BadMode);
                }
            }
        }
        Some(RequestCode::QueryName) => match target {
            // Paper §5.7: map a context CSname → (server-pid, context-id).
            ResolvedTarget::Context(c) => {
                let mut m = Message::ok();
                m.set_context_id(c);
                m.set_pid_at(fields::W_PID_LO, ctx.my_pid());
                reply_data(ctx, rx, m, Vec::new());
            }
            ResolvedTarget::Object(_) => reply_code(ctx, rx, ReplyCode::NotAContext),
        },
        Some(RequestCode::QueryObject) => {
            let (id, shown_name) = match target {
                ResolvedTarget::Object(id) => (id, leaf_name(&req)),
                ResolvedTarget::Context(c) => match fs.dir_node_of_ctx(c) {
                    Some(dir) => (dir, leaf_name(&req)),
                    None => return reply_code(ctx, rx, ReplyCode::InvalidContext),
                },
            };
            match fs.descriptor_of(id, &shown_name) {
                Some(d) => reply_descriptor(ctx, rx, &d),
                None => reply_code(ctx, rx, ReplyCode::NotFound),
            }
        }
        Some(RequestCode::ModifyObject) => {
            let d = match ObjectDescriptor::decode_one(&req.extra) {
                Ok(d) => d,
                Err(_) => return reply_code(ctx, rx, ReplyCode::BadArgs),
            };
            let id = match target {
                ResolvedTarget::Object(id) => id,
                ResolvedTarget::Context(c) => match fs.dir_node_of_ctx(c) {
                    Some(dir) => dir,
                    None => return reply_code(ctx, rx, ReplyCode::InvalidContext),
                },
            };
            reply_code(ctx, rx, fs.apply_modify(id, &d));
        }
        Some(RequestCode::RemoveObject) => {
            let leaf = leaf_name(&req);
            if leaf.is_empty() {
                return reply_code(ctx, rx, ReplyCode::IllegalName);
            }
            reply_code(ctx, rx, fs.remove(parent, &leaf));
        }
        Some(RequestCode::DeleteContextName) => {
            // Remove a cross-server link (or any entry) by name.
            let leaf = leaf_name(&req);
            if leaf.is_empty() {
                return reply_code(ctx, rx, ReplyCode::IllegalName);
            }
            reply_code(ctx, rx, fs.remove(parent, &leaf));
        }
        Some(RequestCode::RenameObject) => {
            let new_index = msg.word(fields::W_NAME2_INDEX) as usize;
            let new_len = msg.word(fields::W_NAME2_LEN) as usize;
            // The second name follows the first in the payload; req.extra
            // holds payload bytes past the first name.
            if new_index < req.name.len() || new_index + new_len > req.name.len() + req.extra.len()
            {
                return reply_code(ctx, rx, ReplyCode::BadArgs);
            }
            let start = new_index - req.name.len();
            let new_name = req.extra[start..start + new_len].to_vec();
            let code = do_rename(fs, &req, target, parent, &new_name);
            reply_code(ctx, rx, code);
        }
        Some(RequestCode::CreateObject) | Some(RequestCode::AddContextName) => {
            // Fully resolved: the name already exists.
            reply_code(ctx, rx, ReplyCode::NameInUse);
        }
        _ => {
            // A CSname operation this server does not implement — but the
            // name resolved here, so answer honestly (paper §5.3).
            reply_code(ctx, rx, ReplyCode::UnknownRequest);
        }
    }
}

/// The final component of the (interpreted portion of the) request name.
fn leaf_name(req: &CsRequest) -> Vec<u8> {
    let name = &req.name[req.index.min(req.name.len())..];
    let trimmed: &[u8] = {
        let mut end = name.len();
        while end > 0 && name[end - 1] == SEP {
            end -= 1;
        }
        &name[..end]
    };
    match trimmed.iter().rposition(|&b| b == SEP) {
        Some(i) => trimmed[i + 1..].to_vec(),
        None => trimmed.to_vec(),
    }
}

fn do_rename(
    fs: &mut Fs,
    req: &CsRequest,
    target: ResolvedTarget<ObjectId>,
    parent: ContextId,
    new_name: &[u8],
) -> ReplyCode {
    let old_leaf = leaf_name(req);
    if old_leaf.is_empty() {
        return ReplyCode::IllegalName;
    }
    let id = match target {
        ResolvedTarget::Object(id) => id,
        ResolvedTarget::Context(c) => match fs.dir_node_of_ctx(c) {
            Some(d) => d,
            None => return ReplyCode::InvalidContext,
        },
    };
    // Resolve the new name's parent (must be local).
    let fake_req = CsRequest {
        context: req.context,
        index: 0,
        name: new_name.to_vec(),
        extra: Vec::new(),
    };
    let (new_parent_ctx, new_leaf) = match resolve_for_create(fs, &fake_req) {
        CreateTarget::Creatable { parent_ctx, leaf } => (parent_ctx, leaf),
        CreateTarget::Exists(..) => return ReplyCode::NameInUse,
        CreateTarget::Forward { .. } => return ReplyCode::IllegalName, // cross-server rename unsupported
        CreateTarget::Fail(code) => return code,
    };
    let Some(old_dir) = fs.dir_node_of_ctx(parent) else {
        return ReplyCode::InvalidContext;
    };
    let Some(new_dir) = fs.dir_node_of_ctx(new_parent_ctx) else {
        return ReplyCode::InvalidContext;
    };
    // Detach from the old directory.
    let entry = match fs.nodes.get_mut(&old_dir) {
        Some(node) => match &mut node.kind {
            NodeKind::Dir { entries, .. } => match entries.remove(&old_leaf) {
                Some(e) => e,
                None => return ReplyCode::NotFound,
            },
            NodeKind::File(_) => return ReplyCode::NotAContext,
        },
        None => return ReplyCode::InvalidContext,
    };
    // Attach under the new directory.
    match fs.nodes.get_mut(&new_dir) {
        Some(node) => match &mut node.kind {
            NodeKind::Dir { entries, .. } => {
                entries.insert(new_leaf.clone(), entry);
            }
            NodeKind::File(_) => return ReplyCode::NotAContext,
        },
        None => return ReplyCode::InvalidContext,
    }
    let t = fs.clock.tick();
    if let Some(node) = fs.nodes.get_mut(&id) {
        node.parent = Some((new_dir, new_leaf));
        node.modified = t;
    }
    ReplyCode::Ok
}
