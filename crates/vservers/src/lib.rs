//! The V-System CSNH servers (paper §3, §5, §6).
//!
//! Every server here "implements the naming of the objects and operations
//! it provides" and conforms to the name-handling protocol, so the standard
//! run-time routines (and the single `list directory` command of paper §6)
//! work identically against all of them:
//!
//! * [`file_server`] — hierarchical directories as contexts, files, i-node
//!   style object ids, cross-server links (Figure 4's curved arrow),
//!   well-known contexts (home, standard programs), reverse name mapping.
//! * [`prefix_server`] — the per-user context prefix server of §5.8/§6:
//!   `[prefix]` names, add/delete context name operations, logical
//!   (service, well-known-context) entries re-resolved via `GetPid`.
//! * [`terminal_server`] — virtual terminals as temporary objects.
//! * [`printer_server`] — print queues and jobs.
//! * [`internet_server`] — simulated TCP connections as named objects.
//! * [`program_manager`] — programs in execution as a context.
//! * [`mail_server`] — `user@host` foreign-syntax names (§2.2's
//!   extensibility argument), with inter-server forwarding on the host
//!   part.
//! * [`time_server`] — the §4.2 "simple service" example (clients rebind
//!   per call).
//! * [`pipe_server`] — pipes (§3.2's I/O sources/sinks), the one server
//!   that defers replies to block empty readers.
//!
//! All servers are plain functions over `&dyn Ipc`, so they run unchanged on
//! the real-thread kernel and the virtual-time kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod file;
mod internet;
mod mail;
mod pipe;
mod prefix;
mod printer;
mod program;
pub mod shard;
mod suspect;
pub mod sync;
mod terminal;
mod time;

pub use file::{file_server, FileServerConfig};
pub use internet::{internet_server, InternetConfig};
pub use mail::{mail_server, MailConfig};
pub use pipe::{pipe_server, PipeConfig};
pub use prefix::{prefix_footprint_bytes, prefix_server, DegradedPrefixConfig, PrefixConfig};
pub use printer::{printer_server, PrinterConfig};
pub use program::{program_manager, ProgramConfig};
pub use shard::{ResolverHandle, ShardedTable, SnapEntry, Snapshot};
pub use sync::{
    flat_round, merkle_child, merkle_index, merkle_is_leaf, merkle_level, merkle_node_id,
    merkle_node_valid, merkle_round, shard_of_bucket, ApplyOutcome, MerkleWalk, RoundFate,
    RoundKind, RoundStats, SyncTable, TombstoneOutcome, VersionedEntry, MAX_EPOCH_SKEW_NS,
    MERKLE_FANOUT, MERKLE_LEAVES, MERKLE_LEVELS, MERKLE_ROOT, SHARD_COUNT,
};
pub use terminal::{terminal_server, TerminalConfig};
pub use time::{get_time, time_server, TimeConfig};
