//! Sharded, read-mostly view of a [`SyncTable`] — the resolve hot path.
//!
//! The prefix server's receive loop owns the versioned table; resolution
//! only ever needs the *live bindings*. This module splits the two roles:
//! the writer keeps mutating its [`SyncTable`] as before, and `publish`
//! turns the accumulated changes into a fresh immutable [`Snapshot`] that
//! readers pick up with one atomic pointer swap (RCU style — readers never
//! take a write lock, writers never block readers).
//!
//! A snapshot is [`SHARD_COUNT`] per-shard hash maps behind `Arc`s. Shards
//! are keyed by the same FNV top bits the Merkle tree buckets on
//! ([`SyncTable::shard_of`] is the top four bits of
//! [`SyncTable::bucket_of`]), so a shard is exactly one root-child subtree:
//! the set a publish rebuilds and the set a sync walk descends always
//! coincide. Publishing rebuilds only the shards the table marked dirty
//! and re-`Arc`s the rest, so the cost of a publish tracks what actually
//! changed, not table size.
//!
//! Atomicity: a mutation batch (a define, a whole sync apply round, a GC
//! sweep) becomes visible all-at-once at the next `publish`, or not at
//! all. Aborted rounds never call `publish`, so they are invisible to
//! readers — the same "failed rounds apply nothing" guarantee the Merkle
//! walk gives the table itself, extended to concurrent readers.

use crate::sync::{SyncTable, SHARD_COUNT};
use parking_lot::RwLock;
use std::sync::Arc;
use vproto::SyncBinding;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The full 64-bit FNV-1a hash of a prefix — the same fold
/// [`SyncTable::bucket_of`] takes its top bits from, so one pass yields
/// both the shard and the in-shard probe position.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard a full FNV hash lands in: its top four bits — by
/// construction identical to [`SyncTable::shard_of`] of the hashed name
/// (shard = top 4 bits of the 20-bit Merkle leaf bucket = top 4 bits of
/// the hash).
const fn shard_of_hash(h: u64) -> usize {
    (h >> 60) as usize
}

/// One stored binding in a shard's probe table.
#[derive(Debug, Clone)]
struct ProbeSlot {
    hash: u64,
    name: Vec<u8>,
    entry: SnapEntry,
}

/// One shard of a snapshot: a fixed open-addressing table built once at
/// publish time (linear probing, ≤50% load, never resized after build).
/// Lookups reuse the caller's single FNV pass — the hash that picked the
/// shard also picks the slot — compare the stored 64-bit hash first, and
/// touch the name bytes only on a hash match, so a probe is typically one
/// cache line of the slot array.
#[derive(Debug, Default)]
struct ShardMap {
    mask: usize,
    len: usize,
    slots: Vec<Option<ProbeSlot>>,
}

impl ShardMap {
    fn build(items: Vec<ProbeSlot>) -> ShardMap {
        if items.is_empty() {
            return ShardMap::default();
        }
        let cap = (items.len() * 2).next_power_of_two();
        let mask = cap - 1;
        let mut slots: Vec<Option<ProbeSlot>> = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        let len = items.len();
        for item in items {
            let mut idx = (item.hash as usize) & mask;
            while slots[idx].is_some() {
                idx = (idx + 1) & mask;
            }
            slots[idx] = Some(item);
        }
        ShardMap { mask, len, slots }
    }

    fn get(&self, hash: u64, name: &[u8]) -> Option<&SnapEntry> {
        if self.slots.is_empty() {
            return None;
        }
        let mut idx = (hash as usize) & self.mask;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some(s) if s.hash == hash && s.name == name => return Some(&s.entry),
                Some(_) => idx = (idx + 1) & self.mask,
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// A live binding as served by a snapshot: what resolution needs and
/// nothing else (tombstones and epochs stay in the writer's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapEntry {
    /// The prefix binding.
    pub binding: SyncBinding,
    /// `false` while the entry is hearsay (preloaded or gossip-adopted);
    /// served to clients as the staleness flag.
    pub verified: bool,
}

/// An immutable, internally consistent view of every live binding at one
/// publication instant.
#[derive(Debug)]
pub struct Snapshot {
    /// Publication sequence number: 0 for the empty boot snapshot, +1 per
    /// publish that changed anything.
    epoch: u64,
    shards: [Arc<ShardMap>; SHARD_COUNT],
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot {
            epoch: 0,
            shards: std::array::from_fn(|_| Arc::new(ShardMap::default())),
        }
    }

    /// The publication sequence number this snapshot was swapped in at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up a live binding. Tombstoned and never-defined prefixes both
    /// answer `None`.
    pub fn lookup(&self, prefix: &[u8]) -> Option<&SnapEntry> {
        let h = fnv64(prefix);
        self.shards[shard_of_hash(h)].get(h, prefix)
    }

    /// The number of live bindings in the snapshot.
    pub fn live_len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Resolves a batch of prefixes against this one consistent view,
    /// grouped through the shards: all of shard 0's names probe before
    /// shard 1's, so a burst walks each shard map while it is hot instead
    /// of ping-ponging between sixteen of them. Answers land at the input
    /// index of their name.
    pub fn resolve_batch(&self, names: &[&[u8]]) -> Vec<Option<SnapEntry>> {
        let mut out = vec![None; names.len()];
        // Hash every name once (the hash encodes its shard in the top four
        // bits), sort the (hash, index) pairs so probes run shard-major,
        // then probe with the precomputed hashes.
        let mut order: Vec<(u64, u32)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (fnv64(n), i as u32))
            .collect();
        order.sort_unstable_by_key(|&(h, _)| h >> 60);
        for &(h, i) in &order {
            let i = i as usize;
            out[i] = self.shards[shard_of_hash(h)].get(h, names[i]).copied();
        }
        out
    }
}

/// The writer half: a [`SyncTable`] plus the publication slot readers load
/// snapshots from.
///
/// All sync/anti-entropy machinery keeps operating on the inner table via
/// [`ShardedTable::table_mut`]; nothing those rounds do is visible to
/// readers until [`ShardedTable::publish`] commits the batch.
#[derive(Debug)]
pub struct ShardedTable {
    table: SyncTable,
    published: Arc<RwLock<Arc<Snapshot>>>,
}

impl Default for ShardedTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedTable {
    /// An empty table with an empty published snapshot.
    pub fn new() -> Self {
        ShardedTable {
            table: SyncTable::new(),
            published: Arc::new(RwLock::new(Arc::new(Snapshot::empty()))),
        }
    }

    /// Wraps an already-populated table and publishes its current state as
    /// the first snapshot.
    pub fn from_table(table: SyncTable) -> Self {
        let mut s = ShardedTable {
            table,
            published: Arc::new(RwLock::new(Arc::new(Snapshot::empty()))),
        };
        // Everything is new to the (empty) snapshot, whatever the table's
        // own dirty mask says.
        s.table.take_dirty_shards();
        s.publish_shards(u16::MAX);
        s
    }

    /// Read access to the versioned table (digests, walks, counters).
    pub fn table(&self) -> &SyncTable {
        &self.table
    }

    /// Write access to the versioned table. Mutations stage invisibly;
    /// call [`ShardedTable::publish`] when the batch is complete.
    pub fn table_mut(&mut self) -> &mut SyncTable {
        &mut self.table
    }

    /// Publishes every staged change as one new snapshot. A no-op (no
    /// swap, no epoch bump) when nothing is dirty, so callers can invoke
    /// it unconditionally after each receive-loop iteration. Only dirty
    /// shards are rebuilt; clean ones share their `Arc` with the previous
    /// snapshot.
    pub fn publish(&mut self) {
        let dirty = self.table.take_dirty_shards();
        if dirty != 0 {
            self.publish_shards(dirty);
        }
    }

    fn publish_shards(&mut self, dirty: u16) {
        let prev = self.published.read().clone();
        let shards = std::array::from_fn(|s| {
            if dirty & (1 << s) == 0 {
                return prev.shards[s].clone();
            }
            let items: Vec<ProbeSlot> = self
                .table
                .shard_live_iter(s)
                .map(|(name, binding, verified)| ProbeSlot {
                    hash: fnv64(name),
                    name: name.to_vec(),
                    entry: SnapEntry {
                        binding: *binding,
                        verified,
                    },
                })
                .collect();
            Arc::new(ShardMap::build(items))
        });
        let next = Arc::new(Snapshot {
            epoch: prev.epoch + 1,
            shards,
        });
        *self.published.write() = next;
    }

    /// The current snapshot (one read-lock acquisition and an `Arc`
    /// clone — never blocks behind a publish in progress for long, and
    /// never blocks a publish).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().clone()
    }

    /// A cloneable, send-able read handle for resolver threads.
    pub fn reader(&self) -> ResolverHandle {
        ResolverHandle {
            published: self.published.clone(),
        }
    }
}

/// A read-only handle onto a [`ShardedTable`]'s publication slot. Cheap to
/// clone and safe to hand to other threads; each [`ResolverHandle::snapshot`]
/// call loads whatever the writer most recently published.
#[derive(Debug, Clone)]
pub struct ResolverHandle {
    published: Arc<RwLock<Arc<Snapshot>>>,
}

impl ResolverHandle {
    /// The current snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().clone()
    }

    /// One-shot lookup against the current snapshot.
    pub fn lookup(&self, prefix: &[u8]) -> Option<SnapEntry> {
        self.snapshot().lookup(prefix).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(target: u32) -> SyncBinding {
        SyncBinding {
            logical: false,
            target,
            context: 1,
        }
    }

    #[test]
    fn staged_mutations_invisible_until_publish() {
        let mut st = ShardedTable::new();
        st.table_mut().define(b"bin".to_vec(), bind(1), 100);
        assert!(st.snapshot().lookup(b"bin").is_none());
        st.publish();
        assert_eq!(st.snapshot().lookup(b"bin").unwrap().binding, bind(1));
    }

    #[test]
    fn tombstone_retracts_on_next_publish() {
        let mut st = ShardedTable::new();
        st.table_mut().define(b"tmp".to_vec(), bind(2), 100);
        st.publish();
        st.table_mut().tombstone(b"tmp", 200);
        let held = st.snapshot();
        st.publish();
        // The old snapshot still serves the binding; the new one does not.
        assert!(held.lookup(b"tmp").is_some());
        assert!(st.snapshot().lookup(b"tmp").is_none());
    }

    #[test]
    fn publish_is_a_noop_when_clean() {
        let mut st = ShardedTable::new();
        st.table_mut().define(b"x".to_vec(), bind(1), 100);
        st.publish();
        let epoch = st.snapshot().epoch();
        st.publish();
        assert_eq!(st.snapshot().epoch(), epoch);
    }

    #[test]
    fn clean_shards_are_shared_between_snapshots() {
        let mut st = ShardedTable::new();
        for i in 0..64u32 {
            st.table_mut()
                .define(format!("n{i}").into_bytes(), bind(i), 100 + u64::from(i));
        }
        st.publish();
        let before = st.snapshot();
        st.table_mut().define(b"one-more".to_vec(), bind(99), 999);
        st.publish();
        let after = st.snapshot();
        let touched = SyncTable::shard_of(b"one-more");
        let mut shared = 0;
        for s in 0..SHARD_COUNT {
            if Arc::ptr_eq(&before.shards[s], &after.shards[s]) {
                shared += 1;
                assert_ne!(s, touched, "touched shard must be rebuilt");
            }
        }
        assert_eq!(shared, SHARD_COUNT - 1, "exactly one shard was dirty");
    }

    #[test]
    fn verified_promotion_republishes() {
        let mut st = ShardedTable::new();
        st.table_mut().preload(b"boot".to_vec(), bind(7));
        st.publish();
        assert!(!st.snapshot().lookup(b"boot").unwrap().verified);
        st.table_mut().mark_all_verified();
        st.publish();
        assert!(st.snapshot().lookup(b"boot").unwrap().verified);
    }

    #[test]
    fn from_table_publishes_existing_content() {
        let mut t = SyncTable::new();
        t.define(b"seed".to_vec(), bind(3), 50);
        t.tombstone(b"seed2", 60); // unknown: no-op
        let st = ShardedTable::from_table(t);
        assert_eq!(st.snapshot().live_len(), 1);
        assert!(st.snapshot().lookup(b"seed").is_some());
    }

    #[test]
    fn batch_matches_single_lookups() {
        let mut st = ShardedTable::new();
        for i in 0..200u32 {
            st.table_mut()
                .define(format!("svc{i}").into_bytes(), bind(i), 100 + u64::from(i));
        }
        st.publish();
        let snap = st.snapshot();
        let names: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("svc{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = names.iter().map(|n| n.as_slice()).collect();
        let batch = snap.resolve_batch(&refs);
        for (name, got) in refs.iter().zip(&batch) {
            assert_eq!(got.as_ref(), snap.lookup(name), "{:?}", name);
        }
    }

    #[test]
    fn reader_handle_sees_published_state_only() {
        let mut st = ShardedTable::new();
        let reader = st.reader();
        st.table_mut().define(b"a".to_vec(), bind(1), 100);
        assert!(reader.lookup(b"a").is_none());
        st.publish();
        assert!(reader.lookup(b"a").is_some());
    }
}
