//! TTL-ordered suspicion index for the prefix server.
//!
//! PR 4 swept suspicions with a full `retain` over the map on *every*
//! receive-loop iteration — O(armed suspicions) per message, the same
//! per-message table-scan class the epoch-keyed tombstone index removed
//! from GC. This index keeps the expiry order explicitly (the PR 9
//! pattern: a `BTreeMap` keyed by deadline), so a sweep pops only the
//! entries that actually expired: O(expired), zero when nothing did.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Armed suspicions, indexed both by name and by expiry time.
#[derive(Debug, Default)]
pub(crate) struct SuspectSet {
    /// Name → the ns deadline its suspicion expires at.
    until: HashMap<Vec<u8>, u64>,
    /// Deadline → the names expiring then. Slots are pruned when their
    /// last member leaves, so `expire` walks exactly the doomed range.
    by_expiry: BTreeMap<u64, BTreeSet<Vec<u8>>>,
}

impl SuspectSet {
    /// Arms (or re-arms) a suspicion on `name` until `until_ns`.
    pub fn arm(&mut self, name: Vec<u8>, until_ns: u64) {
        if let Some(old) = self.until.insert(name.clone(), until_ns) {
            Self::unindex(&mut self.by_expiry, old, &name);
        }
        self.by_expiry.entry(until_ns).or_default().insert(name);
    }

    /// Disarms any suspicion on `name` (the path was proven healthy).
    pub fn disarm(&mut self, name: &[u8]) {
        if let Some(old) = self.until.remove(name) {
            Self::unindex(&mut self.by_expiry, old, name);
        }
    }

    /// `true` if a suspicion on `name` is armed and unexpired at `now_ns`.
    pub fn is_armed(&self, name: &[u8], now_ns: u64) -> bool {
        self.until.get(name).is_some_and(|&until| now_ns < until)
    }

    /// Drops every suspicion whose deadline is at or before `now_ns`,
    /// returning how many expired. Cost tracks the expired count, not the
    /// armed count — the receive loop calls this on every message.
    pub fn expire(&mut self, now_ns: u64) -> u32 {
        let mut expired = 0u32;
        while let Some((&deadline, _)) = self.by_expiry.first_key_value() {
            if deadline > now_ns {
                break;
            }
            let names = self.by_expiry.remove(&deadline).unwrap_or_default();
            for name in names {
                self.until.remove(&name);
                expired += 1;
            }
        }
        expired
    }

    /// The number of armed suspicions.
    pub fn len(&self) -> usize {
        self.until.len()
    }

    /// Drops every armed suspicion — a successful authority round vouches
    /// for the whole table at once.
    pub fn clear(&mut self) {
        self.until.clear();
        self.by_expiry.clear();
    }

    fn unindex(by_expiry: &mut BTreeMap<u64, BTreeSet<Vec<u8>>>, deadline: u64, name: &[u8]) {
        if let Some(set) = by_expiry.get_mut(&deadline) {
            set.remove(name);
            if set.is_empty() {
                by_expiry.remove(&deadline);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expire_drops_exactly_the_due_entries() {
        let mut s = SuspectSet::default();
        s.arm(b"a".to_vec(), 100);
        s.arm(b"b".to_vec(), 200);
        s.arm(b"c".to_vec(), 200);
        assert_eq!(s.expire(99), 0);
        assert!(s.is_armed(b"a", 99));
        assert_eq!(s.expire(100), 1);
        assert!(!s.is_armed(b"a", 99));
        assert_eq!(s.expire(250), 2);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn rearm_moves_the_deadline() {
        let mut s = SuspectSet::default();
        s.arm(b"x".to_vec(), 100);
        s.arm(b"x".to_vec(), 300);
        assert_eq!(s.expire(200), 0, "old slot must not fire after re-arm");
        assert!(s.is_armed(b"x", 250));
        assert_eq!(s.expire(300), 1);
    }

    #[test]
    fn disarm_clears_both_indexes() {
        let mut s = SuspectSet::default();
        s.arm(b"x".to_vec(), 100);
        s.disarm(b"x");
        assert_eq!(s.len(), 0);
        assert_eq!(s.expire(1000), 0);
    }

    /// Coherence against the PR-4 full scan: drive both the index and a
    /// naive `retain`-swept map through the same pseudo-random schedule of
    /// arms, disarms and sweeps; they must agree on membership and on the
    /// expired count at every step.
    #[test]
    fn coherent_with_full_scan_model() {
        let mut s = SuspectSet::default();
        let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let step = |r: &mut u64| {
            *r = r
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*r >> 33) as u32
        };
        let mut now = 0u64;
        for _ in 0..4000 {
            let roll = step(&mut rng) % 100;
            let name = format!("p{}", step(&mut rng) % 24).into_bytes();
            if roll < 45 {
                let until = now + 1 + u64::from(step(&mut rng) % 50);
                s.arm(name.clone(), until);
                model.insert(name, until);
            } else if roll < 60 {
                s.disarm(&name);
                model.remove(&name);
            } else {
                now += u64::from(step(&mut rng) % 30);
                let before = model.len();
                model.retain(|_, &mut until| until > now);
                let model_expired = (before - model.len()) as u32;
                assert_eq!(s.expire(now), model_expired, "expired count at {now}");
            }
            assert_eq!(s.len(), model.len(), "membership size at {now}");
            for (n, &until) in &model {
                assert_eq!(s.is_armed(n, now), now < until, "{n:?} at {now}");
            }
        }
    }
}
