//! Plumbing shared by every CSNH server.

use bytes::Bytes;
use vkernel::{Ipc, Received};
use vnaming::check_forward_budget;
use vproto::{ContextId, Message, ObjectDescriptor, ReplyCode};

/// Replies with a bare failure (or success) code.
pub(crate) fn reply_code(ctx: &dyn Ipc, rx: Received, code: ReplyCode) {
    let _ = ctx.reply(rx, Message::reply(code), Bytes::new());
}

/// Replies with a name-interpretation failure, carrying the byte index at
/// which interpretation stopped (paper §7's error-reporting problem).
pub(crate) fn reply_fail(ctx: &dyn Ipc, rx: Received, fail: vnaming::FailReason) {
    let mut m = Message::reply(fail.code);
    m.set_word(
        vproto::fields::W_FAIL_INDEX,
        fail.index.min(u16::MAX as usize) as u16,
    );
    let _ = ctx.reply(rx, m, Bytes::new());
}

/// Replies `Ok` with a data payload.
pub(crate) fn reply_data(ctx: &dyn Ipc, rx: Received, msg: Message, data: Vec<u8>) {
    let _ = ctx.reply(rx, msg, Bytes::from(data));
}

/// Replies `Ok` with an encoded descriptor as the data.
pub(crate) fn reply_descriptor(ctx: &dyn Ipc, rx: Received, d: &ObjectDescriptor) {
    reply_data(ctx, rx, Message::ok(), d.encode());
}

/// Forwards a CSname request to the server implementing the next context,
/// per the mapping procedure of paper §5.4: context-id and name-index
/// fields updated, forward budget consumed.
///
/// The error distinguishes why a forward failed — `NoProcess` means the
/// target is permanently gone (the prefix server garbage-collects stale
/// direct entries on it), `Timeout` a transient fault-plane loss. In both
/// cases the blocked sender has already been failed by the kernel; the
/// result is advisory.
pub(crate) fn forward_csname(
    ctx: &dyn Ipc,
    rx: Received,
    target_server: vproto::Pid,
    target_ctx: ContextId,
    new_index: usize,
) -> Result<(), vkernel::IpcError> {
    let mut msg = rx.msg;
    if let Err(code) = check_forward_budget(&mut msg) {
        reply_code(ctx, rx, code);
        return Ok(());
    }
    msg.set_context_id(target_ctx);
    msg.set_name_index(new_index as u16);
    ctx.forward(rx, target_server, msg)
}

/// A simple logical clock for `modified` stamps: servers count operations.
/// (The simulated domain epoch; real time is irrelevant to the protocol.)
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct OpClock(u64);

impl OpClock {
    pub(crate) fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }
}
