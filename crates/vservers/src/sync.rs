//! The versioned prefix table behind anti-entropy reconciliation.
//!
//! Prefix servers are soft-state caches of naming information (paper §5.5),
//! so replicas drift: a partition or crash window hides the authority's
//! adds and deletes. [`SyncTable`] makes that drift *reconcilable* by
//! versioning every entry with a per-entry **epoch** stamped at the
//! authority and keeping deletes as **tombstones** instead of removals.
//! A replica then converges in one pull round: it sends the authority its
//! `(prefix, epoch, tombstone?)` [digest](SyncTable::digest), the authority
//! answers with the [delta](SyncTable::delta_for) of everything newer
//! (fresh tombstones included for prefixes it never defined), and the
//! replica [applies](SyncTable::apply) entries that out-rank its own —
//! after which the two tables hash identically ([`SyncTable::table_hash`]).
//!
//! Epoch stamps are `max(previous + 1, virtual-now-ns)`: monotonic within
//! one incarnation, and — because virtual time only moves forward — a
//! *restarted* authority's fresh stamps still out-rank everything it
//! handed out before the crash. Epoch 0 is reserved for preloaded,
//! never-verified replica entries, so any authoritative entry wins over a
//! preload.
//!
//! # Bounded tombstones: watermarks and the GC horizon
//!
//! Tombstones exist only to propagate deletes; once **every** replica has
//! adopted one, retaining it buys nothing. Following the death-certificate
//! discipline of Demers et al.'s epidemic algorithms, the table bounds
//! them:
//!
//! * each replica tracks a **synced watermark** ([`SyncTable::watermark`])
//!   — the highest authority epoch it has fully reconciled through, set
//!   only by a complete, successful authority round
//!   ([`SyncTable::note_synced`]), never by gossip;
//! * the authority records the watermark each replica reports in its
//!   digests ([`SyncTable::record_watermark`]) and computes the **GC
//!   horizon** = the minimum watermark across known replicas
//!   ([`SyncTable::horizon`]) — every tombstone at or below it is provably
//!   adopted everywhere;
//! * both sides drop tombstones at or below the horizon
//!   ([`SyncTable::gc_below`]); replicas learn the horizon from the
//!   authority's delta replies.
//!
//! The horizon is 0 (nothing collected) until every known replica has
//! completed at least one full round — a replica that has never reported
//! pins the horizon at 0 simply by being unknown.
//!
//! # The Merkle digest: round cost proportional to divergence
//!
//! A flat digest ships the whole `(prefix, epoch)` list every round, so a
//! steady-state round costs O(table) even when nothing diverged — a dead
//! end at millions of names. The table therefore maintains a **Merkle
//! tree** over its contents:
//!
//! * every entry hashes into one of [`MERKLE_LEAVES`] leaf buckets by the
//!   top bits of the FNV-1a hash of its prefix ([`SyncTable::bucket_of`])
//!   — a *deterministic* child ordering both sides compute independently;
//! * a leaf's hash folds its bucket's entries exactly as the old flat
//!   `table_hash` folded the whole table; an interior node's hash folds
//!   its [`MERKLE_FANOUT`] child hashes. Empty subtrees hash to 0 at
//!   every level, so a table that shrinks to nothing hashes like one that
//!   was never touched;
//! * node ids are **stable** (packed `level << 24 | index`,
//!   [`merkle_node_id`]) and dirtiness propagates upward lazily: editing
//!   one entry invalidates its leaf and that leaf's ancestors only —
//!   [`SyncTable::table_hash`] *is* the Merkle root.
//!
//! A reconciliation round is then a **walk** ([`MerkleWalk`]): starting at
//! the root, the puller probes the responder for child hashes of diverging
//! interior nodes ([`vproto::SyncProbeMsg`]) and descends only where the
//! hashes differ, bottoming out in per-bucket digests whose deltas the
//! responder computes with the same filter/minting/skew rules as the flat
//! path ([`SyncTable::delta_for_leaves`]). Equal subtrees are never
//! walked, so bandwidth and CPU scale with divergence, not table size.
//! The flat path ([`SyncTable::delta_for`]) is retained as the
//! differential-testing oracle: a Merkle round and a flat round must leave
//! byte-identical tables (see `tests/anti_entropy_props.rs`).

use vproto::{
    SyncBinding, SyncDigestEntry, SyncDigestMsg, SyncEntry, SyncLeafDigest, SyncNodeRec,
    SyncProbeMsg, SyncProbeReply,
};

use std::collections::{BTreeMap, BTreeSet};

/// FNV-1a offset basis / prime (64-bit) — the same constants the
/// virtual-time kernel uses for its event hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How far beyond virtual-now a digest epoch may claim to be before the
/// authority rejects it as corrupt or hostile (60 virtual seconds).
///
/// Honest epochs are stamped at `max(prev + 1, now_ns)` on the authority
/// itself, so a remote epoch materially ahead of the authority's own clock
/// cannot have come from any legitimate stamp. Without this bound a single
/// poisoned digest entry would be written into `next_epoch` and inflate
/// every stamp the authority hands out for the rest of its life.
pub const MAX_EPOCH_SKEW_NS: u64 = 60_000_000_000;

/// Merkle tree fan-out: each interior node has this many children, and
/// each level of the walk consumes four bits of the prefix hash.
pub const MERKLE_FANOUT: u32 = 16;

/// Leaf depth: the root is level 0, leaves are level `MERKLE_LEVELS`.
/// A complete walk is at most `MERKLE_LEVELS + 1` probe round-trips.
pub const MERKLE_LEVELS: u32 = 5;

/// Number of leaf buckets (`MERKLE_FANOUT ^ MERKLE_LEVELS`). Chosen so a
/// million-name table still averages ~1 entry per bucket: the leaf digests
/// a diverging walk bottoms out in stay O(divergence).
pub const MERKLE_LEAVES: u32 = MERKLE_FANOUT.pow(MERKLE_LEVELS);

/// The packed node id of the Merkle root (level 0, index 0).
pub const MERKLE_ROOT: u32 = 0;

/// Number of table shards. Equal to [`MERKLE_FANOUT`] on purpose: shard
/// `s` covers exactly the leaf buckets under the root's child `s`, so a
/// shard boundary *is* a Merkle subtree boundary — the per-shard snapshot
/// a publish rebuilds and the subtree a sync walk descends never straddle
/// each other.
pub const SHARD_COUNT: usize = MERKLE_FANOUT as usize;

/// Bits to drop from a leaf-bucket index to get its shard: every level
/// below the root contributes four bits.
const SHARD_SHIFT: u32 = 4 * (MERKLE_LEVELS - 1);

/// The shard a leaf bucket belongs to (its top four index bits — the
/// root-child subtree it lives under).
pub const fn shard_of_bucket(bucket: u32) -> usize {
    (bucket >> SHARD_SHIFT) as usize
}

/// Packs a `(level, index)` pair into a stable 32-bit Merkle node id:
/// `level` in the top byte, `index` in the low 24 bits. Both replicas
/// derive the same id for the same subtree with no negotiation.
pub const fn merkle_node_id(level: u32, index: u32) -> u32 {
    (level << 24) | (index & 0x00FF_FFFF)
}

/// The tree level encoded in a packed node id (0 = root).
pub const fn merkle_level(node: u32) -> u32 {
    node >> 24
}

/// The within-level index encoded in a packed node id.
pub const fn merkle_index(node: u32) -> u32 {
    node & 0x00FF_FFFF
}

/// The packed id of child `k` of interior node `node`.
pub const fn merkle_child(node: u32, k: u32) -> u32 {
    merkle_node_id(
        merkle_level(node) + 1,
        merkle_index(node) * MERKLE_FANOUT + k,
    )
}

/// `true` if the packed id names a leaf bucket.
pub const fn merkle_is_leaf(node: u32) -> bool {
    merkle_level(node) == MERKLE_LEVELS
}

/// `true` if the packed id names a node that exists in the tree shape
/// (level in range, index within that level's width). Hostile ids fail
/// here and are ignored rather than walked.
pub const fn merkle_node_valid(node: u32) -> bool {
    let level = merkle_level(node);
    level <= MERKLE_LEVELS && merkle_index(node) < MERKLE_FANOUT.pow(level)
}

/// One versioned prefix-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedEntry {
    /// The binding, or `None` for a tombstone (deleted at `epoch`).
    pub binding: Option<SyncBinding>,
    /// The entry's version: 0 for a preload, otherwise an authority stamp.
    pub epoch: u64,
    /// `true` once the entry is first-hand (defined here) or vouched for
    /// by the authority in a sync round. Unverified entries answer
    /// binding queries with the staleness flag set.
    pub verified: bool,
}

/// What [`SyncTable::tombstone`] found when asked to delete a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TombstoneOutcome {
    /// A live entry existed and was tombstoned.
    DroppedLive,
    /// The prefix was already a tombstone; it was re-stamped (the delete
    /// still needs to out-rank whatever replicas hold).
    AlreadyDead,
    /// The prefix was never defined here: the delete is a no-op, the
    /// table is untouched. Stamping a tombstone for a name nobody ever
    /// bound would grow the table forever under delete-of-unknown churn.
    Unknown,
}

/// What one [`SyncTable::apply`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Delta entries adopted (they out-ranked the local version).
    pub adopted: u32,
    /// Live local entries dropped by an adopted tombstone.
    pub dropped_live: u32,
    /// Entries that went unverified → verified.
    pub promoted: u32,
}

/// The incrementally maintained Merkle tree over a [`SyncTable`].
///
/// Only nonzero hashes are stored: an absent leaf or interior node *is*
/// the empty-subtree hash 0, which keeps an emptied table bit-identical
/// to a never-touched one. Mutations mark the touched leaf dirty; hashes
/// are recomputed lazily, ancestors-of-dirty-leaves only, on the next
/// read ([`SyncTable::merkle_flush`] via `table_hash`/`merkle_children`).
#[derive(Debug, Clone, Default)]
struct MerkleIndex {
    /// Leaf bucket → the prefixes currently hashing into it (live and
    /// tombstoned alike). Sets are pruned when their last member is
    /// removed, so iteration cost tracks table content.
    members: BTreeMap<u32, BTreeSet<Vec<u8>>>,
    /// Leaf bucket → its current hash (nonzero entries only).
    leaf: BTreeMap<u32, u64>,
    /// Packed interior node id → its current hash (nonzero entries only).
    node: BTreeMap<u32, u64>,
    /// Leaf buckets whose entries changed since the last flush.
    dirty: BTreeSet<u32>,
}

/// A versioned, tombstone-retaining prefix table.
#[derive(Debug, Clone, Default)]
pub struct SyncTable {
    entries: BTreeMap<Vec<u8>, VersionedEntry>,
    next_epoch: u64,
    /// Replica side: the highest authority epoch fully reconciled through.
    synced: u64,
    /// The highest GC horizon this table has collected at.
    gc_horizon: u64,
    /// Authority side: per-replica synced watermarks, keyed by the
    /// replica's raw pid, learned from the digests replicas send.
    watermarks: BTreeMap<u32, u64>,
    /// The Merkle tree over `entries`, maintained on every mutation.
    merkle: MerkleIndex,
    /// Tombstone epoch → the names dead at that epoch. Keeps
    /// [`SyncTable::gc_below`] proportional to what it collects — the
    /// Merkle walk GCs on every probe, so an O(table) scan there would
    /// silently re-introduce the table-bound cost the walk exists to
    /// avoid.
    tombs: BTreeMap<u64, BTreeSet<Vec<u8>>>,
    /// Names whose entry is currently unverified, so a vouching round
    /// promotes in O(promoted) instead of rescanning the table.
    unverified: BTreeSet<Vec<u8>>,
    /// Bitmask of shards whose *published view* is out of date: set by
    /// every content mutation and by verified-bit promotions (which the
    /// Merkle dirty set deliberately ignores — `verified` is not hashed,
    /// but a resolver snapshot serves it as the staleness flag). Drained
    /// by [`SyncTable::take_dirty_shards`] at publish time.
    shard_dirty: u16,
}

/// Folds one table entry into an FNV-1a accumulator — the per-entry
/// encoding both the Merkle leaf hashes and (transitively) the table root
/// commit to: name length + name + epoch + tombstone/binding fields. The
/// `verified` bit is local bookkeeping and excluded.
fn fold_entry(h: &mut u64, name: &[u8], e: &VersionedEntry) {
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(FNV_PRIME);
        }
    };
    fold(&(name.len() as u64).to_le_bytes());
    fold(name);
    fold(&e.epoch.to_le_bytes());
    match &e.binding {
        None => fold(&[1]),
        Some(b) => {
            fold(&[0, u8::from(b.logical)]);
            fold(&b.target.to_le_bytes());
            fold(&b.context.to_le_bytes());
        }
    }
}

/// Combines child hashes into an interior-node hash. All-empty children
/// combine to the empty hash 0 (the sentinel that makes empty subtrees
/// indistinguishable from never-populated ones); otherwise an FNV-1a fold
/// of the child hashes in child order.
fn combine_children(children: &[u64; MERKLE_FANOUT as usize]) -> u64 {
    if children.iter().all(|&c| c == 0) {
        return 0;
    }
    let mut h = FNV_OFFSET;
    for c in children {
        for b in c.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

impl SyncTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps and returns a fresh epoch: monotonic, never 0, and at least
    /// the current virtual time so post-restart stamps out-rank pre-crash
    /// ones.
    fn stamp(&mut self, now_ns: u64) -> u64 {
        self.next_epoch = (self.next_epoch + 1).max(now_ns).max(1);
        self.next_epoch
    }

    /// The leaf bucket a prefix hashes into: the top bits of its FNV-1a
    /// hash, so both sides of a sync round bucket identically with no
    /// negotiation, and buckets stay balanced under any naming scheme.
    pub fn bucket_of(prefix: &[u8]) -> u32 {
        let mut h = FNV_OFFSET;
        for &b in prefix {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // 16^MERKLE_LEVELS buckets ⇒ 4·MERKLE_LEVELS index bits.
        (h >> (64 - 4 * MERKLE_LEVELS)) as u32
    }

    /// The shard a prefix belongs to: the top four bits of its leaf
    /// bucket, i.e. the Merkle root-child subtree it hashes under.
    pub fn shard_of(prefix: &[u8]) -> usize {
        shard_of_bucket(Self::bucket_of(prefix))
    }

    /// Returns and clears the dirty-shard bitmask (bit `s` ⇒ shard `s`
    /// changed since the last call). The publish path uses this to rebuild
    /// only the shards a batch of mutations actually touched.
    pub fn take_dirty_shards(&mut self) -> u16 {
        std::mem::take(&mut self.shard_dirty)
    }

    /// Live `(prefix, binding, verified)` entries of one shard, in name
    /// order within each leaf bucket. Walks the Merkle member index over
    /// the shard's bucket range, so the cost tracks the shard's content
    /// rather than the whole table.
    pub fn shard_live_iter(
        &self,
        shard: usize,
    ) -> impl Iterator<Item = (&[u8], &SyncBinding, bool)> {
        let lo = (shard as u32) << SHARD_SHIFT;
        let hi = ((shard as u32) + 1) << SHARD_SHIFT;
        self.merkle
            .members
            .range(lo..hi)
            .flat_map(|(_, names)| names.iter())
            .filter_map(|name| {
                let e = self.entries.get(name)?;
                e.binding.as_ref().map(|b| (name.as_slice(), b, e.verified))
            })
    }

    /// The sixteen root-child hashes — one per shard, since shard and
    /// subtree boundaries coincide. Two tables agree on shard `s` iff
    /// `shard_roots()[s]` matches.
    pub fn shard_roots(&mut self) -> [u64; SHARD_COUNT] {
        self.merkle_flush();
        self.children_of(0, 0)
    }

    /// Inserts (or overwrites) an entry, keeping the Merkle member index
    /// coherent and marking the touched leaf dirty. *Every* content
    /// mutation funnels through here (or the removal path in
    /// [`SyncTable::gc_below`]) — that discipline is what makes a
    /// single-entry edit invalidate its leaf's ancestors only.
    fn put(&mut self, prefix: Vec<u8>, entry: VersionedEntry) {
        let bucket = Self::bucket_of(&prefix);
        self.merkle.dirty.insert(bucket);
        self.shard_dirty |= 1 << shard_of_bucket(bucket);
        self.merkle
            .members
            .entry(bucket)
            .or_default()
            .insert(prefix.clone());
        if entry.verified {
            self.unverified.remove(&prefix);
        } else {
            self.unverified.insert(prefix.clone());
        }
        let (dead, epoch) = (entry.binding.is_none(), entry.epoch);
        if let Some(old) = self.entries.insert(prefix.clone(), entry) {
            if old.binding.is_none() {
                Self::untomb(&mut self.tombs, old.epoch, &prefix);
            }
        }
        if dead {
            self.tombs.entry(epoch).or_default().insert(prefix);
        }
    }

    /// Drops `name` from the tombstone index slot at `epoch`, pruning the
    /// slot when it empties.
    fn untomb(tombs: &mut BTreeMap<u64, BTreeSet<Vec<u8>>>, epoch: u64, name: &[u8]) {
        if let Some(set) = tombs.get_mut(&epoch) {
            set.remove(name);
            if set.is_empty() {
                tombs.remove(&epoch);
            }
        }
    }

    /// Defines (or redefines) a prefix first-hand: stamped and verified.
    pub fn define(&mut self, prefix: Vec<u8>, binding: SyncBinding, now_ns: u64) {
        let epoch = self.stamp(now_ns);
        self.put(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch,
                verified: true,
            },
        );
    }

    /// Preloads a prefix at epoch 0, unverified — a replica's boot-time
    /// copy, out-ranked by any authoritative stamp.
    pub fn preload(&mut self, prefix: Vec<u8>, binding: SyncBinding) {
        self.put(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch: 0,
                verified: false,
            },
        );
    }

    /// Deletes a prefix by writing a freshly stamped tombstone — but only
    /// if the table has ever heard of it. Deleting an unknown name is a
    /// no-op ([`TombstoneOutcome::Unknown`]): there is no binding to
    /// propagate a delete for, and stamping one anyway would let a stream
    /// of bogus deletes grow the table without bound. Known names (live
    /// or already dead) are (re-)stamped so the delete out-ranks every
    /// replica's copy.
    pub fn tombstone(&mut self, prefix: &[u8], now_ns: u64) -> TombstoneOutcome {
        let outcome = match self.entries.get(prefix) {
            None => return TombstoneOutcome::Unknown,
            Some(e) if e.binding.is_some() => TombstoneOutcome::DroppedLive,
            Some(_) => TombstoneOutcome::AlreadyDead,
        };
        let epoch = self.stamp(now_ns);
        self.put(
            prefix.to_vec(),
            VersionedEntry {
                binding: None,
                epoch,
                verified: true,
            },
        );
        outcome
    }

    /// Looks up a live binding (tombstones answer `None`).
    pub fn lookup(&self, prefix: &[u8]) -> Option<&VersionedEntry> {
        self.entries.get(prefix).filter(|e| e.binding.is_some())
    }

    /// Iterates live `(prefix, binding, verified)` entries in name order.
    pub fn live_iter(&self) -> impl Iterator<Item = (&[u8], &SyncBinding, bool)> {
        self.entries
            .iter()
            .filter_map(|(name, e)| e.binding.as_ref().map(|b| (name.as_slice(), b, e.verified)))
    }

    /// Marks every entry verified — used when the authority has just
    /// vouched for the whole table (a successful sync round). Walks the
    /// unverified index, not the table, so a steady-state round (nothing
    /// to promote) costs nothing.
    pub fn mark_all_verified(&mut self) -> u32 {
        let names = std::mem::take(&mut self.unverified);
        let mut promoted = 0;
        for name in names {
            if let Some(e) = self.entries.get_mut(&name) {
                e.verified = true;
                promoted += 1;
                // Not a content change (the Merkle tree excludes the
                // verified bit), but published snapshots serve it as the
                // staleness flag, so the shard must re-publish.
                self.shard_dirty |= 1 << Self::shard_of(&name);
            }
        }
        promoted
    }

    /// The number of live entries.
    pub fn live_len(&self) -> usize {
        self.entries.len() - self.tombstone_len()
    }

    /// The number of retained tombstones.
    pub fn tombstone_len(&self) -> usize {
        self.tombs.values().map(BTreeSet::len).sum()
    }

    /// The highest epoch stamped or adopted so far. O(1): every write
    /// path keeps `next_epoch` at least as high as every entry's epoch
    /// (stamps set it, adoption and minting max into it, preloads are
    /// epoch 0), and the walk reads this on every probe.
    pub fn max_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Replica side: the synced watermark — the highest authority epoch
    /// this table has fully reconciled through. 0 until the first
    /// complete, successful authority round. Gossip never moves it.
    pub fn watermark(&self) -> u64 {
        self.synced
    }

    /// Replica side: records a complete, successful authority round
    /// through `epoch` (the authority's table epoch from the delta
    /// header). Monotone.
    pub fn note_synced(&mut self, epoch: u64) {
        self.synced = self.synced.max(epoch);
    }

    /// Authority side: records the synced watermark a replica reported in
    /// its digest. Monotone per replica — a delayed digest cannot pull a
    /// watermark (and hence the horizon) backwards.
    pub fn record_watermark(&mut self, replica: u32, watermark: u64) {
        let slot = self.watermarks.entry(replica).or_insert(0);
        *slot = (*slot).max(watermark);
    }

    /// Authority side: the tombstone-GC horizon — the minimum synced
    /// watermark across every replica that has ever reported one. Every
    /// tombstone at or below it is provably adopted everywhere, so it is
    /// safe to drop. 0 (collect nothing) while no replica has reported.
    pub fn horizon(&self) -> u64 {
        self.watermarks.values().copied().min().unwrap_or(0)
    }

    /// The highest GC horizon this table has collected at.
    pub fn gc_horizon(&self) -> u64 {
        self.gc_horizon
    }

    /// Drops every tombstone stamped at or below `horizon`, returning how
    /// many were collected. Safe exactly when `horizon` is a true GC
    /// horizon (every replica's watermark has passed it): the delete is
    /// already adopted everywhere, so nothing can resurrect it. A horizon
    /// of 0 (or one below a previous GC) collects nothing.
    pub fn gc_below(&mut self, horizon: u64) -> u32 {
        self.gc_horizon = self.gc_horizon.max(horizon);
        if horizon == 0 {
            return 0;
        }
        // The tombstone index hands over exactly the doomed epochs —
        // O(collected), not O(table), which matters because the Merkle
        // walk runs this on every probe. Epoch 0 (preloads) never enters
        // the range.
        let doomed: Vec<u64> = self.tombs.range(1..=horizon).map(|(&e, _)| e).collect();
        let mut dropped = 0u32;
        for epoch in doomed {
            for name in self.tombs.remove(&epoch).unwrap_or_default() {
                self.entries.remove(&name);
                self.unverified.remove(&name);
                let bucket = Self::bucket_of(&name);
                self.merkle.dirty.insert(bucket);
                self.shard_dirty |= 1 << shard_of_bucket(bucket);
                if let Some(set) = self.merkle.members.get_mut(&bucket) {
                    set.remove(&name);
                    if set.is_empty() {
                        self.merkle.members.remove(&bucket);
                    }
                }
                dropped += 1;
            }
        }
        dropped
    }

    /// The `(prefix, epoch, tombstone?)` digest of the whole table — the
    /// `SyncDigest` request payload.
    pub fn digest(&self) -> Vec<SyncDigestEntry> {
        self.entries
            .iter()
            .map(|(name, e)| SyncDigestEntry {
                prefix: name.clone(),
                epoch: e.epoch,
                tombstone: e.binding.is_none(),
            })
            .collect()
    }

    /// Computes the delta that brings the sender of `digest` up to date:
    /// every local entry the digest is missing or holds at an older epoch.
    /// Non-authoritative responders (gossip peers) never send epoch-0
    /// entries — preloads are hearsay, and gossiping one after the
    /// authority GC'd its tombstone would resurrect a delete.
    ///
    /// When `authoritative`, prefixes the digest knows but this table does
    /// not are answered with a *freshly stamped tombstone* (epoch at least
    /// `digest_epoch + 1`, so it out-ranks the replica's copy), which both
    /// sides then retain — that is what makes the two tables converge to
    /// bytewise-identical contents rather than merely compatible ones.
    /// Two exceptions:
    ///
    /// * a digest entry that is already a **tombstone** at or below the GC
    ///   horizon is one this authority collected — skipped; the replica
    ///   drops its copy when it sees the horizon in the delta header;
    /// * a digest epoch more than [`MAX_EPOCH_SKEW_NS`] beyond `now_ns`
    ///   cannot have come from a legitimate stamp — the entry is rejected
    ///   outright rather than allowed to poison the epoch clock.
    pub fn delta_for(
        &mut self,
        digest: &[SyncDigestEntry],
        authoritative: bool,
        now_ns: u64,
    ) -> Vec<SyncEntry> {
        self.delta_scoped(digest, None, authoritative, now_ns)
    }

    /// The Merkle-walk variant of [`SyncTable::delta_for`]: computes the
    /// delta for the leaf buckets a probe diffed. `leaves` carries the
    /// puller's per-bucket digests; only entries hashing into those
    /// buckets are considered on either side. Invalid or non-leaf node
    /// ids (hostile or stale senders) are ignored.
    ///
    /// Because equal-hash buckets hold identical content, restricting the
    /// filter/minting rules of `delta_for` to the diverging buckets
    /// produces *the same delta* a whole-table digest would — the
    /// equivalence the differential proptests pin.
    pub fn delta_for_leaves(
        &mut self,
        leaves: &[SyncLeafDigest],
        authoritative: bool,
        now_ns: u64,
    ) -> Vec<SyncEntry> {
        let mut scope = BTreeSet::new();
        let mut digest = Vec::new();
        for leaf in leaves {
            if !merkle_node_valid(leaf.node) || !merkle_is_leaf(leaf.node) {
                continue;
            }
            scope.insert(merkle_index(leaf.node));
            digest.extend(leaf.entries.iter().cloned());
        }
        self.delta_scoped(&digest, Some(&scope), authoritative, now_ns)
    }

    /// Shared core of the flat and Merkle delta paths. `scope` restricts
    /// both sides to the given leaf buckets (`None` = whole table): local
    /// candidates come from the Merkle member index instead of a full
    /// table scan, and digest entries outside the scope are disregarded.
    /// Filter, tombstone-minting, GC-horizon and epoch-skew rules are
    /// identical in both modes; minting processes unknown prefixes in
    /// prefix order so the two paths stamp identical epochs.
    fn delta_scoped(
        &mut self,
        digest: &[SyncDigestEntry],
        scope: Option<&BTreeSet<u32>>,
        authoritative: bool,
        now_ns: u64,
    ) -> Vec<SyncEntry> {
        let in_scope =
            |prefix: &[u8]| scope.is_none_or(|buckets| buckets.contains(&Self::bucket_of(prefix)));
        let remote: BTreeMap<&[u8], u64> = digest
            .iter()
            .filter(|d| in_scope(&d.prefix))
            .map(|d| (d.prefix.as_slice(), d.epoch))
            .collect();
        let newer = |name: &[u8], e: &VersionedEntry| {
            (authoritative || e.epoch > 0)
                && match remote.get(name) {
                    Some(&remote_epoch) => e.epoch > remote_epoch,
                    None => true,
                }
        };
        let to_entry = |name: &[u8], e: &VersionedEntry| SyncEntry {
            prefix: name.to_vec(),
            epoch: e.epoch,
            binding: e.binding,
        };
        let mut out: Vec<SyncEntry> = match scope {
            None => self
                .entries
                .iter()
                .filter(|(name, e)| newer(name.as_slice(), e))
                .map(|(name, e)| to_entry(name.as_slice(), e))
                .collect(),
            Some(buckets) => {
                let mut v = Vec::new();
                for bucket in buckets {
                    let Some(members) = self.merkle.members.get(bucket) else {
                        continue;
                    };
                    for name in members {
                        let Some(e) = self.entries.get(name) else {
                            continue;
                        };
                        if newer(name.as_slice(), e) {
                            v.push(to_entry(name.as_slice(), e));
                        }
                    }
                }
                v
            }
        };
        if authoritative {
            let max_credible = now_ns.saturating_add(MAX_EPOCH_SKEW_NS);
            let mut unknown: Vec<(Vec<u8>, u64)> = digest
                .iter()
                .filter(|d| {
                    in_scope(&d.prefix)
                        && !self.entries.contains_key(&d.prefix)
                        && d.epoch <= max_credible
                        && !(d.tombstone && d.epoch <= self.gc_horizon)
                })
                .map(|d| (d.prefix.clone(), d.epoch))
                .collect();
            // Prefix order, so the flat path (sorted whole-table digest)
            // and the Merkle path (bucket-ordered leaf digests) stamp the
            // same epochs for the same unknowns.
            unknown.sort_by(|a, b| a.0.cmp(&b.0));
            for (prefix, remote_epoch) in unknown {
                let epoch = self.stamp(now_ns).max(remote_epoch.saturating_add(1));
                self.next_epoch = epoch;
                self.put(
                    prefix.clone(),
                    VersionedEntry {
                        binding: None,
                        epoch,
                        verified: true,
                    },
                );
                out.push(SyncEntry {
                    prefix,
                    epoch,
                    binding: None,
                });
            }
        }
        out.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        out
    }

    /// Applies a delta: each entry that out-ranks (strictly newer epoch
    /// than) the local version is adopted. Equal or older epochs change
    /// nothing — epochs never regress.
    ///
    /// `verified` says who vouched for the delta: `true` for the
    /// configured authority (entries become first-class), `false` for a
    /// gossip peer (entries stay *Suspect* — served with the staleness
    /// flag — until an authority round vouches for them).
    pub fn apply(&mut self, delta: &[SyncEntry], verified: bool) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for d in delta {
            // Epoch 0 is reserved for local preloads; no stamp ever
            // produces it, so an epoch-0 delta entry is hearsay and never
            // adopted. A gossip entry at or below the GC horizon is stale
            // by definition — this table has synced through the horizon,
            // so anything at those epochs it does not hold was tombstoned
            // (and possibly collected); adopting it would resurrect a
            // delete through a peer that never synced.
            if d.epoch == 0 || (!verified && d.epoch <= self.gc_horizon) {
                continue;
            }
            let local = self.entries.get(&d.prefix);
            let local_epoch = local.map(|e| e.epoch);
            if local_epoch.is_some_and(|le| le >= d.epoch) {
                continue;
            }
            let was_unverified = local.is_some_and(|e| !e.verified);
            let was_live = local.is_some_and(|e| e.binding.is_some());
            if was_live && d.binding.is_none() {
                outcome.dropped_live += 1;
            }
            if was_unverified && verified {
                outcome.promoted += 1;
            }
            self.put(
                d.prefix.clone(),
                VersionedEntry {
                    binding: d.binding,
                    epoch: d.epoch,
                    verified,
                },
            );
            self.next_epoch = self.next_epoch.max(d.epoch);
            outcome.adopted += 1;
        }
        outcome
    }

    /// A content-complete hash of the table: prefixes, epochs, tombstone
    /// flags, and binding fields (the `verified` bit is local bookkeeping
    /// and excluded). Two tables hash equal iff their reconcilable
    /// contents are identical — the witness EXP-13 and EXP-14 use for
    /// "bytewise identical within one round". Since the Merkle rebuild
    /// this *is* the tree root ([`SyncTable::merkle_root`]); `&mut self`
    /// because dirty leaves flush lazily on read.
    pub fn table_hash(&mut self) -> u64 {
        self.merkle_root()
    }

    /// Recomputes the hashes of dirty leaves and exactly their ancestors,
    /// level by level up to the root. A single-entry edit re-hashes one
    /// leaf and [`MERKLE_LEVELS`] interior nodes; untouched subtrees are
    /// never revisited.
    fn merkle_flush(&mut self) {
        if self.merkle.dirty.is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.merkle.dirty);
        let mut parents = BTreeSet::new();
        for bucket in dirty {
            let h = match self.merkle.members.get(&bucket) {
                None => 0,
                Some(members) => {
                    let mut h = FNV_OFFSET;
                    let mut any = false;
                    for name in members {
                        if let Some(e) = self.entries.get(name) {
                            fold_entry(&mut h, name, e);
                            any = true;
                        }
                    }
                    if any {
                        h
                    } else {
                        0
                    }
                }
            };
            if h == 0 {
                self.merkle.leaf.remove(&bucket);
            } else {
                self.merkle.leaf.insert(bucket, h);
            }
            parents.insert(bucket / MERKLE_FANOUT);
        }
        // Walk the dirty ancestors upward: level MERKLE_LEVELS-1 … 0.
        for level in (0..MERKLE_LEVELS).rev() {
            let mut next = BTreeSet::new();
            for index in parents {
                let children = self.children_of(level, index);
                let id = merkle_node_id(level, index);
                match combine_children(&children) {
                    0 => {
                        self.merkle.node.remove(&id);
                    }
                    h => {
                        self.merkle.node.insert(id, h);
                    }
                }
                if level > 0 {
                    next.insert(index / MERKLE_FANOUT);
                }
            }
            parents = next;
        }
    }

    /// The child hashes of interior node `(level, index)`, read from the
    /// flushed caches (0 = empty subtree).
    fn children_of(&self, level: u32, index: u32) -> [u64; MERKLE_FANOUT as usize] {
        let mut children = [0u64; MERKLE_FANOUT as usize];
        for (k, slot) in children.iter_mut().enumerate() {
            let child_index = index * MERKLE_FANOUT + k as u32;
            *slot = if level + 1 == MERKLE_LEVELS {
                self.merkle.leaf.get(&child_index).copied().unwrap_or(0)
            } else {
                self.merkle
                    .node
                    .get(&merkle_node_id(level + 1, child_index))
                    .copied()
                    .unwrap_or(0)
            };
        }
        children
    }

    /// The Merkle root over the whole table (0 for an empty table).
    pub fn merkle_root(&mut self) -> u64 {
        self.merkle_flush();
        self.merkle.node.get(&MERKLE_ROOT).copied().unwrap_or(0)
    }

    /// The child hashes of an interior node, or `None` if the id is not a
    /// valid interior node of the tree shape.
    pub fn merkle_children(&mut self, node: u32) -> Option<[u64; MERKLE_FANOUT as usize]> {
        if !merkle_node_valid(node) || merkle_is_leaf(node) {
            return None;
        }
        self.merkle_flush();
        Some(self.children_of(merkle_level(node), merkle_index(node)))
    }

    /// The `(prefix, epoch, tombstone?)` digest of one leaf bucket — the
    /// per-bucket restriction of [`SyncTable::digest`], in prefix order.
    /// Empty (and for invalid ids) when nothing hashes into the bucket.
    pub fn leaf_digest(&self, node: u32) -> Vec<SyncDigestEntry> {
        if !merkle_node_valid(node) || !merkle_is_leaf(node) {
            return Vec::new();
        }
        let Some(members) = self.merkle.members.get(&merkle_index(node)) else {
            return Vec::new();
        };
        members
            .iter()
            .filter_map(|name| {
                self.entries.get(name).map(|e| SyncDigestEntry {
                    prefix: name.clone(),
                    epoch: e.epoch,
                    tombstone: e.binding.is_none(),
                })
            })
            .collect()
    }

    /// Answers one Merkle probe — the responder half of a walk step.
    ///
    /// When `authoritative`, the responder first records the puller's
    /// watermark (if `from_replica` identifies it) and collects tombstones
    /// behind the resulting horizon, exactly as the flat `SyncDigest`
    /// handler does. Both operations are monotone and idempotent, so
    /// repeating them on every probe of a multi-probe round leaves the
    /// same state one flat round would. The reply's returned alongside the
    /// number of tombstones GC'd (for the server's counters).
    pub fn answer_probe(
        &mut self,
        probe: &SyncProbeMsg,
        authoritative: bool,
        from_replica: Option<u32>,
        now_ns: u64,
    ) -> (SyncProbeReply, u32) {
        let mut gc_dropped = 0;
        if authoritative {
            if let Some(replica) = from_replica {
                self.record_watermark(replica, probe.watermark);
            }
            let horizon = self.horizon();
            gc_dropped = self.gc_below(horizon);
        }
        let entries = if probe.leaves.is_empty() {
            Vec::new()
        } else {
            self.delta_for_leaves(&probe.leaves, authoritative, now_ns)
        };
        let nodes = probe
            .nodes
            .iter()
            .filter_map(|&id| {
                self.merkle_children(id).map(|children| SyncNodeRec {
                    node: id,
                    children: children.to_vec(),
                })
            })
            .collect();
        let reply = SyncProbeReply {
            epoch: self.max_epoch(),
            horizon: if authoritative { self.gc_horizon() } else { 0 },
            root: self.merkle_root(),
            nodes,
            entries,
        };
        (reply, gc_dropped)
    }
}

/// The puller half of a Merkle reconciliation round: a frontier of
/// diverging node ids, narrowed one probe at a time.
///
/// The walk touches the puller's table **read-only** until
/// [`MerkleWalk::finish`]; the accumulated delta is applied in one shot
/// only after the last probe answers, so a round that dies mid-walk
/// leaves the puller bit-identical to before (same atomicity contract as
/// the flat digest → delta round).
#[derive(Debug, Clone, Default)]
pub struct MerkleWalk {
    /// Node ids whose hashes disagreed at the previous level (starts at
    /// the root; every element is one level deeper each step).
    frontier: Vec<u32>,
    /// Delta entries accumulated from leaf probes.
    delta: Vec<SyncEntry>,
    /// Epoch/horizon headers from the most recent reply — the puller
    /// honours the last one, which the responder computed after any
    /// tombstone minting (the flat path's post-mint `delta.epoch`).
    epoch: u64,
    horizon: u64,
    /// Probes absorbed so far.
    probes: u32,
}

impl MerkleWalk {
    /// A fresh walk, frontier at the root.
    pub fn start() -> Self {
        MerkleWalk {
            frontier: vec![MERKLE_ROOT],
            ..MerkleWalk::default()
        }
    }

    /// The next probe to send, or `None` when the walk is complete. Leaf
    /// ids on the frontier turn into leaf digests, interior ids into
    /// expansion requests.
    pub fn next_probe(&self, table: &SyncTable) -> Option<SyncProbeMsg> {
        if self.frontier.is_empty() {
            return None;
        }
        let mut nodes = Vec::new();
        let mut leaves = Vec::new();
        for &id in &self.frontier {
            if merkle_is_leaf(id) {
                leaves.push(SyncLeafDigest {
                    node: id,
                    entries: table.leaf_digest(id),
                });
            } else {
                nodes.push(id);
            }
        }
        Some(SyncProbeMsg {
            watermark: table.watermark(),
            nodes,
            leaves,
        })
    }

    /// Absorbs a probe reply: descends into children whose hashes differ
    /// from the puller's own, and accumulates delta entries. Node records
    /// the probe never asked for are ignored (a hostile responder cannot
    /// keep the walk alive forever: honoured records descend one level per
    /// probe, so a walk is bounded by the tree depth).
    pub fn absorb(&mut self, table: &mut SyncTable, reply: &SyncProbeReply) {
        self.probes += 1;
        self.epoch = reply.epoch;
        self.horizon = reply.horizon;
        let mut next = Vec::new();
        for rec in &reply.nodes {
            if !self.frontier.contains(&rec.node) {
                continue;
            }
            let Some(local) = table.merkle_children(rec.node) else {
                continue;
            };
            for (k, &remote_hash) in rec.children.iter().take(local.len()).enumerate() {
                if remote_hash != local[k] {
                    next.push(merkle_child(rec.node, k as u32));
                }
            }
        }
        self.delta.extend(reply.entries.iter().cloned());
        self.frontier = next;
    }

    /// `true` once the frontier is exhausted (every divergence resolved).
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Consumes the walk: the accumulated delta plus the epoch/horizon
    /// header of the final reply, and the probe count.
    pub fn finish(self) -> (Vec<SyncEntry>, u64, u64, u32) {
        (self.delta, self.epoch, self.horizon, self.probes)
    }
}

/// Who is pulling in a transport-free reconciliation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundKind {
    /// A replica pulling from its authority: the responder records the
    /// watermark, GCs, and mints; the puller applies verified, moves its
    /// watermark, collects on the advertised horizon, and promotes.
    Authority {
        /// The puller's raw pid as the authority tracks watermarks.
        replica_id: u32,
    },
    /// Replica↔replica gossip: no minting, no watermark movement, no GC
    /// instruction; adopted entries stay Suspect.
    Gossip,
}

/// Failure injection for a transport-free round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundFate {
    /// Lose the n-th probe request in flight (0-based): the responder has
    /// processed exactly n probes when the round dies, the puller applies
    /// nothing. `Some(0)` models the flat path's "digest lost" fate.
    /// `None` delivers every request.
    pub drop_request_at: Option<u32>,
    /// Deliver every request but lose the final reply: responder side
    /// effects complete (as in the flat "reply lost" fate — the authority
    /// processed the digest), the puller still applies nothing.
    pub lose_final_reply: bool,
}

impl RoundFate {
    /// Everything arrives.
    pub const DELIVERED: RoundFate = RoundFate {
        drop_request_at: None,
        lose_final_reply: false,
    };
}

/// Wire-cost accounting for one transport-free round — what the table-size
/// sweep in EXP-13 measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Probe (or digest) request/reply exchanges.
    pub probes: u32,
    /// Encoded request payload bytes.
    pub request_bytes: u64,
    /// Encoded reply payload bytes.
    pub reply_bytes: u64,
    /// Digest entries shipped (whole-table for flat, per-leaf for Merkle).
    pub digest_entries: u64,
    /// Merkle child hashes shipped (0 on the flat path).
    pub node_hashes: u64,
    /// Delta entries shipped.
    pub delta_entries: u64,
}

impl RoundStats {
    /// Total bytes on the wire, both directions.
    pub fn bytes(&self) -> u64 {
        self.request_bytes + self.reply_bytes
    }

    /// CPU-work proxy: units hashed/compared/shipped by the round
    /// (digest entries + child hashes + delta entries).
    pub fn work(&self) -> u64 {
        self.digest_entries + self.node_hashes + self.delta_entries
    }
}

/// Runs one complete Merkle reconciliation round between two in-memory
/// tables, encoding every payload through the real wire records so the
/// stats mean what they would on the network. Returns `None` (puller
/// untouched) when `fate` kills the round.
pub fn merkle_round(
    responder: &mut SyncTable,
    puller: &mut SyncTable,
    kind: RoundKind,
    now_ns: u64,
    fate: RoundFate,
) -> (Option<ApplyOutcome>, RoundStats) {
    let authoritative = matches!(kind, RoundKind::Authority { .. });
    let from_replica = match kind {
        RoundKind::Authority { replica_id } => Some(replica_id),
        RoundKind::Gossip => None,
    };
    let mut walk = MerkleWalk::start();
    let mut stats = RoundStats::default();
    let mut in_flight = 0u32;
    while let Some(probe) = walk.next_probe(puller) {
        if fate.drop_request_at == Some(in_flight) {
            return (None, stats);
        }
        stats.request_bytes += probe.encode().len() as u64;
        stats.digest_entries += probe
            .leaves
            .iter()
            .map(|leaf| leaf.entries.len() as u64)
            .sum::<u64>();
        let (reply, _gc) = responder.answer_probe(&probe, authoritative, from_replica, now_ns);
        stats.reply_bytes += reply.encode().len() as u64;
        stats.node_hashes += reply
            .nodes
            .iter()
            .map(|rec| rec.children.len() as u64)
            .sum::<u64>();
        stats.delta_entries += reply.entries.len() as u64;
        stats.probes += 1;
        walk.absorb(puller, &reply);
        in_flight += 1;
    }
    if fate.lose_final_reply {
        return (None, stats);
    }
    let (delta, epoch, horizon, _probes) = walk.finish();
    let outcome = match kind {
        RoundKind::Authority { .. } => {
            let mut out = puller.apply(&delta, true);
            puller.note_synced(epoch);
            puller.gc_below(horizon);
            out.promoted += puller.mark_all_verified();
            out
        }
        RoundKind::Gossip => puller.apply(&delta, false),
    };
    (Some(outcome), stats)
}

/// Runs one complete **flat-digest** reconciliation round between two
/// in-memory tables — the legacy O(table) path, retained as the
/// differential oracle for [`merkle_round`] and as the linear-growth
/// baseline in EXP-13's table-size sweep. Fate mapping: any
/// `drop_request_at` loses the digest (responder untouched);
/// `lose_final_reply` loses the delta after the responder fully processed
/// the digest.
pub fn flat_round(
    responder: &mut SyncTable,
    puller: &mut SyncTable,
    kind: RoundKind,
    now_ns: u64,
    fate: RoundFate,
) -> (Option<ApplyOutcome>, RoundStats) {
    let authoritative = matches!(kind, RoundKind::Authority { .. });
    let mut stats = RoundStats {
        probes: 1,
        ..RoundStats::default()
    };
    let digest = SyncDigestMsg {
        watermark: puller.watermark(),
        entries: puller.digest(),
    };
    stats.request_bytes += digest.encode().len() as u64;
    stats.digest_entries += digest.entries.len() as u64;
    if fate.drop_request_at.is_some() {
        return (None, stats);
    }
    if let RoundKind::Authority { replica_id } = kind {
        responder.record_watermark(replica_id, digest.watermark);
        let horizon = responder.horizon();
        responder.gc_below(horizon);
    }
    let entries = responder.delta_for(&digest.entries, authoritative, now_ns);
    let delta = vproto::SyncDeltaMsg {
        epoch: responder.max_epoch(),
        horizon: if authoritative {
            responder.gc_horizon()
        } else {
            0
        },
        entries,
    };
    stats.reply_bytes += delta.encode().len() as u64;
    stats.delta_entries += delta.entries.len() as u64;
    if fate.lose_final_reply {
        return (None, stats);
    }
    let outcome = match kind {
        RoundKind::Authority { .. } => {
            let mut out = puller.apply(&delta.entries, true);
            puller.note_synced(delta.epoch);
            puller.gc_below(delta.horizon);
            out.promoted += puller.mark_all_verified();
            out
        }
        RoundKind::Gossip => puller.apply(&delta.entries, false),
    };
    (Some(outcome), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(target: u32) -> SyncBinding {
        SyncBinding {
            logical: false,
            target,
            context: 1,
        }
    }

    #[test]
    fn one_round_converges_preloaded_replica() {
        let mut auth = SyncTable::new();
        auth.define(b"home".to_vec(), bind(1), 100);
        auth.define(b"remote".to_vec(), bind(2), 200);
        auth.tombstone(b"home", 300);

        let mut replica = SyncTable::new();
        replica.preload(b"home".to_vec(), bind(1));
        replica.preload(b"stale".to_vec(), bind(9)); // authority never had it

        let delta = auth.delta_for(&replica.digest(), true, 400);
        replica.apply(&delta, true);
        assert_eq!(replica.table_hash(), auth.table_hash());
        assert!(replica.lookup(b"home").is_none(), "tombstone adopted");
        assert!(replica.lookup(b"stale").is_none(), "unknown prefix killed");
        assert!(replica.lookup(b"remote").is_some());
    }

    #[test]
    fn second_round_is_a_no_op() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        let d1 = auth.delta_for(&replica.digest(), true, 20);
        replica.apply(&d1, true);
        let d2 = auth.delta_for(&replica.digest(), true, 30);
        assert!(d2.is_empty());
        assert_eq!(replica.apply(&d2, true), ApplyOutcome::default());
    }

    #[test]
    fn epochs_never_regress_on_apply() {
        let mut t = SyncTable::new();
        t.define(b"a".to_vec(), bind(1), 100);
        let e = t.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        let out = t.apply(
            &[SyncEntry {
                prefix: b"a".to_vec(),
                epoch: e, // equal epoch: must not re-adopt
                binding: None,
            }],
            true,
        );
        assert_eq!(out, ApplyOutcome::default());
        assert!(t.lookup(b"a").is_some());
    }

    #[test]
    fn restart_stamps_outrank_pre_crash_entries() {
        let mut before = SyncTable::new();
        before.define(b"a".to_vec(), bind(1), 5_000_000);
        let pre_crash = before.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        // A restarted authority starts a fresh table but stamps at the
        // (later) virtual time, so its entries win.
        let mut after = SyncTable::new();
        after.define(b"a".to_vec(), bind(2), 9_000_000);
        let post_crash = after.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        assert!(post_crash > pre_crash);
    }

    #[test]
    fn promotion_counts_unverified_entries() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        replica.preload(b"a".to_vec(), bind(1));
        assert!(replica.lookup(b"a").is_some_and(|e| !e.verified));
        let delta = auth.delta_for(&replica.digest(), true, 20);
        let out = replica.apply(&delta, true);
        assert_eq!(out.promoted, 1);
        assert!(replica.lookup(b"a").is_some_and(|e| e.verified));
    }

    /// Regression (ISSUE 5): deleting a name that was never defined must
    /// not stamp a tombstone — otherwise delete-of-unknown churn grows
    /// the table forever.
    #[test]
    fn deleting_an_unknown_prefix_is_a_no_op() {
        let mut t = SyncTable::new();
        t.define(b"a".to_vec(), bind(1), 10);
        let hash = t.table_hash();
        let epoch = t.max_epoch();
        for i in 0..100u32 {
            let name = format!("never-{i}").into_bytes();
            assert_eq!(
                t.tombstone(&name, 20 + u64::from(i)),
                TombstoneOutcome::Unknown
            );
        }
        assert_eq!(t.table_hash(), hash, "table changed by no-op deletes");
        assert_eq!(t.tombstone_len(), 0);
        assert_eq!(t.max_epoch(), epoch, "epoch clock moved by no-op deletes");
        // Known names still tombstone normally, live or already dead.
        assert_eq!(t.tombstone(b"a", 200), TombstoneOutcome::DroppedLive);
        assert_eq!(t.tombstone(b"a", 300), TombstoneOutcome::AlreadyDead);
        assert_eq!(t.tombstone_len(), 1);
    }

    /// Regression (ISSUE 5): a digest carrying an absurd epoch (corrupt or
    /// hostile) must not be written into the authority's epoch clock —
    /// one poisoned digest would inflate every stamp thereafter.
    #[test]
    fn hostile_digest_epoch_cannot_poison_the_clock() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 1_000);
        let now_ns = 2_000;
        let hostile = [SyncDigestEntry {
            prefix: b"evil".to_vec(),
            epoch: u64::MAX - 7,
            tombstone: false,
        }];
        let delta = auth.delta_for(&hostile, true, now_ns);
        // The hostile entry is rejected outright: no tombstone stamped
        // for it, nothing keyed off its epoch.
        assert!(delta.iter().all(|e| e.prefix != b"evil"));
        assert!(auth.max_epoch() <= now_ns + MAX_EPOCH_SKEW_NS);
        // The clock still stamps sanely afterwards.
        auth.define(b"b".to_vec(), bind(2), 3_000);
        assert!(auth.max_epoch() < 1_000_000);
        // An epoch within the skew bound is still honoured (the normal
        // unknown-prefix tombstone path).
        let plausible = [SyncDigestEntry {
            prefix: b"stale".to_vec(),
            epoch: now_ns,
            tombstone: false,
        }];
        let delta = auth.delta_for(&plausible, true, now_ns);
        assert!(delta
            .iter()
            .any(|e| e.prefix == b"stale" && e.binding.is_none()));
    }

    #[test]
    fn horizon_is_min_watermark_and_starts_at_zero() {
        let mut auth = SyncTable::new();
        assert_eq!(auth.horizon(), 0, "no replicas known: collect nothing");
        auth.record_watermark(1, 500);
        assert_eq!(auth.horizon(), 500);
        auth.record_watermark(2, 300);
        assert_eq!(auth.horizon(), 300, "slowest replica pins the horizon");
        // Watermarks are monotone: a delayed, older report cannot regress.
        auth.record_watermark(1, 100);
        assert_eq!(auth.horizon(), 300);
        auth.record_watermark(2, 900);
        assert_eq!(auth.horizon(), 500);
    }

    #[test]
    fn gc_drops_only_tombstones_at_or_below_horizon() {
        let mut t = SyncTable::new();
        t.define(b"live".to_vec(), bind(1), 100);
        t.define(b"old".to_vec(), bind(2), 200);
        t.define(b"new".to_vec(), bind(3), 300);
        t.tombstone(b"old", 400);
        t.tombstone(b"new", 500);
        let old_epoch = 400; // stamps are >= now, monotone
        assert_eq!(t.gc_below(old_epoch), 1, "only the old tombstone goes");
        assert_eq!(t.tombstone_len(), 1);
        assert!(t.lookup(b"live").is_some(), "live entries are never GC'd");
        assert_eq!(t.gc_below(old_epoch), 0, "idempotent");
        assert_eq!(t.gc_horizon(), old_epoch);
        assert_eq!(t.gc_below(u64::MAX), 1, "rest goes when the horizon passes");
        assert_eq!(t.tombstone_len(), 0);
    }

    /// Pins the invariants the O(1)/O(touched) fast paths lean on: after
    /// every kind of write, `next_epoch` dominates every entry epoch, the
    /// tombstone index mirrors exactly the dead entries, and the
    /// unverified index mirrors exactly the unverified ones. The walk
    /// reads `max_epoch` and GCs on *every probe* — if any write path
    /// bypassed these indexes, reconciliation would silently go stale,
    /// not just slow.
    #[test]
    fn epoch_clock_and_side_indexes_mirror_the_table() {
        let check = |t: &SyncTable, who: &str| {
            let scan_max = t.entries.values().map(|e| e.epoch).max().unwrap_or(0);
            assert!(t.next_epoch >= scan_max, "{who}: clock behind an entry");
            let dead: BTreeSet<(u64, Vec<u8>)> = t
                .entries
                .iter()
                .filter(|(_, e)| e.binding.is_none())
                .map(|(n, e)| (e.epoch, n.clone()))
                .collect();
            let indexed: BTreeSet<(u64, Vec<u8>)> = t
                .tombs
                .iter()
                .flat_map(|(&ep, names)| names.iter().map(move |n| (ep, n.clone())))
                .collect();
            assert_eq!(indexed, dead, "{who}: tombstone index diverged");
            let unverified: BTreeSet<Vec<u8>> = t
                .entries
                .iter()
                .filter(|(_, e)| !e.verified)
                .map(|(n, _)| n.clone())
                .collect();
            assert_eq!(t.unverified, unverified, "{who}: unverified index diverged");
            // Every pending Merkle-dirty bucket's shard must be flagged in
            // the shard-dirty mask (content changes must re-publish). Only
            // this direction is checkable: promotions flag shards without
            // dirtying the tree, so the mask can legitimately be a superset.
            for &bucket in &t.merkle.dirty {
                assert!(
                    t.shard_dirty & (1 << shard_of_bucket(bucket)) != 0,
                    "{who}: dirty bucket {bucket} in a clean shard"
                );
            }
        };
        let mut auth = SyncTable::new();
        let mut rep = SyncTable::new();
        rep.preload(b"boot".to_vec(), bind(9));
        check(&rep, "preload");
        auth.define(b"a".to_vec(), bind(1), 100);
        auth.define(b"b".to_vec(), bind(2), 200);
        auth.tombstone(b"a", 300);
        auth.tombstone(b"a", 400); // re-stamp moves the index slot
        check(&auth, "define/tombstone");
        // Minting: the replica's digest names a prefix the authority never
        // had, so the delta path stamps a tombstone for it.
        let mut digest = rep.digest();
        digest.push(SyncDigestEntry {
            prefix: b"ghost".to_vec(),
            epoch: 250,
            tombstone: false,
        });
        let delta = auth.delta_for(&digest, true, 500);
        check(&auth, "mint");
        rep.apply(&delta, false); // gossip: adopted entries stay unverified
        check(&rep, "gossip apply");
        rep.apply(&delta, true);
        rep.mark_all_verified();
        check(&rep, "vouched apply + promote");
        auth.record_watermark(7, 450);
        auth.gc_below(auth.horizon());
        check(&auth, "gc");
        assert_eq!(auth.max_epoch(), auth.next_epoch);
    }

    #[test]
    fn gcd_tombstone_in_digest_is_not_restamped() {
        let mut auth = SyncTable::new();
        auth.define(b"gone".to_vec(), bind(1), 100);
        auth.tombstone(b"gone", 200);
        let tomb_epoch = auth
            .digest()
            .iter()
            .find(|d| d.prefix == b"gone")
            .map(|d| d.epoch)
            .unwrap_or(0);
        auth.record_watermark(1, tomb_epoch);
        let dropped = auth.gc_below(auth.horizon());
        assert_eq!(dropped, 1);
        // The replica still holds the tombstone and digests it; the
        // authority must recognize it as collected, not stamp it afresh.
        let replica_digest = [SyncDigestEntry {
            prefix: b"gone".to_vec(),
            epoch: tomb_epoch,
            tombstone: true,
        }];
        let delta = auth.delta_for(&replica_digest, true, 300);
        assert!(delta.is_empty(), "GC'd tombstone resurrected: {delta:?}");
        assert_eq!(auth.tombstone_len(), 0);
    }

    #[test]
    fn gossip_deltas_never_carry_preloads() {
        let mut peer = SyncTable::new();
        peer.preload(b"hearsay".to_vec(), bind(9));
        peer.apply(
            &[SyncEntry {
                prefix: b"real".to_vec(),
                epoch: 50,
                binding: Some(bind(1)),
            }],
            true,
        );
        let empty_digest: [SyncDigestEntry; 0] = [];
        let delta = peer.delta_for(&empty_digest, false, 1_000);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].prefix, b"real");
    }

    #[test]
    fn gossip_adoption_stays_unverified_until_vouched() {
        let mut replica = SyncTable::new();
        let out = replica.apply(
            &[SyncEntry {
                prefix: b"p".to_vec(),
                epoch: 10,
                binding: Some(bind(1)),
            }],
            false,
        );
        assert_eq!(out.adopted, 1);
        assert_eq!(out.promoted, 0);
        assert!(replica.lookup(b"p").is_some_and(|e| !e.verified));
        assert_eq!(replica.mark_all_verified(), 1);
    }

    #[test]
    fn merkle_root_matches_across_identical_tables() {
        let mut a = SyncTable::new();
        let mut b = SyncTable::new();
        for i in 0..50u32 {
            let name = format!("p{i}").into_bytes();
            a.define(name.clone(), bind(i), 100 + u64::from(i));
        }
        // Same content reached by a different op order: preload + sync.
        let delta = a.delta_for(&b.digest(), true, 500);
        b.apply(&delta, true);
        assert_eq!(a.merkle_root(), b.merkle_root());
        assert_eq!(a.table_hash(), b.table_hash());
        // Divergence is visible at the root, at exactly one leaf path.
        b.define(b"p7".to_vec(), bind(99), 1_000);
        assert_ne!(a.merkle_root(), b.merkle_root());
    }

    #[test]
    fn empty_and_emptied_tables_hash_alike() {
        let mut empty = SyncTable::new();
        let mut emptied = SyncTable::new();
        emptied.define(b"a".to_vec(), bind(1), 10);
        emptied.tombstone(b"a", 20);
        let tomb = emptied.max_epoch();
        assert_ne!(emptied.merkle_root(), empty.merkle_root());
        emptied.gc_below(tomb);
        assert_eq!(emptied.merkle_root(), 0, "all-empty tree is the 0 hash");
        assert_eq!(emptied.merkle_root(), empty.merkle_root());
        assert_eq!(empty.table_hash(), 0);
    }

    #[test]
    fn single_edit_invalidates_one_leaf_path_only() {
        let mut t = SyncTable::new();
        for i in 0..64u32 {
            t.define(format!("p{i}").into_bytes(), bind(i), 100 + u64::from(i));
        }
        t.merkle_flush();
        let before_leaves = t.merkle.leaf.clone();
        let before_nodes = t.merkle.node.clone();
        t.define(b"p11".to_vec(), bind(1234), 9_000);
        assert_eq!(
            t.merkle.dirty.len(),
            1,
            "one edit dirties exactly one leaf bucket"
        );
        t.merkle_flush();
        let changed_leaves = t
            .merkle
            .leaf
            .iter()
            .filter(|(b, h)| before_leaves.get(b) != Some(h))
            .count();
        assert_eq!(changed_leaves, 1, "one leaf hash changed");
        let changed_nodes = t
            .merkle
            .node
            .iter()
            .filter(|(id, h)| before_nodes.get(id) != Some(h))
            .count();
        assert_eq!(
            changed_nodes as u32, MERKLE_LEVELS,
            "exactly the ancestors changed"
        );
    }

    #[test]
    fn merkle_children_recombine_to_parent() {
        let mut t = SyncTable::new();
        for i in 0..32u32 {
            t.define(format!("name-{i}").into_bytes(), bind(i), 50 + u64::from(i));
        }
        let root = t.merkle_root();
        let children = t.merkle_children(MERKLE_ROOT).expect("root is interior");
        assert_eq!(combine_children(&children), root);
        assert!(
            t.merkle_children(merkle_node_id(MERKLE_LEVELS, 0))
                .is_none(),
            "leaves have no child record"
        );
        assert!(
            t.merkle_children(merkle_node_id(2, 9_999_999)).is_none(),
            "out-of-shape ids are rejected"
        );
    }

    #[test]
    fn leaf_digest_partitions_the_flat_digest() {
        let mut t = SyncTable::new();
        for i in 0..40u32 {
            t.define(format!("n{i}").into_bytes(), bind(i), 10 + u64::from(i));
        }
        t.tombstone(b"n3", 500);
        let mut from_leaves: Vec<SyncDigestEntry> = (0..MERKLE_LEAVES)
            .filter_map(|b| {
                let node = merkle_node_id(MERKLE_LEVELS, b);
                t.merkle
                    .members
                    .contains_key(&b)
                    .then(|| t.leaf_digest(node))
            })
            .flatten()
            .collect();
        from_leaves.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        assert_eq!(from_leaves, t.digest());
    }

    #[test]
    fn merkle_round_converges_like_a_flat_round() {
        let seed_tables = || {
            let mut auth = SyncTable::new();
            let mut rep = SyncTable::new();
            for i in 0..30u32 {
                auth.define(format!("e{i}").into_bytes(), bind(i), 100 + u64::from(i));
            }
            rep.preload(b"e1".to_vec(), bind(1));
            rep.preload(b"stray".to_vec(), bind(77));
            auth.tombstone(b"e5", 400);
            (auth, rep)
        };
        let (mut auth_m, mut rep_m) = seed_tables();
        let (out_m, stats) = merkle_round(
            &mut auth_m,
            &mut rep_m,
            RoundKind::Authority { replica_id: 1 },
            1_000,
            RoundFate::DELIVERED,
        );
        let (mut auth_f, mut rep_f) = seed_tables();
        let (out_f, _) = flat_round(
            &mut auth_f,
            &mut rep_f,
            RoundKind::Authority { replica_id: 1 },
            1_000,
            RoundFate::DELIVERED,
        );
        assert_eq!(out_m, out_f, "same apply outcome on both paths");
        assert_eq!(rep_m.table_hash(), auth_m.table_hash());
        assert_eq!(rep_m.table_hash(), rep_f.table_hash());
        assert_eq!(auth_m.table_hash(), auth_f.table_hash());
        assert_eq!(rep_m.watermark(), rep_f.watermark());
        assert!(
            stats.probes >= 1 && stats.probes <= MERKLE_LEVELS + 1,
            "walk depth bounded by the tree: {stats:?}"
        );
    }

    #[test]
    fn in_sync_merkle_round_is_one_probe() {
        let mut auth = SyncTable::new();
        for i in 0..100u32 {
            auth.define(format!("e{i}").into_bytes(), bind(i), 10 + u64::from(i));
        }
        let mut rep = SyncTable::new();
        let (_, _) = merkle_round(
            &mut auth,
            &mut rep,
            RoundKind::Authority { replica_id: 1 },
            1_000,
            RoundFate::DELIVERED,
        );
        assert_eq!(rep.table_hash(), auth.table_hash());
        let epoch = auth.max_epoch();
        let (out, stats) = merkle_round(
            &mut auth,
            &mut rep,
            RoundKind::Authority { replica_id: 1 },
            2_000,
            RoundFate::DELIVERED,
        );
        assert_eq!(stats.probes, 1, "equal roots stop the walk at the root");
        assert_eq!(out, Some(ApplyOutcome::default()));
        assert_eq!(
            rep.watermark(),
            epoch,
            "no-op rounds still move the watermark"
        );
    }

    #[test]
    fn killed_merkle_round_leaves_the_puller_untouched() {
        let mut auth = SyncTable::new();
        for i in 0..20u32 {
            auth.define(format!("k{i}").into_bytes(), bind(i), 10 + u64::from(i));
        }
        for drop_at in 0..=MERKLE_LEVELS {
            let mut rep = SyncTable::new();
            rep.preload(b"k1".to_vec(), bind(1));
            let before = rep.table_hash();
            let (out, _) = merkle_round(
                &mut auth,
                &mut rep,
                RoundKind::Authority { replica_id: 1 },
                1_000,
                RoundFate {
                    drop_request_at: Some(drop_at),
                    lose_final_reply: false,
                },
            );
            assert_eq!(out, None);
            assert_eq!(rep.table_hash(), before, "aborted at probe {drop_at}");
            assert_eq!(rep.watermark(), 0);
        }
    }

    #[test]
    fn merkle_gossip_never_mints_or_moves_watermarks() {
        let mut peer = SyncTable::new();
        peer.apply(
            &[SyncEntry {
                prefix: b"real".to_vec(),
                epoch: 50,
                binding: Some(bind(1)),
            }],
            true,
        );
        let mut cold = SyncTable::new();
        cold.preload(b"hearsay".to_vec(), bind(9));
        let peer_len = peer.live_len();
        let (out, _) = merkle_round(
            &mut cold,
            &mut peer,
            RoundKind::Gossip,
            1_000,
            RoundFate::DELIVERED,
        );
        // peer pulled from cold: cold's preload is epoch-0 hearsay, never
        // shipped; no tombstone minted for "real" on the cold side.
        assert_eq!(out, Some(ApplyOutcome::default()));
        assert_eq!(peer.live_len(), peer_len);
        assert_eq!(cold.tombstone_len(), 0, "gossip responders never mint");
        let (out, _) = merkle_round(
            &mut peer,
            &mut cold,
            RoundKind::Gossip,
            2_000,
            RoundFate::DELIVERED,
        );
        assert_eq!(out.map(|o| o.adopted), Some(1));
        assert!(cold.lookup(b"real").is_some_and(|e| !e.verified));
        assert_eq!(cold.watermark(), 0, "gossip never moves the watermark");
    }

    #[test]
    fn watermark_moves_only_on_note_synced() {
        let mut replica = SyncTable::new();
        assert_eq!(replica.watermark(), 0);
        // Gossip adoption raises epochs but not the watermark.
        replica.apply(
            &[SyncEntry {
                prefix: b"p".to_vec(),
                epoch: 700,
                binding: Some(bind(1)),
            }],
            false,
        );
        assert_eq!(replica.watermark(), 0);
        replica.note_synced(500);
        assert_eq!(replica.watermark(), 500);
        replica.note_synced(400); // monotone
        assert_eq!(replica.watermark(), 500);
    }
}
