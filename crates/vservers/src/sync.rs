//! The versioned prefix table behind anti-entropy reconciliation.
//!
//! Prefix servers are soft-state caches of naming information (paper §5.5),
//! so replicas drift: a partition or crash window hides the authority's
//! adds and deletes. [`SyncTable`] makes that drift *reconcilable* by
//! versioning every entry with a per-entry **epoch** stamped at the
//! authority and keeping deletes as **tombstones** instead of removals.
//! A replica then converges in one pull round: it sends the authority its
//! `(prefix, epoch)` [digest](SyncTable::digest), the authority answers
//! with the [delta](SyncTable::delta_for) of everything newer (fresh
//! tombstones included for prefixes it never defined), and the replica
//! [applies](SyncTable::apply) entries that out-rank its own — after which
//! the two tables hash identically ([`SyncTable::table_hash`]).
//!
//! Epoch stamps are `max(previous + 1, virtual-now-ns)`: monotonic within
//! one incarnation, and — because virtual time only moves forward — a
//! *restarted* authority's fresh stamps still out-rank everything it
//! handed out before the crash. Epoch 0 is reserved for preloaded,
//! never-verified replica entries, so any authoritative entry wins over a
//! preload.

use vproto::{SyncBinding, SyncDigestEntry, SyncEntry};

use std::collections::BTreeMap;

/// FNV-1a offset basis / prime (64-bit) — the same constants the
/// virtual-time kernel uses for its event hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One versioned prefix-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedEntry {
    /// The binding, or `None` for a tombstone (deleted at `epoch`).
    pub binding: Option<SyncBinding>,
    /// The entry's version: 0 for a preload, otherwise an authority stamp.
    pub epoch: u64,
    /// `true` once the entry is first-hand (defined here) or vouched for
    /// by the authority in a sync round. Unverified entries answer
    /// binding queries with the staleness flag set.
    pub verified: bool,
}

/// What one [`SyncTable::apply`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Delta entries adopted (they out-ranked the local version).
    pub adopted: u32,
    /// Live local entries dropped by an adopted tombstone.
    pub dropped_live: u32,
    /// Entries that went unverified → verified.
    pub promoted: u32,
}

/// A versioned, tombstone-retaining prefix table.
#[derive(Debug, Clone, Default)]
pub struct SyncTable {
    entries: BTreeMap<Vec<u8>, VersionedEntry>,
    next_epoch: u64,
}

impl SyncTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps and returns a fresh epoch: monotonic, never 0, and at least
    /// the current virtual time so post-restart stamps out-rank pre-crash
    /// ones.
    fn stamp(&mut self, now_ns: u64) -> u64 {
        self.next_epoch = (self.next_epoch + 1).max(now_ns).max(1);
        self.next_epoch
    }

    /// Defines (or redefines) a prefix first-hand: stamped and verified.
    pub fn define(&mut self, prefix: Vec<u8>, binding: SyncBinding, now_ns: u64) {
        let epoch = self.stamp(now_ns);
        self.entries.insert(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch,
                verified: true,
            },
        );
    }

    /// Preloads a prefix at epoch 0, unverified — a replica's boot-time
    /// copy, out-ranked by any authoritative stamp.
    pub fn preload(&mut self, prefix: Vec<u8>, binding: SyncBinding) {
        self.entries.insert(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch: 0,
                verified: false,
            },
        );
    }

    /// Deletes a prefix by writing a freshly stamped tombstone. Returns
    /// `true` if a live entry existed. The tombstone is retained so sync
    /// rounds propagate the delete instead of resurrecting the binding.
    pub fn tombstone(&mut self, prefix: &[u8], now_ns: u64) -> bool {
        let was_live = self
            .entries
            .get(prefix)
            .is_some_and(|e| e.binding.is_some());
        let epoch = self.stamp(now_ns);
        self.entries.insert(
            prefix.to_vec(),
            VersionedEntry {
                binding: None,
                epoch,
                verified: true,
            },
        );
        was_live
    }

    /// Looks up a live binding (tombstones answer `None`).
    pub fn lookup(&self, prefix: &[u8]) -> Option<&VersionedEntry> {
        self.entries.get(prefix).filter(|e| e.binding.is_some())
    }

    /// Iterates live `(prefix, binding, verified)` entries in name order.
    pub fn live_iter(&self) -> impl Iterator<Item = (&[u8], &SyncBinding, bool)> {
        self.entries
            .iter()
            .filter_map(|(name, e)| e.binding.as_ref().map(|b| (name.as_slice(), b, e.verified)))
    }

    /// Marks every entry verified — used when the authority has just
    /// vouched for the whole table (a successful sync round).
    pub fn mark_all_verified(&mut self) -> u32 {
        let mut promoted = 0;
        for e in self.entries.values_mut() {
            if !e.verified {
                e.verified = true;
                promoted += 1;
            }
        }
        promoted
    }

    /// The number of live entries.
    pub fn live_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.binding.is_some())
            .count()
    }

    /// The number of retained tombstones.
    pub fn tombstone_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.binding.is_none())
            .count()
    }

    /// The highest epoch stamped or adopted so far.
    pub fn max_epoch(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.epoch)
            .max()
            .unwrap_or(0)
            .max(self.next_epoch)
    }

    /// The `(prefix, epoch)` digest of the whole table, tombstones
    /// included — the `SyncDigest` request payload.
    pub fn digest(&self) -> Vec<SyncDigestEntry> {
        self.entries
            .iter()
            .map(|(name, e)| SyncDigestEntry {
                prefix: name.clone(),
                epoch: e.epoch,
            })
            .collect()
    }

    /// Computes the delta that brings the sender of `digest` up to date:
    /// every local entry the digest is missing or holds at an older epoch.
    ///
    /// When `authoritative`, prefixes the digest knows but this table does
    /// not are answered with a *freshly stamped tombstone* (epoch at least
    /// `digest_epoch + 1`, so it out-ranks the replica's copy), which both
    /// sides then retain — that is what makes the two tables converge to
    /// bytewise-identical contents rather than merely compatible ones.
    pub fn delta_for(
        &mut self,
        digest: &[SyncDigestEntry],
        authoritative: bool,
        now_ns: u64,
    ) -> Vec<SyncEntry> {
        let remote: BTreeMap<&[u8], u64> = digest
            .iter()
            .map(|d| (d.prefix.as_slice(), d.epoch))
            .collect();
        let mut out: Vec<SyncEntry> = self
            .entries
            .iter()
            .filter(|(name, e)| match remote.get(name.as_slice()) {
                Some(&remote_epoch) => e.epoch > remote_epoch,
                None => true,
            })
            .map(|(name, e)| SyncEntry {
                prefix: name.clone(),
                epoch: e.epoch,
                binding: e.binding,
            })
            .collect();
        if authoritative {
            let unknown: Vec<(Vec<u8>, u64)> = digest
                .iter()
                .filter(|d| !self.entries.contains_key(&d.prefix))
                .map(|d| (d.prefix.clone(), d.epoch))
                .collect();
            for (prefix, remote_epoch) in unknown {
                let epoch = self.stamp(now_ns).max(remote_epoch.saturating_add(1));
                self.next_epoch = epoch;
                self.entries.insert(
                    prefix.clone(),
                    VersionedEntry {
                        binding: None,
                        epoch,
                        verified: true,
                    },
                );
                out.push(SyncEntry {
                    prefix,
                    epoch,
                    binding: None,
                });
            }
            out.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        }
        out
    }

    /// Applies a delta: each entry that out-ranks (strictly newer epoch
    /// than) the local version is adopted and marked verified. Equal or
    /// older epochs change nothing — epochs never regress.
    pub fn apply(&mut self, delta: &[SyncEntry]) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for d in delta {
            let local = self.entries.get(&d.prefix);
            let local_epoch = local.map(|e| e.epoch);
            if local_epoch.is_some_and(|le| le >= d.epoch) {
                continue;
            }
            let was_unverified = local.is_some_and(|e| !e.verified);
            let was_live = local.is_some_and(|e| e.binding.is_some());
            if was_live && d.binding.is_none() {
                outcome.dropped_live += 1;
            }
            if was_unverified {
                outcome.promoted += 1;
            }
            self.entries.insert(
                d.prefix.clone(),
                VersionedEntry {
                    binding: d.binding,
                    epoch: d.epoch,
                    verified: true,
                },
            );
            self.next_epoch = self.next_epoch.max(d.epoch);
            outcome.adopted += 1;
        }
        outcome
    }

    /// An order-independent-input, content-complete FNV-1a hash of the
    /// table: prefixes, epochs, tombstone flags, and binding fields (the
    /// `verified` bit is local bookkeeping and excluded). Two tables hash
    /// equal iff their reconcilable contents are identical — the witness
    /// EXP-13 uses for "bytewise identical within one round".
    pub fn table_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (name, e) in &self.entries {
            fold(&(name.len() as u64).to_le_bytes());
            fold(name);
            fold(&e.epoch.to_le_bytes());
            match &e.binding {
                None => fold(&[1]),
                Some(b) => {
                    fold(&[0, u8::from(b.logical)]);
                    fold(&b.target.to_le_bytes());
                    fold(&b.context.to_le_bytes());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(target: u32) -> SyncBinding {
        SyncBinding {
            logical: false,
            target,
            context: 1,
        }
    }

    #[test]
    fn one_round_converges_preloaded_replica() {
        let mut auth = SyncTable::new();
        auth.define(b"home".to_vec(), bind(1), 100);
        auth.define(b"remote".to_vec(), bind(2), 200);
        auth.tombstone(b"home", 300);

        let mut replica = SyncTable::new();
        replica.preload(b"home".to_vec(), bind(1));
        replica.preload(b"stale".to_vec(), bind(9)); // authority never had it

        let delta = auth.delta_for(&replica.digest(), true, 400);
        replica.apply(&delta);
        assert_eq!(replica.table_hash(), auth.table_hash());
        assert!(replica.lookup(b"home").is_none(), "tombstone adopted");
        assert!(replica.lookup(b"stale").is_none(), "unknown prefix killed");
        assert!(replica.lookup(b"remote").is_some());
    }

    #[test]
    fn second_round_is_a_no_op() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        let d1 = auth.delta_for(&replica.digest(), true, 20);
        replica.apply(&d1);
        let d2 = auth.delta_for(&replica.digest(), true, 30);
        assert!(d2.is_empty());
        assert_eq!(replica.apply(&d2), ApplyOutcome::default());
    }

    #[test]
    fn epochs_never_regress_on_apply() {
        let mut t = SyncTable::new();
        t.define(b"a".to_vec(), bind(1), 100);
        let e = t.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        let out = t.apply(&[SyncEntry {
            prefix: b"a".to_vec(),
            epoch: e, // equal epoch: must not re-adopt
            binding: None,
        }]);
        assert_eq!(out, ApplyOutcome::default());
        assert!(t.lookup(b"a").is_some());
    }

    #[test]
    fn restart_stamps_outrank_pre_crash_entries() {
        let mut before = SyncTable::new();
        before.define(b"a".to_vec(), bind(1), 5_000_000);
        let pre_crash = before.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        // A restarted authority starts a fresh table but stamps at the
        // (later) virtual time, so its entries win.
        let mut after = SyncTable::new();
        after.define(b"a".to_vec(), bind(2), 9_000_000);
        let post_crash = after.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        assert!(post_crash > pre_crash);
    }

    #[test]
    fn promotion_counts_unverified_entries() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        replica.preload(b"a".to_vec(), bind(1));
        assert!(replica.lookup(b"a").is_some_and(|e| !e.verified));
        let delta = auth.delta_for(&replica.digest(), true, 20);
        let out = replica.apply(&delta);
        assert_eq!(out.promoted, 1);
        assert!(replica.lookup(b"a").is_some_and(|e| e.verified));
    }
}
