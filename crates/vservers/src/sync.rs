//! The versioned prefix table behind anti-entropy reconciliation.
//!
//! Prefix servers are soft-state caches of naming information (paper §5.5),
//! so replicas drift: a partition or crash window hides the authority's
//! adds and deletes. [`SyncTable`] makes that drift *reconcilable* by
//! versioning every entry with a per-entry **epoch** stamped at the
//! authority and keeping deletes as **tombstones** instead of removals.
//! A replica then converges in one pull round: it sends the authority its
//! `(prefix, epoch, tombstone?)` [digest](SyncTable::digest), the authority
//! answers with the [delta](SyncTable::delta_for) of everything newer
//! (fresh tombstones included for prefixes it never defined), and the
//! replica [applies](SyncTable::apply) entries that out-rank its own —
//! after which the two tables hash identically ([`SyncTable::table_hash`]).
//!
//! Epoch stamps are `max(previous + 1, virtual-now-ns)`: monotonic within
//! one incarnation, and — because virtual time only moves forward — a
//! *restarted* authority's fresh stamps still out-rank everything it
//! handed out before the crash. Epoch 0 is reserved for preloaded,
//! never-verified replica entries, so any authoritative entry wins over a
//! preload.
//!
//! # Bounded tombstones: watermarks and the GC horizon
//!
//! Tombstones exist only to propagate deletes; once **every** replica has
//! adopted one, retaining it buys nothing. Following the death-certificate
//! discipline of Demers et al.'s epidemic algorithms, the table bounds
//! them:
//!
//! * each replica tracks a **synced watermark** ([`SyncTable::watermark`])
//!   — the highest authority epoch it has fully reconciled through, set
//!   only by a complete, successful authority round
//!   ([`SyncTable::note_synced`]), never by gossip;
//! * the authority records the watermark each replica reports in its
//!   digests ([`SyncTable::record_watermark`]) and computes the **GC
//!   horizon** = the minimum watermark across known replicas
//!   ([`SyncTable::horizon`]) — every tombstone at or below it is provably
//!   adopted everywhere;
//! * both sides drop tombstones at or below the horizon
//!   ([`SyncTable::gc_below`]); replicas learn the horizon from the
//!   authority's delta replies.
//!
//! The horizon is 0 (nothing collected) until every known replica has
//! completed at least one full round — a replica that has never reported
//! pins the horizon at 0 simply by being unknown.

use vproto::{SyncBinding, SyncDigestEntry, SyncEntry};

use std::collections::BTreeMap;

/// FNV-1a offset basis / prime (64-bit) — the same constants the
/// virtual-time kernel uses for its event hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// How far beyond virtual-now a digest epoch may claim to be before the
/// authority rejects it as corrupt or hostile (60 virtual seconds).
///
/// Honest epochs are stamped at `max(prev + 1, now_ns)` on the authority
/// itself, so a remote epoch materially ahead of the authority's own clock
/// cannot have come from any legitimate stamp. Without this bound a single
/// poisoned digest entry would be written into `next_epoch` and inflate
/// every stamp the authority hands out for the rest of its life.
pub const MAX_EPOCH_SKEW_NS: u64 = 60_000_000_000;

/// One versioned prefix-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedEntry {
    /// The binding, or `None` for a tombstone (deleted at `epoch`).
    pub binding: Option<SyncBinding>,
    /// The entry's version: 0 for a preload, otherwise an authority stamp.
    pub epoch: u64,
    /// `true` once the entry is first-hand (defined here) or vouched for
    /// by the authority in a sync round. Unverified entries answer
    /// binding queries with the staleness flag set.
    pub verified: bool,
}

/// What [`SyncTable::tombstone`] found when asked to delete a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TombstoneOutcome {
    /// A live entry existed and was tombstoned.
    DroppedLive,
    /// The prefix was already a tombstone; it was re-stamped (the delete
    /// still needs to out-rank whatever replicas hold).
    AlreadyDead,
    /// The prefix was never defined here: the delete is a no-op, the
    /// table is untouched. Stamping a tombstone for a name nobody ever
    /// bound would grow the table forever under delete-of-unknown churn.
    Unknown,
}

/// What one [`SyncTable::apply`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Delta entries adopted (they out-ranked the local version).
    pub adopted: u32,
    /// Live local entries dropped by an adopted tombstone.
    pub dropped_live: u32,
    /// Entries that went unverified → verified.
    pub promoted: u32,
}

/// A versioned, tombstone-retaining prefix table.
#[derive(Debug, Clone, Default)]
pub struct SyncTable {
    entries: BTreeMap<Vec<u8>, VersionedEntry>,
    next_epoch: u64,
    /// Replica side: the highest authority epoch fully reconciled through.
    synced: u64,
    /// The highest GC horizon this table has collected at.
    gc_horizon: u64,
    /// Authority side: per-replica synced watermarks, keyed by the
    /// replica's raw pid, learned from the digests replicas send.
    watermarks: BTreeMap<u32, u64>,
}

impl SyncTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps and returns a fresh epoch: monotonic, never 0, and at least
    /// the current virtual time so post-restart stamps out-rank pre-crash
    /// ones.
    fn stamp(&mut self, now_ns: u64) -> u64 {
        self.next_epoch = (self.next_epoch + 1).max(now_ns).max(1);
        self.next_epoch
    }

    /// Defines (or redefines) a prefix first-hand: stamped and verified.
    pub fn define(&mut self, prefix: Vec<u8>, binding: SyncBinding, now_ns: u64) {
        let epoch = self.stamp(now_ns);
        self.entries.insert(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch,
                verified: true,
            },
        );
    }

    /// Preloads a prefix at epoch 0, unverified — a replica's boot-time
    /// copy, out-ranked by any authoritative stamp.
    pub fn preload(&mut self, prefix: Vec<u8>, binding: SyncBinding) {
        self.entries.insert(
            prefix,
            VersionedEntry {
                binding: Some(binding),
                epoch: 0,
                verified: false,
            },
        );
    }

    /// Deletes a prefix by writing a freshly stamped tombstone — but only
    /// if the table has ever heard of it. Deleting an unknown name is a
    /// no-op ([`TombstoneOutcome::Unknown`]): there is no binding to
    /// propagate a delete for, and stamping one anyway would let a stream
    /// of bogus deletes grow the table without bound. Known names (live
    /// or already dead) are (re-)stamped so the delete out-ranks every
    /// replica's copy.
    pub fn tombstone(&mut self, prefix: &[u8], now_ns: u64) -> TombstoneOutcome {
        let outcome = match self.entries.get(prefix) {
            None => return TombstoneOutcome::Unknown,
            Some(e) if e.binding.is_some() => TombstoneOutcome::DroppedLive,
            Some(_) => TombstoneOutcome::AlreadyDead,
        };
        let epoch = self.stamp(now_ns);
        self.entries.insert(
            prefix.to_vec(),
            VersionedEntry {
                binding: None,
                epoch,
                verified: true,
            },
        );
        outcome
    }

    /// Looks up a live binding (tombstones answer `None`).
    pub fn lookup(&self, prefix: &[u8]) -> Option<&VersionedEntry> {
        self.entries.get(prefix).filter(|e| e.binding.is_some())
    }

    /// Iterates live `(prefix, binding, verified)` entries in name order.
    pub fn live_iter(&self) -> impl Iterator<Item = (&[u8], &SyncBinding, bool)> {
        self.entries
            .iter()
            .filter_map(|(name, e)| e.binding.as_ref().map(|b| (name.as_slice(), b, e.verified)))
    }

    /// Marks every entry verified — used when the authority has just
    /// vouched for the whole table (a successful sync round).
    pub fn mark_all_verified(&mut self) -> u32 {
        let mut promoted = 0;
        for e in self.entries.values_mut() {
            if !e.verified {
                e.verified = true;
                promoted += 1;
            }
        }
        promoted
    }

    /// The number of live entries.
    pub fn live_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.binding.is_some())
            .count()
    }

    /// The number of retained tombstones.
    pub fn tombstone_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.binding.is_none())
            .count()
    }

    /// The highest epoch stamped or adopted so far.
    pub fn max_epoch(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.epoch)
            .max()
            .unwrap_or(0)
            .max(self.next_epoch)
    }

    /// Replica side: the synced watermark — the highest authority epoch
    /// this table has fully reconciled through. 0 until the first
    /// complete, successful authority round. Gossip never moves it.
    pub fn watermark(&self) -> u64 {
        self.synced
    }

    /// Replica side: records a complete, successful authority round
    /// through `epoch` (the authority's table epoch from the delta
    /// header). Monotone.
    pub fn note_synced(&mut self, epoch: u64) {
        self.synced = self.synced.max(epoch);
    }

    /// Authority side: records the synced watermark a replica reported in
    /// its digest. Monotone per replica — a delayed digest cannot pull a
    /// watermark (and hence the horizon) backwards.
    pub fn record_watermark(&mut self, replica: u32, watermark: u64) {
        let slot = self.watermarks.entry(replica).or_insert(0);
        *slot = (*slot).max(watermark);
    }

    /// Authority side: the tombstone-GC horizon — the minimum synced
    /// watermark across every replica that has ever reported one. Every
    /// tombstone at or below it is provably adopted everywhere, so it is
    /// safe to drop. 0 (collect nothing) while no replica has reported.
    pub fn horizon(&self) -> u64 {
        self.watermarks.values().copied().min().unwrap_or(0)
    }

    /// The highest GC horizon this table has collected at.
    pub fn gc_horizon(&self) -> u64 {
        self.gc_horizon
    }

    /// Drops every tombstone stamped at or below `horizon`, returning how
    /// many were collected. Safe exactly when `horizon` is a true GC
    /// horizon (every replica's watermark has passed it): the delete is
    /// already adopted everywhere, so nothing can resurrect it. A horizon
    /// of 0 (or one below a previous GC) collects nothing.
    pub fn gc_below(&mut self, horizon: u64) -> u32 {
        self.gc_horizon = self.gc_horizon.max(horizon);
        let mut dropped = 0u32;
        self.entries.retain(|_, e| {
            let dead = e.binding.is_none() && e.epoch <= horizon && e.epoch != 0;
            if dead {
                dropped += 1;
            }
            !dead
        });
        dropped
    }

    /// The `(prefix, epoch, tombstone?)` digest of the whole table — the
    /// `SyncDigest` request payload.
    pub fn digest(&self) -> Vec<SyncDigestEntry> {
        self.entries
            .iter()
            .map(|(name, e)| SyncDigestEntry {
                prefix: name.clone(),
                epoch: e.epoch,
                tombstone: e.binding.is_none(),
            })
            .collect()
    }

    /// Computes the delta that brings the sender of `digest` up to date:
    /// every local entry the digest is missing or holds at an older epoch.
    /// Non-authoritative responders (gossip peers) never send epoch-0
    /// entries — preloads are hearsay, and gossiping one after the
    /// authority GC'd its tombstone would resurrect a delete.
    ///
    /// When `authoritative`, prefixes the digest knows but this table does
    /// not are answered with a *freshly stamped tombstone* (epoch at least
    /// `digest_epoch + 1`, so it out-ranks the replica's copy), which both
    /// sides then retain — that is what makes the two tables converge to
    /// bytewise-identical contents rather than merely compatible ones.
    /// Two exceptions:
    ///
    /// * a digest entry that is already a **tombstone** at or below the GC
    ///   horizon is one this authority collected — skipped; the replica
    ///   drops its copy when it sees the horizon in the delta header;
    /// * a digest epoch more than [`MAX_EPOCH_SKEW_NS`] beyond `now_ns`
    ///   cannot have come from a legitimate stamp — the entry is rejected
    ///   outright rather than allowed to poison the epoch clock.
    pub fn delta_for(
        &mut self,
        digest: &[SyncDigestEntry],
        authoritative: bool,
        now_ns: u64,
    ) -> Vec<SyncEntry> {
        let remote: BTreeMap<&[u8], u64> = digest
            .iter()
            .map(|d| (d.prefix.as_slice(), d.epoch))
            .collect();
        let mut out: Vec<SyncEntry> = self
            .entries
            .iter()
            .filter(|(name, e)| {
                (authoritative || e.epoch > 0)
                    && match remote.get(name.as_slice()) {
                        Some(&remote_epoch) => e.epoch > remote_epoch,
                        None => true,
                    }
            })
            .map(|(name, e)| SyncEntry {
                prefix: name.clone(),
                epoch: e.epoch,
                binding: e.binding,
            })
            .collect();
        if authoritative {
            let max_credible = now_ns.saturating_add(MAX_EPOCH_SKEW_NS);
            let unknown: Vec<(Vec<u8>, u64)> = digest
                .iter()
                .filter(|d| {
                    !self.entries.contains_key(&d.prefix)
                        && d.epoch <= max_credible
                        && !(d.tombstone && d.epoch <= self.gc_horizon)
                })
                .map(|d| (d.prefix.clone(), d.epoch))
                .collect();
            for (prefix, remote_epoch) in unknown {
                let epoch = self.stamp(now_ns).max(remote_epoch.saturating_add(1));
                self.next_epoch = epoch;
                self.entries.insert(
                    prefix.clone(),
                    VersionedEntry {
                        binding: None,
                        epoch,
                        verified: true,
                    },
                );
                out.push(SyncEntry {
                    prefix,
                    epoch,
                    binding: None,
                });
            }
            out.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        }
        out
    }

    /// Applies a delta: each entry that out-ranks (strictly newer epoch
    /// than) the local version is adopted. Equal or older epochs change
    /// nothing — epochs never regress.
    ///
    /// `verified` says who vouched for the delta: `true` for the
    /// configured authority (entries become first-class), `false` for a
    /// gossip peer (entries stay *Suspect* — served with the staleness
    /// flag — until an authority round vouches for them).
    pub fn apply(&mut self, delta: &[SyncEntry], verified: bool) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for d in delta {
            // Epoch 0 is reserved for local preloads; no stamp ever
            // produces it, so an epoch-0 delta entry is hearsay and never
            // adopted. A gossip entry at or below the GC horizon is stale
            // by definition — this table has synced through the horizon,
            // so anything at those epochs it does not hold was tombstoned
            // (and possibly collected); adopting it would resurrect a
            // delete through a peer that never synced.
            if d.epoch == 0 || (!verified && d.epoch <= self.gc_horizon) {
                continue;
            }
            let local = self.entries.get(&d.prefix);
            let local_epoch = local.map(|e| e.epoch);
            if local_epoch.is_some_and(|le| le >= d.epoch) {
                continue;
            }
            let was_unverified = local.is_some_and(|e| !e.verified);
            let was_live = local.is_some_and(|e| e.binding.is_some());
            if was_live && d.binding.is_none() {
                outcome.dropped_live += 1;
            }
            if was_unverified && verified {
                outcome.promoted += 1;
            }
            self.entries.insert(
                d.prefix.clone(),
                VersionedEntry {
                    binding: d.binding,
                    epoch: d.epoch,
                    verified,
                },
            );
            self.next_epoch = self.next_epoch.max(d.epoch);
            outcome.adopted += 1;
        }
        outcome
    }

    /// An order-independent-input, content-complete FNV-1a hash of the
    /// table: prefixes, epochs, tombstone flags, and binding fields (the
    /// `verified` bit is local bookkeeping and excluded). Two tables hash
    /// equal iff their reconcilable contents are identical — the witness
    /// EXP-13 and EXP-14 use for "bytewise identical within one round".
    pub fn table_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (name, e) in &self.entries {
            fold(&(name.len() as u64).to_le_bytes());
            fold(name);
            fold(&e.epoch.to_le_bytes());
            match &e.binding {
                None => fold(&[1]),
                Some(b) => {
                    fold(&[0, u8::from(b.logical)]);
                    fold(&b.target.to_le_bytes());
                    fold(&b.context.to_le_bytes());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(target: u32) -> SyncBinding {
        SyncBinding {
            logical: false,
            target,
            context: 1,
        }
    }

    #[test]
    fn one_round_converges_preloaded_replica() {
        let mut auth = SyncTable::new();
        auth.define(b"home".to_vec(), bind(1), 100);
        auth.define(b"remote".to_vec(), bind(2), 200);
        auth.tombstone(b"home", 300);

        let mut replica = SyncTable::new();
        replica.preload(b"home".to_vec(), bind(1));
        replica.preload(b"stale".to_vec(), bind(9)); // authority never had it

        let delta = auth.delta_for(&replica.digest(), true, 400);
        replica.apply(&delta, true);
        assert_eq!(replica.table_hash(), auth.table_hash());
        assert!(replica.lookup(b"home").is_none(), "tombstone adopted");
        assert!(replica.lookup(b"stale").is_none(), "unknown prefix killed");
        assert!(replica.lookup(b"remote").is_some());
    }

    #[test]
    fn second_round_is_a_no_op() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        let d1 = auth.delta_for(&replica.digest(), true, 20);
        replica.apply(&d1, true);
        let d2 = auth.delta_for(&replica.digest(), true, 30);
        assert!(d2.is_empty());
        assert_eq!(replica.apply(&d2, true), ApplyOutcome::default());
    }

    #[test]
    fn epochs_never_regress_on_apply() {
        let mut t = SyncTable::new();
        t.define(b"a".to_vec(), bind(1), 100);
        let e = t.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        let out = t.apply(
            &[SyncEntry {
                prefix: b"a".to_vec(),
                epoch: e, // equal epoch: must not re-adopt
                binding: None,
            }],
            true,
        );
        assert_eq!(out, ApplyOutcome::default());
        assert!(t.lookup(b"a").is_some());
    }

    #[test]
    fn restart_stamps_outrank_pre_crash_entries() {
        let mut before = SyncTable::new();
        before.define(b"a".to_vec(), bind(1), 5_000_000);
        let pre_crash = before.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        // A restarted authority starts a fresh table but stamps at the
        // (later) virtual time, so its entries win.
        let mut after = SyncTable::new();
        after.define(b"a".to_vec(), bind(2), 9_000_000);
        let post_crash = after.lookup(b"a").map(|v| v.epoch).unwrap_or(0);
        assert!(post_crash > pre_crash);
    }

    #[test]
    fn promotion_counts_unverified_entries() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 10);
        let mut replica = SyncTable::new();
        replica.preload(b"a".to_vec(), bind(1));
        assert!(replica.lookup(b"a").is_some_and(|e| !e.verified));
        let delta = auth.delta_for(&replica.digest(), true, 20);
        let out = replica.apply(&delta, true);
        assert_eq!(out.promoted, 1);
        assert!(replica.lookup(b"a").is_some_and(|e| e.verified));
    }

    /// Regression (ISSUE 5): deleting a name that was never defined must
    /// not stamp a tombstone — otherwise delete-of-unknown churn grows
    /// the table forever.
    #[test]
    fn deleting_an_unknown_prefix_is_a_no_op() {
        let mut t = SyncTable::new();
        t.define(b"a".to_vec(), bind(1), 10);
        let hash = t.table_hash();
        let epoch = t.max_epoch();
        for i in 0..100u32 {
            let name = format!("never-{i}").into_bytes();
            assert_eq!(
                t.tombstone(&name, 20 + u64::from(i)),
                TombstoneOutcome::Unknown
            );
        }
        assert_eq!(t.table_hash(), hash, "table changed by no-op deletes");
        assert_eq!(t.tombstone_len(), 0);
        assert_eq!(t.max_epoch(), epoch, "epoch clock moved by no-op deletes");
        // Known names still tombstone normally, live or already dead.
        assert_eq!(t.tombstone(b"a", 200), TombstoneOutcome::DroppedLive);
        assert_eq!(t.tombstone(b"a", 300), TombstoneOutcome::AlreadyDead);
        assert_eq!(t.tombstone_len(), 1);
    }

    /// Regression (ISSUE 5): a digest carrying an absurd epoch (corrupt or
    /// hostile) must not be written into the authority's epoch clock —
    /// one poisoned digest would inflate every stamp thereafter.
    #[test]
    fn hostile_digest_epoch_cannot_poison_the_clock() {
        let mut auth = SyncTable::new();
        auth.define(b"a".to_vec(), bind(1), 1_000);
        let now_ns = 2_000;
        let hostile = [SyncDigestEntry {
            prefix: b"evil".to_vec(),
            epoch: u64::MAX - 7,
            tombstone: false,
        }];
        let delta = auth.delta_for(&hostile, true, now_ns);
        // The hostile entry is rejected outright: no tombstone stamped
        // for it, nothing keyed off its epoch.
        assert!(delta.iter().all(|e| e.prefix != b"evil"));
        assert!(auth.max_epoch() <= now_ns + MAX_EPOCH_SKEW_NS);
        // The clock still stamps sanely afterwards.
        auth.define(b"b".to_vec(), bind(2), 3_000);
        assert!(auth.max_epoch() < 1_000_000);
        // An epoch within the skew bound is still honoured (the normal
        // unknown-prefix tombstone path).
        let plausible = [SyncDigestEntry {
            prefix: b"stale".to_vec(),
            epoch: now_ns,
            tombstone: false,
        }];
        let delta = auth.delta_for(&plausible, true, now_ns);
        assert!(delta
            .iter()
            .any(|e| e.prefix == b"stale" && e.binding.is_none()));
    }

    #[test]
    fn horizon_is_min_watermark_and_starts_at_zero() {
        let mut auth = SyncTable::new();
        assert_eq!(auth.horizon(), 0, "no replicas known: collect nothing");
        auth.record_watermark(1, 500);
        assert_eq!(auth.horizon(), 500);
        auth.record_watermark(2, 300);
        assert_eq!(auth.horizon(), 300, "slowest replica pins the horizon");
        // Watermarks are monotone: a delayed, older report cannot regress.
        auth.record_watermark(1, 100);
        assert_eq!(auth.horizon(), 300);
        auth.record_watermark(2, 900);
        assert_eq!(auth.horizon(), 500);
    }

    #[test]
    fn gc_drops_only_tombstones_at_or_below_horizon() {
        let mut t = SyncTable::new();
        t.define(b"live".to_vec(), bind(1), 100);
        t.define(b"old".to_vec(), bind(2), 200);
        t.define(b"new".to_vec(), bind(3), 300);
        t.tombstone(b"old", 400);
        t.tombstone(b"new", 500);
        let old_epoch = 400; // stamps are >= now, monotone
        assert_eq!(t.gc_below(old_epoch), 1, "only the old tombstone goes");
        assert_eq!(t.tombstone_len(), 1);
        assert!(t.lookup(b"live").is_some(), "live entries are never GC'd");
        assert_eq!(t.gc_below(old_epoch), 0, "idempotent");
        assert_eq!(t.gc_horizon(), old_epoch);
        assert_eq!(t.gc_below(u64::MAX), 1, "rest goes when the horizon passes");
        assert_eq!(t.tombstone_len(), 0);
    }

    #[test]
    fn gcd_tombstone_in_digest_is_not_restamped() {
        let mut auth = SyncTable::new();
        auth.define(b"gone".to_vec(), bind(1), 100);
        auth.tombstone(b"gone", 200);
        let tomb_epoch = auth
            .digest()
            .iter()
            .find(|d| d.prefix == b"gone")
            .map(|d| d.epoch)
            .unwrap_or(0);
        auth.record_watermark(1, tomb_epoch);
        let dropped = auth.gc_below(auth.horizon());
        assert_eq!(dropped, 1);
        // The replica still holds the tombstone and digests it; the
        // authority must recognize it as collected, not stamp it afresh.
        let replica_digest = [SyncDigestEntry {
            prefix: b"gone".to_vec(),
            epoch: tomb_epoch,
            tombstone: true,
        }];
        let delta = auth.delta_for(&replica_digest, true, 300);
        assert!(delta.is_empty(), "GC'd tombstone resurrected: {delta:?}");
        assert_eq!(auth.tombstone_len(), 0);
    }

    #[test]
    fn gossip_deltas_never_carry_preloads() {
        let mut peer = SyncTable::new();
        peer.preload(b"hearsay".to_vec(), bind(9));
        peer.apply(
            &[SyncEntry {
                prefix: b"real".to_vec(),
                epoch: 50,
                binding: Some(bind(1)),
            }],
            true,
        );
        let empty_digest: [SyncDigestEntry; 0] = [];
        let delta = peer.delta_for(&empty_digest, false, 1_000);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].prefix, b"real");
    }

    #[test]
    fn gossip_adoption_stays_unverified_until_vouched() {
        let mut replica = SyncTable::new();
        let out = replica.apply(
            &[SyncEntry {
                prefix: b"p".to_vec(),
                epoch: 10,
                binding: Some(bind(1)),
            }],
            false,
        );
        assert_eq!(out.adopted, 1);
        assert_eq!(out.promoted, 0);
        assert!(replica.lookup(b"p").is_some_and(|e| !e.verified));
        assert_eq!(replica.mark_all_verified(), 1);
    }

    #[test]
    fn watermark_moves_only_on_note_synced() {
        let mut replica = SyncTable::new();
        assert_eq!(replica.watermark(), 0);
        // Gossip adoption raises epochs but not the watermark.
        replica.apply(
            &[SyncEntry {
                prefix: b"p".to_vec(),
                epoch: 700,
                binding: Some(bind(1)),
            }],
            false,
        );
        assert_eq!(replica.watermark(), 0);
        replica.note_synced(500);
        assert_eq!(replica.watermark(), 500);
        replica.note_synced(400); // monotone
        assert_eq!(replica.watermark(), 500);
    }
}
