//! The printer server (paper §6's "V kernel-based laser printer server").
//!
//! Print jobs are named objects in a queue context: created by opening a
//! fresh name for writing, fed via the I/O protocol, and visible — with
//! their queue position — through the same context-directory mechanism as
//! every other object type.

use crate::common::{reply_code, reply_data, reply_descriptor};
use std::collections::BTreeMap;
use vio::{serve_read, InstanceTable};
use vkernel::Ipc;
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, CsName, DescriptorExt, DescriptorTag, InstanceId, Message, ObjectDescriptor, ObjectId,
    OpenMode, ReplyCode, RequestCode, Scope, ServiceId,
};

/// Configuration for a [`printer_server`] process.
#[derive(Debug, Clone)]
pub struct PrinterConfig {
    /// Registration scope (printers are public: `Both` by default).
    pub scope: Scope,
}

impl Default for PrinterConfig {
    fn default() -> Self {
        PrinterConfig { scope: Scope::Both }
    }
}

struct Job {
    id: ObjectId,
    data: Vec<u8>,
    submitted: u64,
    /// Order key within the queue.
    seq: u64,
}

/// Runs a printer server until the domain shuts down.
///
/// `RemoveObject` on the job at the head of the queue models the printer
/// finishing (or an operator cancelling) a job; every job behind it moves
/// up one position in the fabricated directory.
pub fn printer_server(ctx: &dyn Ipc, config: PrinterConfig) {
    let mut jobs: BTreeMap<Vec<u8>, Job> = BTreeMap::new();
    let mut instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut dir_instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut next_obj = 0u32;
    let mut clock = 0u64;
    ctx.set_pid(ServiceId::PRINT_SERVER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let name = req.remaining().to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateInstance) => {
                    if name.is_empty() {
                        // Queue directory, ordered by submission.
                        let mut ordered: Vec<(&Vec<u8>, &Job)> = jobs.iter().collect();
                        ordered.sort_by_key(|(_, j)| j.seq);
                        let mut b = DirectoryBuilder::new();
                        for (pos, (n, j)) in ordered.iter().enumerate() {
                            b.push(&job_descriptor(n, j, pos as u32));
                        }
                        let snapshot = b.finish();
                        let size = snapshot.len() as u64;
                        let inst = dir_instances.open(rx.from, OpenMode::Directory, snapshot);
                        let mut m = Message::ok();
                        m.set_word(fields::W_INSTANCE, inst.0)
                            .set_word32(fields::W_SIZE_LO, size as u32)
                            .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                        reply_data(ctx, rx, m, Vec::new());
                        continue;
                    }
                    let mode = msg.mode().unwrap_or(OpenMode::Read);
                    if !jobs.contains_key(&name) {
                        if mode == OpenMode::Create {
                            clock += 1;
                            next_obj += 1;
                            jobs.insert(
                                name.clone(),
                                Job {
                                    id: ObjectId(next_obj),
                                    data: Vec::new(),
                                    submitted: clock,
                                    seq: clock,
                                },
                            );
                        } else {
                            reply_code(ctx, rx, ReplyCode::NotFound);
                            continue;
                        }
                    }
                    let size = jobs[&name].data.len() as u64;
                    let inst = instances.open(rx.from, mode, name);
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Some(RequestCode::QueryObject) => {
                    let mut ordered: Vec<(&Vec<u8>, &Job)> = jobs.iter().collect();
                    ordered.sort_by_key(|(_, j)| j.seq);
                    match ordered.iter().position(|(n, _)| **n == name) {
                        Some(pos) => {
                            let j = &jobs[&name];
                            reply_descriptor(ctx, rx, &job_descriptor(&name, j, pos as u32));
                        }
                        None => reply_code(ctx, rx, ReplyCode::NotFound),
                    }
                }
                Some(RequestCode::RemoveObject) => {
                    let code = if jobs.remove(&name).is_some() {
                        ReplyCode::Ok
                    } else {
                        ReplyCode::NotFound
                    };
                    reply_code(ctx, rx, code);
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::WriteInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let data = match ctx.move_from(&rx) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let code = match instances.check(id, true) {
                    Ok(inst) => match jobs.get_mut(&inst.state) {
                        Some(j) => {
                            j.data.extend_from_slice(&data);
                            ReplyCode::Ok
                        }
                        None => ReplyCode::InvalidInstance,
                    },
                    Err(c) => c,
                };
                let mut m = Message::reply(code);
                m.set_word(fields::W_IO_COUNT, data.len() as u16);
                reply_data(ctx, rx, m, Vec::new());
            }
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                let window: Result<Vec<u8>, ReplyCode> =
                    if let Ok(inst) = instances.check(id, false) {
                        match jobs.get(&inst.state) {
                            Some(j) => serve_read(&j.data, offset, count).map(|w| w.to_vec()),
                            None => Err(ReplyCode::InvalidInstance),
                        }
                    } else if let Ok(inst) = dir_instances.check(id, false) {
                        serve_read(&inst.state, offset, count).map(|w| w.to_vec())
                    } else {
                        Err(ReplyCode::InvalidInstance)
                    };
                match window {
                    Ok(w) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, w.len() as u16);
                        reply_data(ctx, rx, m, w);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if instances.release(id).is_some() || dir_instances.release(id).is_some()
                {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

fn job_descriptor(name: &[u8], j: &Job, position: u32) -> ObjectDescriptor {
    ObjectDescriptor::new(DescriptorTag::PrintJob, CsName::from(name))
        .with_object_id(j.id)
        .with_size(j.data.len() as u64)
        .with_modified(j.submitted)
        .with_ext(DescriptorExt::PrintJob {
            queue_position: position,
        })
}
