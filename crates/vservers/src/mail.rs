//! The computer-mail naming server — the paper's extensibility argument
//! (§2.2) made concrete.
//!
//! Mailbox names like `cheriton@su-score.ARPA` follow a syntax "imposed by
//! standards established outside of the system". In the distributed model
//! they fit naturally: the mail server interprets its own syntax (splitting
//! at `@`), owns the mailboxes it names, and — when the host part names a
//! *different* mail server — forwards the request there under the ordinary
//! name-handling protocol, with the peer re-interpreting the full name.
//! No client, run-time routine, or other server knows anything about `@`.

use crate::common::{forward_csname, reply_code, reply_data, reply_descriptor};
use std::collections::BTreeMap;
use vio::{serve_read, InstanceTable};
use vkernel::Ipc;
use vnaming::{CsRequest, DirectoryBuilder};
use vproto::{
    fields, ContextId, CsName, DescriptorExt, DescriptorTag, InstanceId, Message, ObjectDescriptor,
    ObjectId, OpenMode, Pid, ReplyCode, RequestCode, Scope, ServiceId,
};

/// Configuration for a [`mail_server`] process.
#[derive(Debug, Clone)]
pub struct MailConfig {
    /// This server's host name (the part after `@` it claims).
    pub host: String,
    /// Peer mail servers by host name; names with these host parts are
    /// forwarded (index unchanged — the peer re-interprets the full name).
    pub peers: Vec<(String, Pid)>,
    /// Registration scope.
    pub scope: Scope,
}

impl MailConfig {
    /// Creates a config for a server claiming `host`, with no peers.
    pub fn new(host: impl Into<String>) -> Self {
        MailConfig {
            host: host.into(),
            peers: Vec::new(),
            scope: Scope::Both,
        }
    }

    /// Adds a peer mail server for `host`.
    pub fn with_peer(mut self, host: impl Into<String>, pid: Pid) -> Self {
        self.peers.push((host.into(), pid));
        self
    }
}

struct Mailbox {
    id: ObjectId,
    messages: Vec<u8>,
    unread: u32,
    modified: u64,
}

/// Splits `user@host`; names without `@` are local users.
fn split_mail_name(name: &[u8]) -> (&[u8], Option<&[u8]>) {
    match name.iter().position(|&b| b == b'@') {
        Some(i) => (&name[..i], Some(&name[i + 1..])),
        None => (name, None),
    }
}

/// Runs a mail naming server until the domain shuts down.
pub fn mail_server(ctx: &dyn Ipc, config: MailConfig) {
    let mut boxes: BTreeMap<Vec<u8>, Mailbox> = BTreeMap::new();
    let mut instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut dir_instances: InstanceTable<Vec<u8>> = InstanceTable::new();
    let mut next_obj = 0u32;
    let mut clock = 0u64;
    ctx.set_pid(ServiceId::MAIL_SERVER, config.scope);

    while let Ok(rx) = ctx.receive() {
        let msg = rx.msg;
        if msg.is_csname_request() {
            let payload = match ctx.move_from(&rx) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let req = match CsRequest::parse(&msg, &payload) {
                Ok(r) => r,
                Err(code) => {
                    reply_code(ctx, rx, code);
                    continue;
                }
            };
            let full = req.remaining().to_vec();
            let (user, host) = split_mail_name(&full);

            // Foreign host? Forward to the peer; it re-interprets the whole
            // name (index unchanged), so the protocol needs no knowledge of
            // the `@` syntax.
            if let Some(h) = host {
                if h != config.host.as_bytes() {
                    match config.peers.iter().find(|(peer, _)| peer.as_bytes() == h) {
                        Some((_, pid)) => {
                            let _ = forward_csname(ctx, rx, *pid, ContextId::DEFAULT, req.index);
                        }
                        None => reply_code(ctx, rx, ReplyCode::NotFound),
                    }
                    continue;
                }
            }
            let user = user.to_vec();
            match msg.request_code() {
                Some(RequestCode::CreateInstance) => {
                    if user.is_empty() {
                        // Directory of local mailboxes.
                        let mut b = DirectoryBuilder::new();
                        for (n, mb) in &boxes {
                            b.push(&mailbox_descriptor(n, mb, &config));
                        }
                        let snapshot = b.finish();
                        let size = snapshot.len() as u64;
                        let inst = dir_instances.open(rx.from, OpenMode::Directory, snapshot);
                        let mut m = Message::ok();
                        m.set_word(fields::W_INSTANCE, inst.0)
                            .set_word32(fields::W_SIZE_LO, size as u32)
                            .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                        reply_data(ctx, rx, m, Vec::new());
                        continue;
                    }
                    let mode = msg.mode().unwrap_or(OpenMode::Read);
                    if !boxes.contains_key(&user) {
                        if mode == OpenMode::Create || mode == OpenMode::Append {
                            clock += 1;
                            next_obj += 1;
                            boxes.insert(
                                user.clone(),
                                Mailbox {
                                    id: ObjectId(next_obj),
                                    messages: Vec::new(),
                                    unread: 0,
                                    modified: clock,
                                },
                            );
                        } else {
                            reply_code(ctx, rx, ReplyCode::NotFound);
                            continue;
                        }
                    }
                    if mode == OpenMode::Read {
                        // Reading the mailbox marks it read.
                        if let Some(mb) = boxes.get_mut(&user) {
                            mb.unread = 0;
                        }
                    }
                    let size = boxes[&user].messages.len() as u64;
                    let inst = instances.open(rx.from, mode, user);
                    let mut m = Message::ok();
                    m.set_word(fields::W_INSTANCE, inst.0)
                        .set_word32(fields::W_SIZE_LO, size as u32)
                        .set_pid_at(fields::W_PID_LO, ctx.my_pid());
                    reply_data(ctx, rx, m, Vec::new());
                }
                Some(RequestCode::QueryObject) => match boxes.get(&user) {
                    Some(mb) => reply_descriptor(ctx, rx, &mailbox_descriptor(&user, mb, &config)),
                    None => reply_code(ctx, rx, ReplyCode::NotFound),
                },
                Some(RequestCode::RemoveObject) => {
                    let code = if boxes.remove(&user).is_some() {
                        ReplyCode::Ok
                    } else {
                        ReplyCode::NotFound
                    };
                    reply_code(ctx, rx, code);
                }
                _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
            }
            continue;
        }
        match msg.request_code() {
            Some(RequestCode::WriteInstance) => {
                // Delivery: append one message.
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let data = match ctx.move_from(&rx) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                let code = match instances.check(id, true) {
                    Ok(inst) => match boxes.get_mut(&inst.state) {
                        Some(mb) => {
                            clock += 1;
                            mb.messages.extend_from_slice(&data);
                            mb.messages.push(b'\n');
                            mb.unread += 1;
                            mb.modified = clock;
                            ReplyCode::Ok
                        }
                        None => ReplyCode::InvalidInstance,
                    },
                    Err(c) => c,
                };
                let mut m = Message::reply(code);
                m.set_word(fields::W_IO_COUNT, data.len() as u16);
                reply_data(ctx, rx, m, Vec::new());
            }
            Some(RequestCode::ReadInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let offset = msg.word32(fields::W_IO_OFFSET_LO) as u64;
                let count = msg.word(fields::W_IO_COUNT) as usize;
                let window: Result<Vec<u8>, ReplyCode> =
                    if let Ok(inst) = instances.check(id, false) {
                        match boxes.get(&inst.state) {
                            Some(mb) => serve_read(&mb.messages, offset, count).map(|w| w.to_vec()),
                            None => Err(ReplyCode::InvalidInstance),
                        }
                    } else if let Ok(inst) = dir_instances.check(id, false) {
                        serve_read(&inst.state, offset, count).map(|w| w.to_vec())
                    } else {
                        Err(ReplyCode::InvalidInstance)
                    };
                match window {
                    Ok(w) => {
                        let mut m = Message::ok();
                        m.set_word(fields::W_IO_COUNT, w.len() as u16);
                        reply_data(ctx, rx, m, w);
                    }
                    Err(code) => reply_code(ctx, rx, code),
                }
            }
            Some(RequestCode::ReleaseInstance) => {
                let id = InstanceId(msg.word(fields::W_IO_INSTANCE));
                let code = if instances.release(id).is_some() || dir_instances.release(id).is_some()
                {
                    ReplyCode::Ok
                } else {
                    ReplyCode::InvalidInstance
                };
                reply_code(ctx, rx, code);
            }
            _ => reply_code(ctx, rx, ReplyCode::UnknownRequest),
        }
    }
}

fn mailbox_descriptor(user: &[u8], mb: &Mailbox, config: &MailConfig) -> ObjectDescriptor {
    let mut full = user.to_vec();
    full.push(b'@');
    full.extend_from_slice(config.host.as_bytes());
    ObjectDescriptor::new(DescriptorTag::Mailbox, CsName::from(full))
        .with_object_id(mb.id)
        .with_size(mb.messages.len() as u64)
        .with_modified(mb.modified)
        .with_ext(DescriptorExt::Mailbox { unread: mb.unread })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_name_splitting() {
        assert_eq!(
            split_mail_name(b"cheriton@su-score.ARPA"),
            (&b"cheriton"[..], Some(&b"su-score.ARPA"[..]))
        );
        assert_eq!(split_mail_name(b"localuser"), (&b"localuser"[..], None));
        assert_eq!(split_mail_name(b"@host"), (&b""[..], Some(&b"host"[..])));
        assert_eq!(split_mail_name(b"a@"), (&b"a"[..], Some(&b""[..])));
    }
}
