//! The time server — the paper's example of a *simple* service (§4.2):
//! "With simple services like time, the client typically translates from
//! service to real server pid on each operation."

use bytes::Bytes;
use vkernel::{Ipc, IpcError};
use vproto::{fields, Message, ReplyCode, RequestCode, Scope, ServiceId};

/// Configuration for a [`time_server`] process.
#[derive(Debug, Clone, Default)]
pub struct TimeConfig {
    /// Registration scope.
    pub scope: Scope,
}

/// Runs a time server until the domain shuts down. Replies to `GetTime`
/// with the domain clock (wall or virtual, per the kernel).
pub fn time_server(ctx: &dyn Ipc, config: TimeConfig) {
    ctx.set_pid(ServiceId::TIME_SERVER, config.scope);
    while let Ok(rx) = ctx.receive() {
        match rx.msg.request_code() {
            Some(RequestCode::GetTime) => {
                let mut m = Message::ok();
                m.set_word32(fields::W_TIME_LO, ctx.now().as_secs() as u32);
                let _ = ctx.reply(rx, m, Bytes::new());
            }
            _ => {
                let _ = ctx.reply(rx, Message::reply(ReplyCode::UnknownRequest), Bytes::new());
            }
        }
    }
}

/// The client side, exactly as §4.2 describes: a `GetPid` *per call*, then
/// the transaction. No binding is retained, so a restarted time server is
/// picked up transparently.
///
/// # Errors
///
/// [`ReplyCode::NoServer`] (as an [`IpcError`]-free server error is not
/// available here, so `Err(IpcError::NoProcess)`) when no time server is
/// registered; transport failures otherwise.
pub fn get_time(ctx: &dyn Ipc) -> Result<u32, IpcError> {
    let server = ctx
        .get_pid(ServiceId::TIME_SERVER, Scope::Both)
        .ok_or(IpcError::NoProcess)?;
    let reply = ctx.send(
        server,
        Message::request(RequestCode::GetTime),
        Bytes::new(),
        0,
    )?;
    Ok(reply.msg.word32(fields::W_TIME_LO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::Domain;

    #[test]
    fn get_time_rebinds_per_call_across_restarts() {
        let domain = Domain::new();
        let host = domain.add_host();
        let v1 = domain.spawn(host, "time-v1", |ctx| {
            time_server(ctx, TimeConfig::default())
        });
        while domain
            .registry()
            .lookup(ServiceId::TIME_SERVER, Scope::Both, host)
            .is_none()
        {
            std::thread::yield_now();
        }
        let d = domain.clone();
        domain.client(host, move |ctx| {
            get_time(ctx).unwrap();
            // Crash and restart the service; the next call just works
            // because binding happens at time of use (paper §4.2).
            d.kill(v1);
            let _v2 = d.spawn(host, "time-v2", |ctx| {
                time_server(ctx, TimeConfig::default())
            });
            while d
                .registry()
                .lookup(ServiceId::TIME_SERVER, Scope::Both, host)
                .is_none()
            {
                std::thread::yield_now();
            }
            get_time(ctx).unwrap();
        });
    }

    #[test]
    fn no_server_is_a_clean_error() {
        let domain = Domain::new();
        let host = domain.add_host();
        domain.client(host, |ctx| {
            assert_eq!(get_time(ctx), Err(IpcError::NoProcess));
        });
    }
}
