//! Tests for the pipe server: blocking reads via deferred replies, EOF
//! propagation, capacity limits — on both kernels.

use vkernel::{Domain, SimDomain};
use vnet::Params1984;
use vproto::{ContextId, ContextPair, OpenMode, ReplyCode, Scope, ServiceId};
use vruntime::NameClient;
use vservers::{pipe_server, PipeConfig};

fn wait_for(domain: &Domain, host: vproto::LogicalHost) {
    while domain
        .registry()
        .lookup(ServiceId::PIPE_SERVER, Scope::Both, host)
        .is_none()
    {
        std::thread::yield_now();
    }
}

#[test]
fn write_then_read_same_client() {
    let domain = Domain::new();
    let host = domain.add_host();
    let srv = domain.spawn(host, "pipes", |ctx| pipe_server(ctx, PipeConfig::default()));
    wait_for(&domain, host);
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
        let mut w = client.open("p", OpenMode::Write).unwrap();
        let mut r = client.open("p", OpenMode::Read).unwrap();
        w.write_next(ctx, b"through the pipe").unwrap();
        let data = r.read_next(ctx).unwrap().unwrap();
        assert_eq!(&data[..], b"through the pipe");
        // Close the writer; the reader then sees EOF.
        w.close(ctx).unwrap();
        assert!(r.read_next(ctx).unwrap().is_none());
        r.close(ctx).unwrap();
    });
}

#[test]
fn empty_read_blocks_until_writer_produces() {
    // The deferred-reply path: a reader blocks in its Send while the server
    // keeps serving; a later write releases it with the data.
    let domain = Domain::new();
    let host = domain.add_host();
    let srv = domain.spawn(host, "pipes", |ctx| pipe_server(ctx, PipeConfig::default()));
    wait_for(&domain, host);

    let (tx, rx_chan) = crossbeam::channel::bounded::<Vec<u8>>(1);
    let d = domain.clone();
    let reader = std::thread::spawn(move || {
        d.client(host, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
            let mut r = client.open("blocked", OpenMode::Read).unwrap();
            // This read arrives before any data exists.
            let data = r.read_next(ctx).unwrap().unwrap();
            let _ = tx.send(data.to_vec());
        })
    });
    // Give the reader time to block inside the server.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(rx_chan.is_empty(), "reader must still be blocked");
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
        let mut w = client.open("blocked", OpenMode::Write).unwrap();
        w.write_next(ctx, b"finally").unwrap();
        w.close(ctx).unwrap();
    });
    assert_eq!(rx_chan.recv().unwrap(), b"finally");
    reader.join().unwrap();
}

#[test]
fn producer_consumer_on_the_sim_kernel_is_deterministic() {
    let run = || {
        let domain = SimDomain::new(Params1984::ethernet_3mbit());
        let host = domain.add_host();
        let srv = domain.spawn(host, "pipes", |ctx| pipe_server(ctx, PipeConfig::default()));
        domain.run();
        let collected = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let out = std::sync::Arc::clone(&collected);
        domain.spawn(host, "consumer", move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
            let mut r = client.open("stream", OpenMode::Read).unwrap();
            while let Some(chunk) = r.read_next(ctx).unwrap() {
                out.lock().unwrap().extend_from_slice(&chunk);
            }
        });
        domain.spawn(host, "producer", move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
            let mut w = client.open("stream", OpenMode::Write).unwrap();
            for i in 0..5u8 {
                w.write_next(ctx, &[i; 10]).unwrap();
                ctx.sleep(std::time::Duration::from_millis(3));
            }
            w.close(ctx).unwrap();
        });
        let end = domain.run();
        let data = collected.lock().unwrap().clone();
        (data, end.as_nanos())
    };
    let (data_a, t_a) = run();
    let (data_b, t_b) = run();
    assert_eq!(data_a.len(), 50);
    assert_eq!(data_a, data_b);
    assert_eq!(t_a, t_b, "pipe scheduling must be deterministic");
}

#[test]
fn capacity_limit_refuses_oversized_writes() {
    let domain = Domain::new();
    let host = domain.add_host();
    let srv = domain.spawn(host, "pipes", |ctx| {
        pipe_server(
            ctx,
            PipeConfig {
                capacity: 16,
                ..PipeConfig::default()
            },
        )
    });
    wait_for(&domain, host);
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
        let mut w = client.open("small", OpenMode::Write).unwrap();
        w.write_next(ctx, &[0u8; 16]).unwrap();
        let err = w.write_next(ctx, &[0u8; 1]).unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NoServerResources));
        // Draining the pipe makes room again.
        let mut r = client.open("small", OpenMode::Read).unwrap();
        assert_eq!(r.read_next(ctx).unwrap().unwrap().len(), 16);
        w.write_next(ctx, &[1u8; 8]).unwrap();
    });
}

#[test]
fn removing_a_pipe_releases_blocked_readers() {
    let domain = Domain::new();
    let host = domain.add_host();
    let srv = domain.spawn(host, "pipes", |ctx| pipe_server(ctx, PipeConfig::default()));
    wait_for(&domain, host);
    let d = domain.clone();
    let reader = std::thread::spawn(move || {
        d.client(host, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
            let mut r = client.open("doomed", OpenMode::Read).unwrap();
            r.read_next(ctx).unwrap() // EOF (None) once the pipe is removed
        })
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(srv, ContextId::DEFAULT));
        client.remove("doomed").unwrap();
    });
    assert!(reader.join().unwrap().is_none());
}
