//! Integration tests for the CSNH servers, driven through the standard
//! run-time routines on the real-thread kernel.

use bytes::Bytes;
use vkernel::Domain;
use vnaming::build_csname_request;
use vproto::{
    fields, ContextId, ContextPair, CsName, DescriptorExt, DescriptorTag, Message, OpenMode, Pid,
    ReplyCode, RequestCode, Scope, ServiceId,
};
use vruntime::NameClient;
use vservers::{
    file_server, mail_server, prefix_server, printer_server, program_manager, terminal_server,
    FileServerConfig, MailConfig, PrefixConfig, PrinterConfig, ProgramConfig, TerminalConfig,
};

/// Boots a one-workstation V installation: a prefix server and a file
/// server (with home + bin), returning the domain and host.
fn boot() -> (Domain, vproto::LogicalHost, Pid, Pid) {
    let domain = Domain::new();
    let host = domain.add_host();
    let fs = domain.spawn(host, "fileserver", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                preload: vec![
                    ("ng/mann/naming.mss".into(), b"The V naming paper".to_vec()),
                    ("ng/cheriton/naming.mss".into(), b"Another copy".to_vec()),
                    ("bin/ls".into(), b"binary".to_vec()),
                ],
                home: Some("ng/mann".into()),
                bin: Some("bin".into()),
                ..FileServerConfig::default()
            },
        )
    });
    let pfx = domain.spawn(host, "prefix", |ctx| {
        prefix_server(ctx, PrefixConfig::default())
    });
    wait_for(&domain, host, ServiceId::CONTEXT_PREFIX);
    wait_for(&domain, host, ServiceId::FILE_SERVER);
    (domain, host, fs, pfx)
}

fn wait_for(domain: &Domain, host: vproto::LogicalHost, svc: ServiceId) {
    while domain.registry().lookup(svc, Scope::Both, host).is_none() {
        std::thread::yield_now();
    }
}

/// Defines the standard prefixes a user's workstation would set up.
fn setup_prefixes(client: &NameClient<'_>, fs: Pid) {
    client
        .add_prefix("storage", ContextPair::new(fs, ContextId::DEFAULT))
        .unwrap();
    client
        .add_prefix("home", ContextPair::new(fs, ContextId::HOME))
        .unwrap();
    client
        .add_prefix("bin", ContextPair::new(fs, ContextId::STANDARD_PROGRAMS))
        .unwrap();
}

#[test]
fn open_read_through_prefix_and_current_context() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let boot_client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&boot_client, fs);

        // Through the prefix server.
        let data = boot_client.read_file("[home]naming.mss").unwrap();
        assert_eq!(data, b"The V naming paper");

        // Same file via a different prefix and a longer path — the paper's
        // own example of context-dependent interpretation (§5.2).
        let data2 = boot_client
            .read_file("[storage]ng/mann/naming.mss")
            .unwrap();
        assert_eq!(data2, data);

        // In the current context, no prefix at all.
        let mut client = NameClient::login(ctx, "[home]").unwrap();
        let data3 = client.read_file("naming.mss").unwrap();
        assert_eq!(data3, data);

        // And after a change of current context.
        client.change_context("[storage]ng/cheriton").unwrap();
        assert_eq!(client.read_file("naming.mss").unwrap(), b"Another copy");
    });
}

#[test]
fn write_query_modify_remove_rename() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);

        client
            .write_file("[home]todo.txt", b"reproduce the paper")
            .unwrap();
        let d = client.query("[home]todo.txt").unwrap();
        assert_eq!(d.tag(), Some(DescriptorTag::File));
        assert_eq!(d.size, 19);

        // Modify access-control bits — the paper's §5.5 example.
        let mut d2 = d.clone();
        d2.permissions = vproto::Permissions(vproto::Permissions::READ);
        client.modify("[home]todo.txt", &d2).unwrap();
        let d3 = client.query("[home]todo.txt").unwrap();
        assert_eq!(
            d3.permissions,
            vproto::Permissions(vproto::Permissions::READ)
        );

        client.rename("[home]todo.txt", "done.txt").unwrap();
        assert!(client.query("[home]todo.txt").is_err());
        assert_eq!(
            client.read_file("[home]done.txt").unwrap(),
            b"reproduce the paper"
        );

        client.remove("[home]done.txt").unwrap();
        assert!(client.read_file("[home]done.txt").is_err());
    });
}

#[test]
fn directories_create_and_refuse_nonempty_removal() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        client.make_directory("[home]projects").unwrap();
        client
            .write_file("[home]projects/x.rs", b"fn main(){}")
            .unwrap();
        let err = client.remove("[home]projects").unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NotEmpty));
        client.remove("[home]projects/x.rs").unwrap();
        client.remove("[home]projects").unwrap();
    });
}

#[test]
fn list_directory_returns_typed_records_with_patterns() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        let all = client.list_directory("[storage]ng/mann", None).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name.to_string_lossy(), "naming.mss");

        let listing = client.list_directory("[storage]ng", None).unwrap();
        let names: Vec<String> = listing.iter().map(|d| d.name.to_string_lossy()).collect();
        assert_eq!(names, ["cheriton", "mann"]);
        assert!(listing
            .iter()
            .all(|d| d.tag() == Some(DescriptorTag::Directory)));

        // Pattern matching (the paper's §5.6 proposed extension).
        client.write_file("[home]a.rs", b"x").unwrap();
        client.write_file("[home]b.txt", b"y").unwrap();
        let rs_only = client.list_directory("[home]", Some("*.rs")).unwrap();
        assert_eq!(rs_only.len(), 1);
        assert_eq!(rs_only[0].name.to_string_lossy(), "a.rs");
    });
}

#[test]
fn cross_server_link_forwards_mid_name() {
    // Figure 4's curved arrow: a name that starts on server A and finishes
    // on server B, with the request forwarded mid-interpretation.
    let (domain, host, fs_a, _) = boot();
    let fs_b = domain.spawn(host, "fileserver-b", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                service_scope: None,
                preload: vec![("shared/paper.txt".into(), b"on server B".to_vec())],
                ..FileServerConfig::default()
            },
        )
    });
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs_a, ContextId::DEFAULT));
        setup_prefixes(&client, fs_a);
        // Link [home]remote -> B's root context.
        client
            .add_link("[home]remote", ContextPair::new(fs_b, ContextId::DEFAULT))
            .unwrap();
        // One name, two servers.
        let data = client.read_file("[home]remote/shared/paper.txt").unwrap();
        assert_eq!(data, b"on server B");
        // The responding server is B, transparently to the client.
        let handle = client
            .open("[home]remote/shared/paper.txt", OpenMode::Read)
            .unwrap();
        assert_eq!(handle.server(), fs_b);
        // The link appears in the directory listing as a context pointer.
        let listing = client.list_directory("[home]", None).unwrap();
        let link = listing
            .iter()
            .find(|d| d.name.to_string_lossy() == "remote")
            .unwrap();
        assert_eq!(link.tag(), Some(DescriptorTag::ContextPrefix));
    });
}

#[test]
fn logical_prefix_survives_server_crash_and_rebind() {
    // Paper §4.2 + §6: logical (service, well-known-context) prefixes are
    // re-resolved via GetPid on each use, so a restarted server with a new
    // pid keeps its names working.
    let (domain, host, fs_v1, _) = boot();
    let check = |expect: &'static [u8], label: &'static str| {
        let d = domain.clone();
        d.client(host, move |ctx| {
            let client = NameClient::new(ctx, ContextPair::new(Pid::NULL, ContextId::DEFAULT));
            client
                .add_logical_prefix("files", ServiceId::FILE_SERVER, ContextId::HOME)
                .unwrap();
            let data = client.read_file("[files]naming.mss").unwrap();
            assert_eq!(data, expect, "{label}");
        });
    };
    check(b"The V naming paper", "before crash");

    domain.kill(fs_v1);
    let _fs_v2 = domain.spawn(host, "fileserver-v2", |ctx| {
        file_server(
            ctx,
            FileServerConfig {
                preload: vec![("ng/mann/naming.mss".into(), b"restored from tape".to_vec())],
                home: Some("ng/mann".into()),
                ..FileServerConfig::default()
            },
        )
    });
    wait_for(&domain, host, ServiceId::FILE_SERVER);
    check(b"restored from tape", "after rebind");
}

#[test]
fn unknown_csname_operation_is_forwarded_not_rejected() {
    // Paper §5.3: a CSNH server can process (route) CSname requests whose
    // operation codes it has never seen; the *implementing* server answers.
    let (domain, host, fs, pfx) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        let name = CsName::from("[home]naming.mss");
        let (template, payload) =
            build_csname_request(RequestCode::QueryObject, ContextId::DEFAULT, &name, &[]);
        let mut msg = Message::request_raw(0x8ABC); // unknown CSname op
        for i in 1..vproto::MSG_WORDS {
            msg.set_word(i, template.word(i));
        }
        let reply = ctx.send(pfx, msg, payload, 0).unwrap();
        // The prefix server forwarded it; the FILE SERVER (which resolved
        // the name but does not know the op) answered UnknownRequest.
        assert_eq!(reply.msg.reply_code(), ReplyCode::UnknownRequest);
    });
}

#[test]
fn prefix_directory_lists_definitions_and_inverse_maps() {
    let (domain, host, fs, pfx) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        // The prefix context itself is listable (paper §6 lists "context
        // prefixes" among the things the single list command shows).
        let client2 = NameClient::new(ctx, ContextPair::new(pfx, ContextId::DEFAULT));
        let listing = client2.list_directory("", None).unwrap();
        let names: Vec<String> = listing.iter().map(|d| d.name.to_string_lossy()).collect();
        assert_eq!(names, ["bin", "home", "storage"]);
        assert!(listing
            .iter()
            .all(|d| d.tag() == Some(DescriptorTag::ContextPrefix)));

        // Inverse mapping: (server, ctx) → "[prefix]".
        let mut msg = Message::request(RequestCode::GetContextName);
        msg.set_pid_at(fields::W_TARGET_PID_LO, fs);
        msg.set_word32(fields::W_TARGET_CTX_LO, ContextId::HOME.raw());
        let reply = ctx.send(pfx, msg, Bytes::new(), 256).unwrap();
        assert_eq!(reply.msg.reply_code(), ReplyCode::Ok);
        assert_eq!(&reply.data[..], b"[home]");

        // Deleting a prefix makes names under it fail.
        client.delete_prefix("home").unwrap();
        let err = client.read_file("[home]naming.mss").unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NotFound));
    });
}

#[test]
fn reverse_mapping_of_current_context() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let mut client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        client.change_context("[storage]ng/mann").unwrap();
        let name = client.current_context_name().unwrap();
        assert_eq!(name.to_string_lossy(), "/ng/mann");
    });
}

#[test]
fn directory_write_modifies_object() {
    // Paper §5.6: writing a description record to a context directory has
    // the semantics of the modification operation.
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        let mut handle = client.open("[home]", OpenMode::Directory).unwrap();
        let mut d = client.query("[home]naming.mss").unwrap();
        d.permissions = vproto::Permissions(vproto::Permissions::READ);
        handle.write_next(ctx, &d.encode()).unwrap();
        handle.close(ctx).unwrap();
        let after = client.query("[home]naming.mss").unwrap();
        assert_eq!(
            after.permissions,
            vproto::Permissions(vproto::Permissions::READ)
        );
    });
}

#[test]
fn terminal_server_round_trip() {
    let domain = Domain::new();
    let host = domain.add_host();
    let term = domain.spawn(host, "terminals", |ctx| {
        terminal_server(ctx, TerminalConfig::default())
    });
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(term, ContextId::DEFAULT));
        client.write_file("tty0", b"hello, 1984").unwrap();
        assert_eq!(client.read_file("tty0").unwrap(), b"hello, 1984");
        let d = client.query("tty0").unwrap();
        assert_eq!(d.tag(), Some(DescriptorTag::Terminal));
        assert!(matches!(
            d.ext,
            DescriptorExt::Terminal {
                columns: 80,
                rows: 24
            }
        ));
        let listing = client.list_directory("", None).unwrap();
        assert_eq!(listing.len(), 1);
        client.remove("tty0").unwrap();
        assert!(client.query("tty0").is_err());
    });
}

#[test]
fn printer_queue_positions_update_on_removal() {
    let domain = Domain::new();
    let host = domain.add_host();
    let prt = domain.spawn(host, "printer", |ctx| {
        printer_server(ctx, PrinterConfig::default())
    });
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(prt, ContextId::DEFAULT));
        for (job, body) in [
            ("thesis", "100 pages"),
            ("memo", "1 page"),
            ("code", "listing"),
        ] {
            client.write_file(job, body.as_bytes()).unwrap();
        }
        let listing = client.list_directory("", None).unwrap();
        let positions: Vec<(String, u32)> = listing
            .iter()
            .map(|d| {
                let pos = match d.ext {
                    DescriptorExt::PrintJob { queue_position } => queue_position,
                    _ => panic!("not a print job"),
                };
                (d.name.to_string_lossy(), pos)
            })
            .collect();
        // Queue directories list in submission order.
        assert_eq!(
            positions,
            [("thesis".into(), 0), ("memo".into(), 1), ("code".into(), 2)]
        );
        // The head job finishes; everyone moves up.
        client.remove("thesis").unwrap();
        let memo = client.query("memo").unwrap();
        assert!(matches!(
            memo.ext,
            DescriptorExt::PrintJob { queue_position: 0 }
        ));
    });
}

#[test]
fn program_manager_lists_programs_in_execution() {
    let domain = Domain::new();
    let host = domain.add_host();
    let mgr = domain.spawn(host, "programs", |ctx| {
        program_manager(ctx, ProgramConfig::default())
    });
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(mgr, ContextId::DEFAULT));
        // Register two programs via the protocol's CreateObject.
        for name in ["emacs", "make"] {
            let csname = CsName::from(name);
            let (msg, payload) =
                build_csname_request(RequestCode::CreateObject, ContextId::DEFAULT, &csname, &[]);
            let reply = ctx.send(mgr, msg, payload, 0).unwrap();
            assert!(reply.msg.reply_code().is_ok());
        }
        let listing = client.list_directory("", None).unwrap();
        let names: Vec<String> = listing.iter().map(|d| d.name.to_string_lossy()).collect();
        assert_eq!(names, ["emacs", "make"]);
        assert!(listing
            .iter()
            .all(|d| d.tag() == Some(DescriptorTag::Program)));
        client.remove("make").unwrap();
        assert_eq!(client.list_directory("", None).unwrap().len(), 1);
    });
}

#[test]
fn mail_names_resolve_locally_and_forward_to_peers() {
    // The paper's §2.2 extensibility example: "cheriton@su-score.ARPA".
    let domain = Domain::new();
    let host = domain.add_host();
    let score = domain.spawn(host, "mail-score", |ctx| {
        mail_server(ctx, MailConfig::new("su-score.ARPA"))
    });
    let navajo = domain.spawn(host, "mail-navajo", move |ctx| {
        mail_server(
            ctx,
            MailConfig::new("su-navajo.ARPA").with_peer("su-score.ARPA", score),
        )
    });
    domain.client(host, move |ctx| {
        // Deliver to a local mailbox on navajo.
        let client = NameClient::new(ctx, ContextPair::new(navajo, ContextId::DEFAULT));
        let mut mbox = client
            .open("mann@su-navajo.ARPA", OpenMode::Append)
            .unwrap();
        mbox.write_next(ctx, b"see you at ICDCS").unwrap();
        mbox.close(ctx).unwrap();
        let d = client.query("mann@su-navajo.ARPA").unwrap();
        assert_eq!(d.tag(), Some(DescriptorTag::Mailbox));
        assert!(matches!(d.ext, DescriptorExt::Mailbox { unread: 1 }));

        // Deliver to a mailbox on ANOTHER host: navajo forwards to score,
        // which creates and owns the mailbox.
        let mut remote = client
            .open("cheriton@su-score.ARPA", OpenMode::Append)
            .unwrap();
        assert_eq!(remote.server(), score, "request must forward to the peer");
        remote.write_next(ctx, b"draft attached").unwrap();
        remote.close(ctx).unwrap();

        // Reading it directly from score shows the delivery.
        let score_client = NameClient::new(ctx, ContextPair::new(score, ContextId::DEFAULT));
        let body = score_client.read_file("cheriton@su-score.ARPA").unwrap();
        assert_eq!(body, b"draft attached\n");

        // A host nobody claims fails cleanly.
        let err = client.open("who@nowhere", OpenMode::Append).unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NotFound));
    });
}

#[test]
fn well_known_contexts_home_and_bin() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        // Well-known context ids work directly, without any prefix server.
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::HOME));
        assert_eq!(
            client.read_file("naming.mss").unwrap(),
            b"The V naming paper"
        );
        let bin = NameClient::new(ctx, ContextPair::new(fs, ContextId::STANDARD_PROGRAMS));
        assert_eq!(bin.read_file("ls").unwrap(), b"binary");
    });
}

#[test]
fn stale_context_id_rejected_after_restart_semantics() {
    // Ordinary context ids are valid only while the issuing server lives
    // (paper §5.2). A made-up ordinary id must be rejected.
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::new(0xDEAD_BEEF)));
        let err = client.read_file("naming.mss").unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::InvalidContext));
    });
}

#[test]
fn access_control_bits_are_enforced_on_open() {
    // Paper §5.5: the modification operation changes access-control bits;
    // the server then enforces them.
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        client
            .write_file("[home]secret.txt", b"classified")
            .unwrap();

        // Make it read-only via ModifyObject.
        let mut d = client.query("[home]secret.txt").unwrap();
        d.permissions = vproto::Permissions(vproto::Permissions::READ);
        client.modify("[home]secret.txt", &d).unwrap();

        // Reading still works; write-mode opens are refused.
        assert_eq!(client.read_file("[home]secret.txt").unwrap(), b"classified");
        let err = client
            .open("[home]secret.txt", OpenMode::Write)
            .unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NoPermission));
        let err = client
            .open("[home]secret.txt", OpenMode::Append)
            .unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NoPermission));

        // Revoking READ blocks read-mode opens too.
        d.permissions = vproto::Permissions(0);
        client.modify("[home]secret.txt", &d).unwrap();
        let err = client.open("[home]secret.txt", OpenMode::Read).unwrap_err();
        assert_eq!(err.reply_code(), Some(ReplyCode::NoPermission));

        // Restoring read+write restores access.
        d.permissions = vproto::Permissions::default_rw();
        client.modify("[home]secret.txt", &d).unwrap();
        assert_eq!(client.read_file("[home]secret.txt").unwrap(), b"classified");
    });
}

#[test]
fn local_alias_gives_object_two_names_and_ambiguous_inverse() {
    // Paper §6: reverse mapping "is the inverse mapping of a many-to-one
    // function so the CSname may not be the one that was in fact used."
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        // Alias [storage]mann-home -> the home directory context.
        let home_pair = client.query_name("[home]").unwrap();
        assert_eq!(home_pair.server, fs);
        client.add_link("[storage]mann-home", home_pair).unwrap();

        // The same file is now reachable under two names.
        let via_alias = client.read_file("[storage]mann-home/naming.mss").unwrap();
        let via_primary = client.read_file("[home]naming.mss").unwrap();
        assert_eq!(via_alias, via_primary);

        // A change of current context through the ALIAS...
        let mut cd = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        cd.change_context("[storage]mann-home").unwrap();
        // ...reverse-maps to the PRIMARY path, not the name actually used —
        // exactly the deficiency the paper reports.
        let pwd = cd.current_context_name().unwrap();
        assert_eq!(pwd.to_string_lossy(), "/ng/mann");
    });
}

#[test]
fn failed_interpretation_reports_where_it_stopped() {
    // Paper §7: error reporting for failures deep in interpretation. The
    // failure reply carries the byte index; diagnose() renders it.
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        // Fails at "nosuchdir" (byte 3 of the name, after "ng/").
        let report = client
            .diagnose("[storage]ng/nosuchdir/naming.mss")
            .unwrap()
            .expect("name must fail");
        assert!(report.contains("NotFound"), "{report}");
        assert!(report.contains("nosuchdir"), "{report}");
        assert!(!report.contains("naming.mss\" , failed"), "{report}");
        // A healthy name diagnoses clean.
        assert_eq!(client.diagnose("[home]naming.mss").unwrap(), None);
    });
}

#[test]
fn resolve_batch_answers_many_prefixes_from_one_snapshot() {
    let (domain, host, fs, _) = boot();
    domain.client(host, move |ctx| {
        let client = NameClient::new(ctx, ContextPair::new(fs, ContextId::DEFAULT));
        setup_prefixes(&client, fs);
        client
            .add_logical_prefix("files", ServiceId::FILE_SERVER, ContextId::DEFAULT)
            .unwrap();

        let outcomes = client
            .resolve_batch(&["home", "bin", "no-such-prefix", "files", "storage"])
            .unwrap();
        assert_eq!(outcomes.len(), 5);
        // Direct entries come back bound, fresh (the authority defined
        // them first-hand), with the exact (server, context) pairs.
        let expect_bound = |o: &vruntime::BatchOutcome, ctx_id: ContextId| match o {
            vruntime::BatchOutcome::Bound(b) => {
                assert_eq!(b.target, ContextPair::new(fs, ctx_id));
                assert_eq!(b.staleness, vruntime::Staleness::Fresh);
            }
            other => panic!("expected bound, got {other:?}"),
        };
        expect_bound(&outcomes[0], ContextId::HOME);
        expect_bound(&outcomes[1], ContextId::STANDARD_PROGRAMS);
        assert_eq!(outcomes[2], vruntime::BatchOutcome::NotFound);
        // The logical entry re-resolves via GetPid at answer time.
        expect_bound(&outcomes[3], ContextId::DEFAULT);
        expect_bound(&outcomes[4], ContextId::DEFAULT);

        // A deletion published before the next batch: the same name that
        // just resolved now answers NotFound — and the batch's other
        // answers are untouched.
        client.delete_prefix("bin").unwrap();
        let outcomes = client.resolve_batch(&["home", "bin"]).unwrap();
        expect_bound(&outcomes[0], ContextId::HOME);
        assert_eq!(outcomes[1], vruntime::BatchOutcome::NotFound);

        // An empty batch is legal and answers nothing.
        assert_eq!(client.resolve_batch(&[]).unwrap(), vec![]);
    });
}
