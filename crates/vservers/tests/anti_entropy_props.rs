//! Property tests: anti-entropy convergence of the versioned prefix table.
//!
//! The convergence argument in DESIGN.md rests on three properties of
//! [`vservers::SyncTable`] that must hold for *every* interleaving of
//! authority churn and (possibly failing) sync rounds, not just the
//! schedules the experiments happen to drive:
//!
//! 1. per-prefix epochs never regress, on any table, at any step;
//! 2. once connectivity returns, a bounded number of successful rounds
//!    makes every replica hash identical to the authority; and
//! 3. a failed round (digest lost, or reply lost) changes nothing at the
//!    replica — partial application is impossible by construction.
//!
//! Replicas here drift under an arbitrary seeded schedule: defines and
//! deletes land at the authority while sync rounds succeed or fail
//! according to the generated fate of each round.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vproto::SyncBinding;
use vservers::SyncTable;

/// A small prefix pool so generated schedules collide on names (the
/// interesting case: redefinitions, delete-then-redefine, stale preloads).
const PREFIX_POOL: u8 = 8;

fn name(i: u8) -> Vec<u8> {
    format!("p{}", i % PREFIX_POOL).into_bytes()
}

fn bind(target: u32) -> SyncBinding {
    SyncBinding {
        logical: target.is_multiple_of(2),
        target,
        context: target ^ 0x5a,
    }
}

/// One step of a generated schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// The authority defines (or redefines) a prefix.
    Define(u8, u32),
    /// The authority deletes a prefix (stamping a tombstone).
    Delete(u8),
    /// A replica attempts a sync round; `fate` is the round's seeded
    /// outcome: 0 = success, 1 = digest lost in flight (nothing happens
    /// anywhere), 2 = reply lost (the authority saw the digest, the
    /// replica applies nothing).
    Sync { replica: u8, fate: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(i, t)| Op::Define(i, t)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), 0u8..3).prop_map(|(r, fate)| Op::Sync {
            replica: r % 2,
            fate
        }),
    ]
}

/// One pull round exactly as `prefix.rs` runs it, with the failure modes
/// of the lossy plane modelled by `fate`.
fn sync_round(auth: &mut SyncTable, replica: &mut SyncTable, fate: u8, now_ns: u64) {
    if fate == 1 {
        return; // digest lost: the authority never hears from the replica
    }
    let delta = auth.delta_for(&replica.digest(), true, now_ns);
    if fate == 2 {
        return; // reply lost: a failed round applies nothing at the replica
    }
    replica.apply(&delta);
    replica.mark_all_verified();
}

/// Snapshot of every `(prefix, epoch)` pair, tombstones included.
fn epochs(t: &SyncTable) -> BTreeMap<Vec<u8>, u64> {
    t.digest()
        .into_iter()
        .map(|d| (d.prefix, d.epoch))
        .collect()
}

/// Asserts no prefix lost its entry or moved to an older epoch.
fn check_monotone(
    before: &BTreeMap<Vec<u8>, u64>,
    after: &BTreeMap<Vec<u8>, u64>,
) -> Result<(), TestCaseError> {
    for (prefix, e_before) in before {
        let e_after = after.get(prefix).copied().unwrap_or(0);
        prop_assert!(
            e_after >= *e_before,
            "epoch regressed for {:?}: {} -> {}",
            prefix,
            e_before,
            e_after
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: replicas diverging under an arbitrary
    /// schedule of authority churn and lossy sync rounds converge to the
    /// authority's exact table hash once rounds stop failing — and epochs
    /// never regress anywhere along the way.
    #[test]
    fn replicas_converge_after_heal_for_any_schedule(
        preload_a in proptest::collection::vec(any::<u8>(), 0..6),
        preload_b in proptest::collection::vec(any::<u8>(), 0..6),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut auth = SyncTable::new();
        let mut reps = [SyncTable::new(), SyncTable::new()];
        for i in preload_a {
            reps[0].preload(name(i), bind(u32::from(i)));
        }
        for i in preload_b {
            reps[1].preload(name(i), bind(u32::from(i)));
        }

        let mut now_ns: u64 = 1_000;
        let mut snaps = [epochs(&auth), epochs(&reps[0]), epochs(&reps[1])];
        for op in &ops {
            now_ns += 1_000;
            match *op {
                Op::Define(i, t) => auth.define(name(i), bind(t), now_ns),
                Op::Delete(i) => {
                    auth.tombstone(&name(i), now_ns);
                }
                Op::Sync { replica, fate } => {
                    sync_round(&mut auth, &mut reps[replica as usize], fate, now_ns);
                }
            }
            let next = [epochs(&auth), epochs(&reps[0]), epochs(&reps[1])];
            for (before, after) in snaps.iter().zip(next.iter()) {
                check_monotone(before, after)?;
            }
            snaps = next;
        }

        // The heal: successful rounds only. The A, B, A order matters —
        // syncing B may stamp fresh tombstones at the authority for B's
        // replica-only preloads, which A then needs a second round to
        // learn. Convergence within that bounded pass is the property.
        for &r in &[0usize, 1, 0] {
            now_ns += 1_000;
            sync_round(&mut auth, &mut reps[r], 0, now_ns);
        }
        prop_assert_eq!(reps[0].table_hash(), auth.table_hash());
        prop_assert_eq!(reps[1].table_hash(), auth.table_hash());

        // Converged means drained: one more round has nothing to move.
        for rep in reps.iter_mut() {
            now_ns += 1_000;
            let delta = auth.delta_for(&rep.digest(), true, now_ns);
            prop_assert!(delta.is_empty(), "post-convergence delta: {:?}", delta);
        }

        // Epoch 0 is reserved for preloads: nothing the authority ever
        // stamped or retained sits at 0.
        prop_assert!(epochs(&auth).values().all(|&e| e > 0));
    }

    /// Redefining the same prefix always moves it strictly forward, even
    /// when virtual time stands still — the `max(previous + 1, now)` stamp.
    #[test]
    fn redefinition_epochs_strictly_increase(
        targets in proptest::collection::vec(any::<u32>(), 2..20),
        now in any::<u32>(),
    ) {
        let mut t = SyncTable::new();
        let mut last = 0u64;
        for tg in targets {
            t.define(b"p".to_vec(), bind(tg), u64::from(now));
            let e = epochs(&t).get(b"p".as_slice()).copied().unwrap_or(0);
            prop_assert!(e > last, "stamp did not advance: {} then {}", last, e);
            last = e;
        }
    }

    /// A failed round is invisible at the replica: whether the digest or
    /// the reply was lost, the replica's reconcilable contents are
    /// untouched (no partial application).
    #[test]
    fn failed_rounds_change_nothing_at_the_replica(
        defs in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..20),
        fate in 1u8..3,
    ) {
        let mut auth = SyncTable::new();
        let mut rep = SyncTable::new();
        rep.preload(name(3), bind(3));
        let mut now_ns = 1_000;
        for (i, t) in defs {
            now_ns += 1_000;
            auth.define(name(i), bind(t), now_ns);
        }
        let before = rep.table_hash();
        sync_round(&mut auth, &mut rep, fate, now_ns + 1_000);
        prop_assert_eq!(rep.table_hash(), before);
    }
}
