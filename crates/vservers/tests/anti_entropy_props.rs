//! Property tests: anti-entropy convergence of the versioned prefix table.
//!
//! The convergence argument in DESIGN.md rests on properties of
//! [`vservers::SyncTable`] that must hold for *every* interleaving of
//! authority churn, (possibly failing) sync rounds, replica↔replica
//! gossip, and tombstone GC — not just the schedules the experiments
//! happen to drive:
//!
//! 1. per-prefix epochs never regress, on any table, at any step (a
//!    prefix may *disappear*, but only a tombstone at or below that
//!    table's GC horizon);
//! 2. once connectivity returns, a bounded number of successful rounds
//!    makes every replica hash identical to the authority — with all
//!    mutually-adopted tombstones collected;
//! 3. a failed round (digest lost, or reply lost) changes nothing at the
//!    replica — partial application is impossible by construction;
//! 4. GC safety: a tombstone is collected only after every known
//!    replica's watermark passed it, and a collected delete is never
//!    resurrected — not by a sync round, not by gossip from a peer that
//!    missed the delete;
//! 5. the Merkle walk is a pure optimisation: under the *same* schedule,
//!    Merkle rounds and legacy flat-digest rounds leave every table
//!    byte-identical (same digests, same `table_hash`, same watermarks
//!    and horizons) at every step;
//! 6. a Merkle walk aborted at *any* probe — not just the two fates the
//!    flat path can express — is invisible at the puller.
//!
//! 7. the sharded snapshot view is a pure read-path optimisation: a
//!    [`vservers::ShardedTable`] driven by the same schedule (publishing
//!    after every op, as the server's loop does) keeps its inner table
//!    byte-identical to a plain [`vservers::SyncTable`] — same digests,
//!    `table_hash`, and per-shard Merkle roots — and its snapshot always
//!    answers exactly what the table's live set answers;
//! 8. publication is atomic: a reader holding a [`vservers::ResolverHandle`]
//!    never observes part of a mutation batch — entries written together
//!    before one `publish` appear together or not at all, even across
//!    shard boundaries and from a concurrent thread.
//!
//! Replicas here drift under an arbitrary seeded schedule: defines and
//! deletes land at the authority while sync and gossip rounds succeed or
//! fail according to the generated fate of each round. Properties 1–4
//! predate the Merkle digest and run *unmodified* against it: the round
//! helpers below drive [`vservers::merkle_round`] (the production path),
//! with [`vservers::flat_round`] retained as the differential oracle.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vproto::SyncBinding;
use vservers::{flat_round, merkle_round, RoundFate, RoundKind, ShardedTable, SyncTable};

/// A small prefix pool so generated schedules collide on names (the
/// interesting case: redefinitions, delete-then-redefine, stale preloads).
const PREFIX_POOL: u8 = 8;

fn name(i: u8) -> Vec<u8> {
    format!("p{}", i % PREFIX_POOL).into_bytes()
}

fn bind(target: u32) -> SyncBinding {
    SyncBinding {
        logical: target.is_multiple_of(2),
        target,
        context: target ^ 0x5a,
    }
}

/// One step of a generated schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// The authority defines (or redefines) a prefix.
    Define(u8, u32),
    /// The authority deletes a prefix (stamping a tombstone if known).
    Delete(u8),
    /// A replica attempts a sync round; `fate` is the round's seeded
    /// outcome: 0 = success, 1 = digest lost in flight (nothing happens
    /// anywhere), 2 = reply lost (the authority saw the digest, the
    /// replica applies nothing).
    Sync { replica: u8, fate: u8 },
    /// Replica `to` runs one gossip round against the other replica.
    Gossip { to: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(i, t)| Op::Define(i, t)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), 0u8..3).prop_map(|(r, fate)| Op::Sync {
            replica: r % 2,
            fate
        }),
        any::<u8>().prop_map(|d| Op::Gossip { to: d % 2 }),
    ]
}

/// Maps a schedule's seeded fate code to a wire fate. `1` (digest lost in
/// flight) kills the very first request; `2` (reply lost) delivers every
/// request but drops the final reply — the responder's side effects
/// complete, the puller applies nothing.
fn fate_of(code: u8) -> RoundFate {
    match code {
        1 => RoundFate {
            drop_request_at: Some(0),
            lose_final_reply: false,
        },
        2 => RoundFate {
            drop_request_at: None,
            lose_final_reply: true,
        },
        _ => RoundFate::DELIVERED,
    }
}

/// One pull round exactly as `prefix.rs` runs it — over the production
/// Merkle walk. The authority records the replica's watermark and collects
/// at the recomputed horizon; on a delivered round the replica atomically
/// adopts the delta, advances its watermark to the authority's epoch, and
/// collects at the advertised horizon.
fn sync_round(
    auth: &mut SyncTable,
    replica: &mut SyncTable,
    replica_id: u32,
    fate: u8,
    now_ns: u64,
) {
    merkle_round(
        auth,
        replica,
        RoundKind::Authority { replica_id },
        now_ns,
        fate_of(fate),
    );
}

/// One gossip round exactly as `prefix.rs` runs it: a Merkle walk against
/// a peer replica, applied unverified. Watermarks and horizons do not
/// move — gossip spreads data, not certainty.
fn gossip_round(peer: &mut SyncTable, replica: &mut SyncTable, now_ns: u64) {
    merkle_round(
        peer,
        replica,
        RoundKind::Gossip,
        now_ns,
        RoundFate::DELIVERED,
    );
}

/// The legacy whole-table digest round, kept as the differential oracle.
fn flat_sync_round(
    auth: &mut SyncTable,
    replica: &mut SyncTable,
    replica_id: u32,
    fate: u8,
    now_ns: u64,
) {
    flat_round(
        auth,
        replica,
        RoundKind::Authority { replica_id },
        now_ns,
        fate_of(fate),
    );
}

/// The legacy flat gossip round, kept as the differential oracle.
fn flat_gossip_round(peer: &mut SyncTable, replica: &mut SyncTable, now_ns: u64) {
    flat_round(
        peer,
        replica,
        RoundKind::Gossip,
        now_ns,
        RoundFate::DELIVERED,
    );
}

/// Snapshot of every `(prefix, epoch)` pair, tombstones included.
fn epochs(t: &SyncTable) -> BTreeMap<Vec<u8>, u64> {
    t.digest()
        .into_iter()
        .map(|d| (d.prefix, d.epoch))
        .collect()
}

/// Asserts no prefix moved to an older epoch, and none disappeared except
/// by tombstone GC (epoch at or below the table's current GC horizon).
fn check_monotone(
    before: &BTreeMap<Vec<u8>, u64>,
    after: &BTreeMap<Vec<u8>, u64>,
    gc_horizon: u64,
) -> Result<(), TestCaseError> {
    for (prefix, e_before) in before {
        match after.get(prefix) {
            Some(e_after) => prop_assert!(
                e_after >= e_before,
                "epoch regressed for {:?}: {} -> {}",
                prefix,
                e_before,
                e_after
            ),
            None => prop_assert!(
                *e_before <= gc_horizon,
                "{:?} vanished at epoch {} above the GC horizon {}",
                prefix,
                e_before,
                gc_horizon
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: replicas diverging under an arbitrary
    /// schedule of authority churn, lossy sync rounds, and gossip
    /// converge to the authority's exact table hash once rounds stop
    /// failing — and epochs never regress anywhere along the way (prefix
    /// disappearance is legal only through horizon GC).
    #[test]
    fn replicas_converge_after_heal_for_any_schedule(
        preload_a in proptest::collection::vec(any::<u8>(), 0..6),
        preload_b in proptest::collection::vec(any::<u8>(), 0..6),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut auth = SyncTable::new();
        let mut reps = [SyncTable::new(), SyncTable::new()];
        for i in preload_a {
            reps[0].preload(name(i), bind(u32::from(i)));
        }
        for i in preload_b {
            reps[1].preload(name(i), bind(u32::from(i)));
        }

        let mut now_ns: u64 = 1_000;
        let mut snaps = [epochs(&auth), epochs(&reps[0]), epochs(&reps[1])];
        for op in &ops {
            now_ns += 1_000;
            match *op {
                Op::Define(i, t) => auth.define(name(i), bind(t), now_ns),
                Op::Delete(i) => {
                    auth.tombstone(&name(i), now_ns);
                }
                Op::Sync { replica, fate } => {
                    let r = replica as usize;
                    sync_round(&mut auth, &mut reps[r], r as u32, fate, now_ns);
                }
                Op::Gossip { to } => {
                    let (a, b) = reps.split_at_mut(1);
                    match to {
                        0 => gossip_round(&mut b[0], &mut a[0], now_ns),
                        _ => gossip_round(&mut a[0], &mut b[0], now_ns),
                    }
                }
            }
            let next = [epochs(&auth), epochs(&reps[0]), epochs(&reps[1])];
            let horizons = [auth.gc_horizon(), reps[0].gc_horizon(), reps[1].gc_horizon()];
            for ((before, after), h) in snaps.iter().zip(next.iter()).zip(horizons) {
                check_monotone(before, after, h)?;
            }
            snaps = next;
        }

        // The heal: successful rounds only. Alternating rounds are needed
        // because watermarks propagate with one round of lag (a replica
        // reports its *pre-round* watermark), so the GC horizon takes a
        // few rounds to catch every table up to the same cut. Convergence
        // within this bounded pass is the property.
        for &r in &[0usize, 1, 0, 1, 0, 1] {
            now_ns += 1_000;
            sync_round(&mut auth, &mut reps[r], r as u32, 0, now_ns);
        }
        prop_assert_eq!(reps[0].table_hash(), auth.table_hash());
        prop_assert_eq!(reps[1].table_hash(), auth.table_hash());

        // With both watermarks caught up to the authority's epoch, the
        // horizon equals it and every tombstone is provably adopted:
        // boundedness means they are all gone, not merely stable.
        prop_assert_eq!(auth.tombstone_len(), 0);
        prop_assert_eq!(reps[0].tombstone_len(), 0);

        // Converged means drained: one more round has nothing to move.
        for rep in reps.iter_mut() {
            now_ns += 1_000;
            let delta = auth.delta_for(&rep.digest(), true, now_ns);
            prop_assert!(delta.is_empty(), "post-convergence delta: {:?}", delta);
        }

        // Epoch 0 is reserved for preloads: nothing the authority ever
        // stamped or retained sits at 0.
        prop_assert!(epochs(&auth).values().all(|&e| e > 0));
    }

    /// Redefining the same prefix always moves it strictly forward, even
    /// when virtual time stands still — the `max(previous + 1, now)` stamp.
    #[test]
    fn redefinition_epochs_strictly_increase(
        targets in proptest::collection::vec(any::<u32>(), 2..20),
        now in any::<u32>(),
    ) {
        let mut t = SyncTable::new();
        let mut last = 0u64;
        for tg in targets {
            t.define(b"p".to_vec(), bind(tg), u64::from(now));
            let e = epochs(&t).get(b"p".as_slice()).copied().unwrap_or(0);
            prop_assert!(e > last, "stamp did not advance: {} then {}", last, e);
            last = e;
        }
    }

    /// A failed round is invisible at the replica: whether the digest or
    /// the reply was lost, the replica's reconcilable contents are
    /// untouched (no partial application).
    #[test]
    fn failed_rounds_change_nothing_at_the_replica(
        defs in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..20),
        fate in 1u8..3,
    ) {
        let mut auth = SyncTable::new();
        let mut rep = SyncTable::new();
        rep.preload(name(3), bind(3));
        let mut now_ns = 1_000;
        for (i, t) in defs {
            now_ns += 1_000;
            auth.define(name(i), bind(t), now_ns);
        }
        let before = rep.table_hash();
        sync_round(&mut auth, &mut rep, 0, fate, now_ns + 1_000);
        prop_assert_eq!(rep.table_hash(), before);
    }

    /// GC safety under arbitrary churn/loss/gossip schedules: whenever the
    /// authority collects a tombstone, every replica it knows about has
    /// provably adopted the delete (nothing older is live there), and a
    /// collected delete can never come back — at the authority or at any
    /// replica whose watermark passed it — unless a genuinely newer
    /// definition re-creates the name.
    #[test]
    fn tombstones_collect_only_behind_every_watermark_and_stay_dead(
        preload_a in proptest::collection::vec(any::<u8>(), 0..6),
        preload_b in proptest::collection::vec(any::<u8>(), 0..6),
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut auth = SyncTable::new();
        let mut reps = [SyncTable::new(), SyncTable::new()];
        for i in preload_a {
            reps[0].preload(name(i), bind(u32::from(i)));
        }
        for i in preload_b {
            reps[1].preload(name(i), bind(u32::from(i)));
        }

        // Oracle state: which replicas the authority has heard from, and
        // every tombstone it has collected (prefix → highest collected
        // epoch).
        let mut known = [false, false];
        let mut collected: BTreeMap<Vec<u8>, u64> = BTreeMap::new();

        let mut now_ns: u64 = 1_000;
        for op in &ops {
            now_ns += 1_000;
            match *op {
                Op::Define(i, t) => auth.define(name(i), bind(t), now_ns),
                Op::Delete(i) => {
                    auth.tombstone(&name(i), now_ns);
                }
                Op::Sync { replica, fate } => {
                    let r = replica as usize;
                    if fate != 1 {
                        known[r] = true;
                        // What the authority is about to collect this
                        // round, given the watermark it is about to learn.
                        auth.record_watermark(r as u32, reps[r].watermark());
                        let horizon = auth.horizon();
                        let about_to_collect: Vec<(Vec<u8>, u64)> = auth
                            .digest()
                            .into_iter()
                            .filter(|d| d.tombstone && d.epoch <= horizon && d.epoch > 0)
                            .map(|d| (d.prefix, d.epoch))
                            .collect();
                        // Safety at the moment of collection: every known
                        // replica has adopted each collected delete —
                        // nothing older than the tombstone is live there.
                        for (prefix, epoch) in &about_to_collect {
                            for (k, rep) in reps.iter().enumerate() {
                                if !known[k] {
                                    continue;
                                }
                                prop_assert!(
                                    rep.watermark() >= *epoch,
                                    "collected {:?}@{} ahead of replica {}'s watermark {}",
                                    prefix, epoch, k, rep.watermark()
                                );
                                if let Some(e) = rep.lookup(prefix) {
                                    prop_assert!(
                                        e.epoch > *epoch,
                                        "replica {} still lives {:?}@{} under collected tombstone @{}",
                                        k, prefix, e.epoch, epoch
                                    );
                                }
                            }
                            let slot = collected.entry(prefix.clone()).or_insert(0);
                            *slot = (*slot).max(*epoch);
                        }
                    }
                    sync_round(&mut auth, &mut reps[r], r as u32, fate, now_ns);
                }
                Op::Gossip { to } => {
                    let (a, b) = reps.split_at_mut(1);
                    match to {
                        0 => gossip_round(&mut b[0], &mut a[0], now_ns),
                        _ => gossip_round(&mut a[0], &mut b[0], now_ns),
                    }
                }
            }

            // No resurrection, ever: once (prefix, epoch) is collected,
            // any live entry for that prefix — at the authority, or at a
            // replica whose watermark passed the delete — must be a
            // strictly newer definition. Gossip from a lagging peer must
            // not slip an older live copy back in.
            for (prefix, epoch) in &collected {
                if let Some(e) = auth.lookup(prefix) {
                    prop_assert!(
                        e.epoch > *epoch,
                        "authority resurrected {:?}@{} under collected tombstone @{}",
                        prefix, e.epoch, epoch
                    );
                }
                for (k, rep) in reps.iter().enumerate() {
                    if rep.watermark() < *epoch {
                        continue; // never saw the delete; heals at its next round
                    }
                    if let Some(e) = rep.lookup(prefix) {
                        prop_assert!(
                            e.epoch > *epoch,
                            "replica {} resurrected {:?}@{} under collected tombstone @{}",
                            k, prefix, e.epoch, epoch
                        );
                    }
                }
            }
        }

        // The heal: after enough successful alternating rounds, collected
        // deletes are gone *everywhere* (not live on any table) and the
        // three tables agree exactly.
        for &r in &[0usize, 1, 0, 1, 0, 1] {
            now_ns += 1_000;
            sync_round(&mut auth, &mut reps[r], r as u32, 0, now_ns);
        }
        prop_assert_eq!(reps[0].table_hash(), auth.table_hash());
        prop_assert_eq!(reps[1].table_hash(), auth.table_hash());
        for (prefix, epoch) in &collected {
            for t in [&auth, &reps[0], &reps[1]] {
                if let Some(e) = t.lookup(prefix) {
                    prop_assert!(
                        e.epoch > *epoch,
                        "{:?} live@{} post-heal under collected tombstone @{}",
                        prefix, e.epoch, epoch
                    );
                }
            }
        }
    }

    /// The tentpole's equivalence claim, checked differentially: two
    /// worlds driven by the *same* arbitrary churn/loss/partition schedule
    /// — one syncing over Merkle walks, one over legacy flat digests —
    /// stay byte-identical at every step. Digests pin prefixes, epochs
    /// and tombstone flags; `table_hash` covers binding contents;
    /// watermark, GC horizon and max epoch pin the GC machinery. Checked
    /// at the authority and at both replicas after every single op.
    #[test]
    fn merkle_and_flat_rounds_are_byte_identical(
        preloads in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..8),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut m_auth = SyncTable::new();
        let mut m_reps = [SyncTable::new(), SyncTable::new()];
        for &(r, i) in &preloads {
            m_reps[usize::from(r) % 2].preload(name(i), bind(u32::from(i)));
        }
        let mut f_auth = m_auth.clone();
        let mut f_reps = m_reps.clone();

        fn identical(m: &mut SyncTable, f: &mut SyncTable, who: &str) -> Result<(), TestCaseError> {
            prop_assert!(m.digest() == f.digest(), "digest diverged at {}", who);
            prop_assert!(m.table_hash() == f.table_hash(), "hash diverged at {}", who);
            prop_assert!(m.watermark() == f.watermark(), "watermark diverged at {}", who);
            prop_assert!(m.gc_horizon() == f.gc_horizon(), "horizon diverged at {}", who);
            prop_assert!(m.max_epoch() == f.max_epoch(), "epoch diverged at {}", who);
            Ok(())
        }

        let mut now_ns: u64 = 1_000;
        for op in &ops {
            now_ns += 1_000;
            match *op {
                Op::Define(i, t) => {
                    m_auth.define(name(i), bind(t), now_ns);
                    f_auth.define(name(i), bind(t), now_ns);
                }
                Op::Delete(i) => {
                    m_auth.tombstone(&name(i), now_ns);
                    f_auth.tombstone(&name(i), now_ns);
                }
                Op::Sync { replica, fate } => {
                    let r = replica as usize;
                    sync_round(&mut m_auth, &mut m_reps[r], r as u32, fate, now_ns);
                    flat_sync_round(&mut f_auth, &mut f_reps[r], r as u32, fate, now_ns);
                }
                Op::Gossip { to } => {
                    let (ma, mb) = m_reps.split_at_mut(1);
                    let (fa, fb) = f_reps.split_at_mut(1);
                    match to {
                        0 => {
                            gossip_round(&mut mb[0], &mut ma[0], now_ns);
                            flat_gossip_round(&mut fb[0], &mut fa[0], now_ns);
                        }
                        _ => {
                            gossip_round(&mut ma[0], &mut mb[0], now_ns);
                            flat_gossip_round(&mut fa[0], &mut fb[0], now_ns);
                        }
                    }
                }
            }
            identical(&mut m_auth, &mut f_auth, "authority")?;
            identical(&mut m_reps[0], &mut f_reps[0], "replica 0")?;
            identical(&mut m_reps[1], &mut f_reps[1], "replica 1")?;
        }

        // Heal both worlds with successful rounds: they converge to the
        // same fixed point, and each world's replicas match its authority.
        for &r in &[0usize, 1, 0, 1, 0, 1] {
            now_ns += 1_000;
            sync_round(&mut m_auth, &mut m_reps[r], r as u32, 0, now_ns);
            flat_sync_round(&mut f_auth, &mut f_reps[r], r as u32, 0, now_ns);
        }
        identical(&mut m_auth, &mut f_auth, "authority post-heal")?;
        let root = m_auth.table_hash();
        prop_assert_eq!(m_reps[0].table_hash(), root);
        prop_assert_eq!(m_reps[1].table_hash(), root);
        prop_assert_eq!(f_reps[0].table_hash(), root);
        prop_assert_eq!(f_reps[1].table_hash(), root);
    }

    /// A Merkle walk aborted at *any* probe index — or losing only its
    /// final reply — is invisible at the puller whenever the round
    /// reports failure: table bytes, hash, watermark, and horizon are all
    /// untouched. (The flat path can only fail at two points; the walk
    /// has one per probe, and every one must be atomic.)
    #[test]
    fn aborted_merkle_walks_are_invisible_at_the_puller(
        defs in proptest::collection::vec((any::<u8>(), any::<u32>()), 2..30),
        warm in any::<bool>(),
        drop_at in 0u32..8,
        lose_reply in any::<bool>(),
    ) {
        let mut auth = SyncTable::new();
        let mut rep = SyncTable::new();
        rep.preload(name(3), bind(3));
        let mut now_ns: u64 = 1_000;
        let half = defs.len() / 2;
        for &(i, t) in &defs[..half] {
            now_ns += 1_000;
            auth.define(name(i), bind(t), now_ns);
        }
        if warm {
            // A half-synced replica: the doomed walk below has matching
            // subtrees to skip and diverging ones to descend.
            now_ns += 1_000;
            sync_round(&mut auth, &mut rep, 0, 0, now_ns);
        }
        for &(i, t) in &defs[half..] {
            now_ns += 1_000;
            auth.define(name(i), bind(t), now_ns);
        }

        let digest_before = rep.digest();
        let hash_before = rep.table_hash();
        let watermark_before = rep.watermark();
        let horizon_before = rep.gc_horizon();

        let fate = if lose_reply {
            RoundFate { drop_request_at: None, lose_final_reply: true }
        } else {
            RoundFate { drop_request_at: Some(drop_at), lose_final_reply: false }
        };
        now_ns += 1_000;
        let (out, _stats) = merkle_round(
            &mut auth,
            &mut rep,
            RoundKind::Authority { replica_id: 0 },
            now_ns,
            fate,
        );
        match out {
            None => {
                prop_assert_eq!(rep.digest(), digest_before);
                prop_assert_eq!(rep.table_hash(), hash_before);
                prop_assert_eq!(rep.watermark(), watermark_before);
                prop_assert_eq!(rep.gc_horizon(), horizon_before);
            }
            // Only a drop aimed past the walk's actual end can deliver.
            Some(_) => prop_assert!(!lose_reply),
        }
    }

    /// The read-path equivalence claim, checked differentially: a
    /// [`ShardedTable`] authority (publishing after every op, exactly as
    /// the server's receive loop does) and a plain [`SyncTable`] authority
    /// driven by the *same* arbitrary churn/loss/gossip schedule stay
    /// byte-identical — same digests, same `table_hash`, same per-shard
    /// Merkle roots — and at every step the published snapshot answers
    /// exactly what the table's live set answers, both one name at a time
    /// and through `resolve_batch`.
    #[test]
    fn sharded_view_matches_unsharded_table_for_any_schedule(
        preloads in proptest::collection::vec(any::<u8>(), 0..6),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut s_auth = ShardedTable::new();
        let mut p_auth = SyncTable::new();
        let mut s_rep = SyncTable::new();
        let mut p_rep = SyncTable::new();
        for &i in &preloads {
            s_rep.preload(name(i), bind(u32::from(i)));
            p_rep.preload(name(i), bind(u32::from(i)));
        }

        let pool: Vec<Vec<u8>> = (0..PREFIX_POOL).map(name).collect();
        let mut last_epoch = 0u64;
        let mut now_ns: u64 = 1_000;
        for op in &ops {
            now_ns += 1_000;
            match *op {
                Op::Define(i, t) => {
                    s_auth.table_mut().define(name(i), bind(t), now_ns);
                    p_auth.define(name(i), bind(t), now_ns);
                }
                Op::Delete(i) => {
                    s_auth.table_mut().tombstone(&name(i), now_ns);
                    p_auth.tombstone(&name(i), now_ns);
                }
                Op::Sync { fate, .. } => {
                    sync_round(s_auth.table_mut(), &mut s_rep, 0, fate, now_ns);
                    sync_round(&mut p_auth, &mut p_rep, 0, fate, now_ns);
                }
                Op::Gossip { .. } => {
                    // One replica here, so gossip pulls authority→replica
                    // unverified — the adoption path snapshots must track.
                    gossip_round(s_auth.table_mut(), &mut s_rep, now_ns);
                    gossip_round(&mut p_auth, &mut p_rep, now_ns);
                }
            }
            s_auth.publish();

            // The wrapped table is byte-identical to the plain one.
            prop_assert!(s_auth.table().digest() == p_auth.digest(), "digest diverged");
            prop_assert_eq!(s_auth.table_mut().table_hash(), p_auth.table_hash());
            prop_assert_eq!(s_auth.table_mut().shard_roots(), p_auth.shard_roots());
            prop_assert!(s_rep.digest() == p_rep.digest(), "replica digest diverged");
            prop_assert_eq!(s_rep.table_hash(), p_rep.table_hash());

            // The snapshot serves exactly the table's live set: every pool
            // name agrees entry-for-entry, the live counts match, and the
            // batched path equals the single-name path.
            let snap = s_auth.snapshot();
            prop_assert_eq!(snap.live_len(), s_auth.table().live_len());
            let refs: Vec<&[u8]> = pool.iter().map(Vec::as_slice).collect();
            let batch = snap.resolve_batch(&refs);
            for (p, batched) in pool.iter().zip(batch) {
                let table_view = s_auth
                    .table()
                    .lookup(p)
                    .and_then(|e| e.binding.map(|b| (b, e.verified)));
                let snap_view = snap.lookup(p).map(|e| (e.binding, e.verified));
                prop_assert!(snap_view == table_view, "snapshot diverged on {:?}", p);
                prop_assert!(
                    batched.map(|e| (e.binding, e.verified)) == table_view,
                    "batch diverged on {:?}",
                    p
                );
            }
            prop_assert!(snap.epoch() >= last_epoch, "publication epoch regressed");
            last_epoch = snap.epoch();
        }
    }
}

/// Publication atomicity under a live concurrent reader: a writer thread
/// redefines two prefixes — placed in *different* shards — to the same
/// round number and publishes once per round; a reader spinning on a
/// [`vservers::ResolverHandle`] must never catch the pair half-updated.
/// One publish swaps in a whole internally consistent snapshot, so a torn
/// read here would mean a batch leaked across the atomic swap.
#[test]
fn concurrent_reader_never_observes_a_half_published_batch() {
    const ROUNDS: u32 = 20_000;
    // Two names verified to land in different shards, so atomicity is
    // cross-shard, not an artifact of sharing one map.
    let (left, right) = (b"storage".to_vec(), b"printer".to_vec());
    assert_ne!(
        SyncTable::shard_of(&left),
        SyncTable::shard_of(&right),
        "pick names hashing to different shards"
    );

    let mut sharded = ShardedTable::new();
    let handle = sharded.reader();
    let torn = std::sync::atomic::AtomicU32::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    let observed = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut seen = 0u64;
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                let snap = handle.snapshot();
                let l = snap.lookup(&left).map(|e| e.binding.target);
                let r = snap.lookup(&right).map(|e| e.binding.target);
                if l != r {
                    torn.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                seen += 1;
            }
            seen
        });

        let mut now_ns = 1_000u64;
        for round in 0..ROUNDS {
            now_ns += 1_000;
            sharded
                .table_mut()
                .define(left.clone(), bind(round), now_ns);
            sharded
                .table_mut()
                .define(right.clone(), bind(round), now_ns);
            sharded.publish();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        reader.join().expect("reader thread")
    });

    assert_eq!(
        torn.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "reader caught a half-published define pair"
    );
    assert!(observed > 0, "reader never sampled a snapshot");
    let last = sharded.snapshot();
    assert_eq!(
        last.lookup(&left).map(|e| e.binding.target),
        Some(ROUNDS - 1)
    );
    assert_eq!(
        last.lookup(&right).map(|e| e.binding.target),
        Some(ROUNDS - 1)
    );
}
