//! Property-based tests for the name-handling protocol engine.

use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;
use vnaming::{
    build_csname_request, check_forward_budget, match_pattern, resolve, BackoffPolicy,
    ComponentSpace, CsRequest, Outcome, ResolvedTarget, Step, MAX_FORWARDS,
};
use vproto::{ContextId, CsName, ReplyCode, RequestCode};

/// A randomly generated tree name space: contexts 0..n, each with component
/// bindings to child contexts or leaf objects.
#[derive(Debug, Clone)]
struct TreeSpace {
    contexts: Vec<HashMap<Vec<u8>, Step<u32>>>,
}

impl ComponentSpace for TreeSpace {
    type Object = u32;

    fn step(&self, ctx: ContextId, comp: &[u8]) -> Step<u32> {
        self.contexts
            .get(ctx.raw() as usize)
            .and_then(|m| m.get(comp).cloned())
            .unwrap_or(Step::NotFound)
    }

    fn valid_context(&self, ctx: ContextId) -> bool {
        (ctx.raw() as usize) < self.contexts.len()
    }
}

fn arb_component() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        any::<u8>().prop_filter("no separator", |&b| b != b'/'),
        1..6,
    )
}

/// Regression: first shrunk case recorded in `props.proptest-regressions`
/// (`name = [], start = 1, ctx = 1, n_ctx = 1`) — resolving an empty name
/// with the start index past the end and an invalid context must report a
/// failure index within the name.
#[test]
fn regression_empty_name_start_past_end_invalid_context() {
    let space = TreeSpace {
        contexts: vec![HashMap::new()],
    };
    match resolve(&space, &[], 1, ContextId::new(1), b'/') {
        Outcome::Fail(f) => assert!(f.index == 0, "index {} out of empty name", f.index),
        Outcome::Done { final_index, .. } => assert_eq!(final_index, 0),
        Outcome::Forward { index, .. } => assert_eq!(index, 0),
    }
}

/// Regression: second shrunk case recorded in `props.proptest-regressions`
/// (`prefix = [], suffix = [42, 0]`) — a bare `*` pattern must match any
/// name, including names containing NUL bytes.
#[test]
fn regression_bare_star_matches_name_with_nul() {
    assert!(match_pattern(&[42, 0], b"*"));
    assert!(match_pattern(&[0], b"*"));
    assert!(match_pattern(&[], b"*"));
}

proptest! {
    /// Composing a path of known context components and a leaf always
    /// resolves to that leaf, regardless of the component bytes.
    #[test]
    fn constructed_paths_resolve(
        comps in proptest::collection::vec(arb_component(), 1..5),
        leaf in arb_component(),
    ) {
        // Build a chain: ctx0 -[comps[0]]-> ctx1 -[comps[1]]-> ... -> leaf.
        let mut contexts: Vec<HashMap<Vec<u8>, Step<u32>>> = Vec::new();
        for (i, c) in comps.iter().enumerate() {
            let mut m = HashMap::new();
            m.insert(c.clone(), Step::Context(ContextId::new(i as u32 + 1)));
            contexts.push(m);
        }
        let mut last = HashMap::new();
        // Avoid the degenerate case where leaf equals a chain component
        // bound in the same context (we insert into a fresh context).
        last.insert(leaf.clone(), Step::Object(777));
        contexts.push(last);
        let space = TreeSpace { contexts };

        let mut name = Vec::new();
        for c in &comps {
            name.extend_from_slice(c);
            name.push(b'/');
        }
        name.extend_from_slice(&leaf);

        match resolve(&space, &name, 0, ContextId::new(0), b'/') {
            Outcome::Done { target: ResolvedTarget::Object(o), .. } => prop_assert_eq!(o, 777),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// resolve() never panics on arbitrary inputs, and every failure index
    /// lies within the name (or at its end).
    #[test]
    fn resolve_total_on_arbitrary_input(
        name in proptest::collection::vec(any::<u8>(), 0..64),
        start in 0usize..80,
        ctx in 0u32..4,
        n_ctx in 1usize..4,
    ) {
        let contexts = vec![HashMap::new(); n_ctx];
        let space = TreeSpace { contexts };
        match resolve(&space, &name, start, ContextId::new(ctx), b'/') {
            Outcome::Fail(f) => prop_assert!(f.index <= name.len()),
            Outcome::Done { final_index, .. } => prop_assert!(final_index <= name.len()),
            Outcome::Forward { index, .. } => prop_assert!(index <= name.len()),
        }
    }

    /// CSname requests roundtrip through build + parse for arbitrary name
    /// bytes and extra payload.
    #[test]
    fn csrequest_roundtrip(
        name_bytes in proptest::collection::vec(any::<u8>(), 0..128),
        extra in proptest::collection::vec(any::<u8>(), 0..64),
        ctx in any::<u32>(),
    ) {
        let name = CsName::from(name_bytes.clone());
        let (msg, payload) = build_csname_request(
            RequestCode::QueryObject,
            ContextId::new(ctx),
            &name,
            &extra,
        );
        let req = CsRequest::parse(&msg, &payload).unwrap();
        prop_assert_eq!(req.name, name_bytes);
        prop_assert_eq!(req.extra, extra);
        prop_assert_eq!(req.context, ContextId::new(ctx));
    }

    /// Every name matches itself as a literal pattern, and matches "*".
    #[test]
    fn pattern_identity_and_star(name in proptest::collection::vec(any::<u8>(), 0..32)) {
        // Names containing glob metacharacters are excluded from the
        // identity check (they'd be interpreted).
        if !name.iter().any(|&b| b == b'*' || b == b'?') {
            prop_assert!(match_pattern(&name, &name));
        }
        prop_assert!(match_pattern(&name, b"*"));
    }

    /// A forwarding ring of faulty servers (each one forwarding the
    /// request onward instead of answering) terminates: the budget admits
    /// at most [`MAX_FORWARDS`] hops for any request, then pins the
    /// request to `ForwardLoop` forever — no forwarding storm.
    #[test]
    fn forward_ring_terminates_within_budget(
        ctx in any::<u32>(),
        name_bytes in proptest::collection::vec(any::<u8>(), 0..32),
        extra_hops in 0u16..32,
    ) {
        let (mut msg, _) = build_csname_request(
            RequestCode::QueryObject,
            ContextId::new(ctx),
            &CsName::from(name_bytes),
            &[],
        );
        let mut hops = 0u32;
        for _ in 0..(MAX_FORWARDS + extra_hops) {
            match check_forward_budget(&mut msg) {
                Ok(()) => hops += 1,
                Err(code) => {
                    prop_assert_eq!(code, ReplyCode::ForwardLoop);
                    break;
                }
            }
        }
        prop_assert!(hops <= MAX_FORWARDS as u32, "ring ran {} hops", hops);
        // Once exhausted, the budget stays exhausted.
        prop_assert!(check_forward_budget(&mut msg).is_err());
    }

    /// Every retry schedule is strictly bounded: an arbitrary
    /// [`BackoffPolicy`] yields exactly `max_attempts - 1` pauses, each at
    /// most `max(base, cap)`, with a worst-case total equal to their sum —
    /// a client can never turn a dead server into an unbounded retry storm.
    #[test]
    fn backoff_policy_is_bounded_and_monotone(
        max_attempts in 1u32..12,
        base_ms in 0u64..50,
        factor in 1u32..4,
        cap_ms in 0u64..200,
    ) {
        let p = BackoffPolicy {
            max_attempts,
            base: Duration::from_millis(base_ms),
            factor,
            cap: Duration::from_millis(cap_ms),
        };
        let ceiling = p.base.max(p.cap);
        let mut total = Duration::ZERO;
        let mut pauses = 0u32;
        // Probe far past the budget: the ladder must go silent exactly at
        // max_attempts and stay silent.
        let mut prev = Duration::ZERO;
        for failed in 1..(max_attempts + 16) {
            match p.delay(failed) {
                Some(d) => {
                    prop_assert!(failed < max_attempts);
                    prop_assert!(d <= ceiling, "pause {:?} above ceiling {:?}", d, ceiling);
                    if failed > 1 {
                        prop_assert!(d >= prev.min(p.cap), "ladder not monotone");
                    }
                    prev = d;
                    total += d;
                    pauses += 1;
                }
                None => prop_assert!(failed >= max_attempts),
            }
        }
        prop_assert_eq!(pauses, max_attempts - 1);
        prop_assert_eq!(total, p.worst_case_total());
    }

    /// prefix + "*" matches any extension of prefix.
    #[test]
    fn pattern_prefix_star(
        prefix in proptest::collection::vec(
            any::<u8>().prop_filter("no glob chars", |&b| b != b'*' && b != b'?'), 0..16),
        suffix in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut pattern = prefix.clone();
        pattern.push(b'*');
        let mut name = prefix;
        name.extend_from_slice(&suffix);
        prop_assert!(match_pattern(&name, &pattern));
    }
}
